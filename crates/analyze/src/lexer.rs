//! A minimal Rust lexer: just enough fidelity for the analysis passes.
//!
//! Produces identifier / punctuation / literal tokens with 1-based line
//! numbers, collects line comments separately (annotations like
//! `// snap: derived(...)` live there), and strips string/char literals
//! and block comments so pass logic never matches inside them. It does
//! not attempt full Rust grammar — the passes work on token shapes.

/// What a token is, at the granularity the passes care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `fn`, `HashMap`, ...).
    Ident,
    /// Single punctuation character (`.`, `{`, `#`, ...).
    Punct,
    /// Integer literal (including suffixed forms like `32u64`).
    Int,
    /// Float literal (`1.0`, `2e9`, `1f64`).
    Float,
    /// String / char / byte literal (contents dropped).
    Literal,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token: kind, text and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Source text (empty for [`TokKind::Literal`]).
    pub text: &'a str,
    /// 1-based source line.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }
}

/// A `//` comment with its 1-based line, for annotation parsing.
#[derive(Debug, Clone)]
pub struct LineComment<'a> {
    /// 1-based source line the comment sits on.
    pub line: u32,
    /// Comment text after the `//`, untrimmed.
    pub text: &'a str,
}

/// The lexed form of one source file.
#[derive(Debug)]
pub struct Lexed<'a> {
    /// All tokens outside comments and literals.
    pub tokens: Vec<Token<'a>>,
    /// All `//` comments (doc comments included).
    pub comments: Vec<LineComment<'a>>,
}

/// Lexes `src`, never failing: unknown bytes become punctuation tokens,
/// unterminated literals run to end of file.
pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(LineComment {
                    line,
                    text: &src[start..i],
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, counting newlines.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "",
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let tok_line = line;
                i = skip_prefixed_literal(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "",
                    line: tok_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a` not closed by a quote) vs char literal.
                let is_lifetime = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(&n), after) => {
                        (n == b'_' || n.is_ascii_alphabetic()) && after != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: &src[start..i],
                        line,
                    });
                } else {
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2; // escape + escaped char
                    } else {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(bytes.len());
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        text: "",
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut float = false;
                let hex_like = bytes.get(i + 1) == Some(&b'x')
                    || bytes.get(i + 1) == Some(&b'o')
                    || bytes.get(i + 1) == Some(&b'b');
                while i < bytes.len() {
                    let b = bytes[i];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        i += 1;
                    } else if (b == b'.'
                        && !float
                        && !hex_like
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
                        || ((b == b'+' || b == b'-')
                            && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
                            && !hex_like)
                    {
                        float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let suffix_float = !hex_like && (text.ends_with("f32") || text.ends_with("f64"));
                // `2e9` / `1E6`: an exponent whose digits run to the end
                // of the token (this keeps `0element`-style idents, which
                // can't start with a digit anyway, out of scope).
                let has_exp = !hex_like
                    && !suffix_float
                    && text
                        .char_indices()
                        .find(|&(_, c)| c == 'e' || c == 'E')
                        .is_some_and(|(p, _)| {
                            let tail = &text[p + 1..];
                            let tail = tail.strip_prefix(['+', '-']).unwrap_or(tail);
                            !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit())
                        });
                tokens.push(Token {
                    kind: if float || suffix_float || has_exp {
                        TokKind::Float
                    } else {
                        TokKind::Int
                    },
                    text,
                    line,
                });
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: &src[start..i],
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: &src[i..i + utf8_len(c)],
                    line,
                });
                i += utf8_len(c);
            }
        }
    }
    Lexed { tokens, comments }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => {
            matches!(bytes.get(i + 1), Some(b'"') | Some(b'\''))
                || (bytes.get(i + 1) == Some(&b'r')
                    && matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')))
        }
        _ => false,
    }
}

/// Skips a plain `"..."` string starting at the opening quote, returning
/// the index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` or `b'x'` literals.
fn skip_prefixed_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while matches!(bytes.get(i), Some(b'r') | Some(b'b')) {
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        // b'x' byte char
        i += 1;
        if bytes.get(i) == Some(&b'\\') {
            i += 2;
        } else {
            i += 1;
        }
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"'
            && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("fn a() {\n  b.c()\n}");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text).collect();
        assert_eq!(
            texts,
            vec!["fn", "a", "(", ")", "{", "b", ".", "c", "(", ")", "}"]
        );
        assert_eq!(l.tokens[5].line, 2);
    }

    #[test]
    fn comments_are_collected_not_tokenised() {
        let l = lex("let x = 1; // snap: derived(cache)\nlet y = 2;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("snap: derived(cache)"));
        assert!(l.tokens.iter().all(|t| t.text != "snap"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex("let s = \"for x in map.keys()\";");
        assert!(l.tokens.iter().all(|t| t.text != "keys"));
        let l = lex("let s = r#\"HashMap \"quoted\"#;");
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let l = lex("let a = 1.5; let b = 0..9; let c = 2e9; let d = 1f64; let e = 0xff;");
        let kinds: Vec<(TokKind, &str)> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokKind::Float, "1.5"),
                (TokKind::Int, "0"),
                (TokKind::Int, "9"),
                (TokKind::Float, "2e9"),
                (TokKind::Float, "1f64"),
                (TokKind::Int, "0xff"),
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn block_comments_track_lines() {
        let l = lex("/* one\ntwo */ fn f() {}");
        assert_eq!(l.tokens[0].line, 2);
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let l = lex("let y = x.0;");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Int && t.text == "0"));
        assert!(l.tokens.iter().all(|t| t.kind != TokKind::Float));
    }
}
