//! CLI entry point: analyze the workspace, print diagnostics, exit
//! nonzero when anything is found.
//!
//! ```text
//! cargo run -p burst-analyze            # analyze the enclosing workspace
//! cargo run -p burst-analyze -- <root>  # analyze an explicit root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match burst_analyze::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "burst-analyze: no workspace root (Cargo.toml + crates/) found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let diags = match burst_analyze::analyze_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "burst-analyze: failed to read workspace {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if diags.is_empty() {
        eprintln!("burst-analyze: clean ({} passes, no findings)", 5);
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("burst-analyze: {} finding(s)", diags.len());
    ExitCode::FAILURE
}
