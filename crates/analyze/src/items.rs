//! Item-level parsing on top of the lexer: struct field lists, `impl`
//! blocks with their methods, and `#[cfg(test)]` exclusion. Shape-based,
//! not a real grammar — precise enough for the four passes, tolerant of
//! everything else.

use crate::lexer::{LineComment, Token};

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the field declaration.
    pub line: u32,
    /// The `// snap: derived(<reason>)` annotation attached to the field
    /// (same line or the line above), if any. `Some("")` means the
    /// annotation is present but carries no reason.
    pub derived: Option<String>,
}

/// A struct with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Declared fields in order.
    pub fields: Vec<Field>,
}

/// One `fn` inside an `impl` block.
#[derive(Debug)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the parameter list contains a `self` receiver.
    pub has_self: bool,
    /// Token index range of the body (inside the braces) in the file's
    /// token stream.
    pub body: (usize, usize),
}

/// One `impl` block: `impl Type` or `impl Trait for Type`.
#[derive(Debug)]
pub struct ImplBlock {
    /// Last path segment of the implemented trait, if this is a trait impl.
    pub trait_name: Option<String>,
    /// Last path segment of the self type.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Methods defined in the block.
    pub methods: Vec<Method>,
}

/// The parsed shape of one file.
#[derive(Debug)]
pub struct FileItems {
    /// All named-field structs outside `#[cfg(test)]` items.
    pub structs: Vec<StructDef>,
    /// All impl blocks outside `#[cfg(test)]` items.
    pub impls: Vec<ImplBlock>,
}

/// Returns the token indices that belong to `#[cfg(test)]` items (the
/// attribute itself through the end of the annotated item), so passes can
/// skip test-only code.
pub fn test_spans(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_start = i;
            let (content_start, attr_end) = match skip_balanced(tokens, i + 1, '[', ']') {
                Some(end) => (i + 2, end),
                None => break,
            };
            let attr = &tokens[content_start..attr_end];
            let is_test_cfg = match attr.first() {
                // `#[test]`, `#[bench]`
                Some(t) if t.is_ident("test") || t.is_ident("bench") => true,
                // `#[cfg(test)]`, `#[cfg(any(test, ...))]` — but not
                // `#[cfg(not(test))]`, which guards *production* code.
                Some(t) if t.is_ident("cfg") => {
                    attr.iter()
                        .any(|t| t.is_ident("test") || t.is_ident("bench"))
                        && !attr.iter().any(|t| t.is_ident("not"))
                }
                _ => false,
            };
            i = attr_end + 1;
            if is_test_cfg {
                // Skip any further attributes, then the item itself.
                while i < tokens.len()
                    && tokens[i].is_punct('#')
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
                {
                    match skip_balanced(tokens, i + 1, '[', ']') {
                        Some(end) => i = end + 1,
                        None => return spans,
                    }
                }
                let mut j = i;
                while j < tokens.len() {
                    if tokens[j].is_punct(';') {
                        j += 1;
                        break;
                    }
                    if tokens[j].is_punct('{') {
                        j = skip_balanced(tokens, j, '{', '}').map_or(tokens.len(), |e| e + 1);
                        break;
                    }
                    j += 1;
                }
                spans.push((attr_start, j));
                i = j;
            }
        } else {
            i += 1;
        }
    }
    spans
}

/// Whether token index `i` falls inside any of `spans`.
pub fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| i >= a && i < b)
}

/// Parses structs and impl blocks from a token stream, skipping
/// `#[cfg(test)]` items.
pub fn parse_items(tokens: &[Token<'_>], comments: &[LineComment<'_>]) -> FileItems {
    let skip = test_spans(tokens);
    let mut structs = Vec::new();
    let mut impls = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if in_spans(&skip, i) {
            i += 1;
            continue;
        }
        if tokens[i].is_ident("struct") {
            if let Some((def, next)) = parse_struct(tokens, i, comments) {
                structs.push(def);
                i = next;
                continue;
            }
        } else if tokens[i].is_ident("impl") {
            if let Some((block, next)) = parse_impl(tokens, i) {
                impls.push(block);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    FileItems { structs, impls }
}

/// Finds the matching closer for the opener at `open_idx`, returning its
/// index. `tokens[open_idx]` must be `open`.
fn skip_balanced(tokens: &[Token<'_>], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skips a `<...>` generics list starting at `i` if one is there.
fn skip_generics(tokens: &[Token<'_>], mut i: usize) -> usize {
    if !tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        return i;
    }
    let mut depth = 0isize;
    while i < tokens.len() {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

fn parse_struct(
    tokens: &[Token<'_>],
    kw: usize,
    comments: &[LineComment<'_>],
) -> Option<(StructDef, usize)> {
    let name_tok = tokens.get(kw + 1)?;
    if name_tok.kind != crate::lexer::TokKind::Ident {
        return None;
    }
    let line = tokens[kw].line;
    let mut i = skip_generics(tokens, kw + 2);
    // `where` clauses before the brace; tuple structs and unit structs
    // (next token `(` or `;`) carry no named fields — skip them.
    while i < tokens.len() && !tokens[i].is_punct('{') {
        if tokens[i].is_punct('(') || tokens[i].is_punct(';') {
            return None;
        }
        i += 1;
    }
    let open = i;
    let close = skip_balanced(tokens, open, '{', '}')?;
    let mut fields = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip field attributes and visibility.
        while j < close && tokens[j].is_punct('#') {
            j = skip_balanced(tokens, j + 1, '[', ']').map_or(close, |e| e + 1);
        }
        if j < close && tokens[j].is_ident("pub") {
            j += 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                j = skip_balanced(tokens, j, '(', ')').map_or(close, |e| e + 1);
            }
        }
        if j >= close {
            break;
        }
        let (name, name_line) = match tokens.get(j) {
            Some(t) if t.kind == crate::lexer::TokKind::Ident => (t.text.to_string(), t.line),
            _ => break,
        };
        if !tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            break;
        }
        fields.push(Field {
            derived: derived_annotation(comments, name_line),
            name,
            line: name_line,
        });
        // Skip the type up to the next top-level comma.
        let mut depth = 0isize;
        j += 2;
        while j < close {
            let t = &tokens[j];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(',') && depth <= 0 {
                j += 1;
                break;
            }
            j += 1;
        }
    }
    Some((
        StructDef {
            name: name_tok.text.to_string(),
            line,
            fields,
        },
        close + 1,
    ))
}

/// The `// snap: derived(<reason>)` annotation on `line` or `line - 1`.
fn derived_annotation(comments: &[LineComment<'_>], line: u32) -> Option<String> {
    comments
        .iter()
        .filter(|c| c.line == line || c.line + 1 == line)
        .find_map(|c| {
            let rest = c.text.trim().strip_prefix("snap: derived(")?;
            Some(rest.split(')').next().unwrap_or("").trim().to_string())
        })
}

fn parse_impl(tokens: &[Token<'_>], kw: usize) -> Option<(ImplBlock, usize)> {
    let line = tokens[kw].line;
    let mut i = skip_generics(tokens, kw + 1);
    // Collect the path up to `for`, `where` or `{`; if `for` appears the
    // first path was the trait and the second is the self type.
    let mut first_path_last = None;
    let mut second_path_last = None;
    let mut saw_for = false;
    while i < tokens.len() && !tokens[i].is_punct('{') {
        let t = &tokens[i];
        if t.is_ident("for") {
            saw_for = true;
        } else if t.is_ident("where") {
            // Type name already captured; scan forward to the brace
            // without letting where-clause idents overwrite it.
            while i < tokens.len() && !tokens[i].is_punct('{') {
                i += 1;
            }
            break;
        } else if t.kind == crate::lexer::TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut")
        {
            if saw_for {
                second_path_last = Some(t.text.to_string());
            } else {
                first_path_last = Some(t.text.to_string());
            }
            // Generic arguments after a segment are not part of the name.
            if tokens.get(i + 1).is_some_and(|n| n.is_punct('<')) {
                i = skip_generics(tokens, i + 1);
                continue;
            }
        }
        i += 1;
    }
    let open = i;
    let close = skip_balanced(tokens, open, '{', '}')?;
    let (trait_name, type_name) = if saw_for {
        (first_path_last, second_path_last?)
    } else {
        (None, first_path_last?)
    };
    let mut methods = Vec::new();
    let mut j = open + 1;
    while j < close {
        if tokens[j].is_ident("fn") {
            if let Some(t) = tokens.get(j + 1) {
                let name = t.text.to_string();
                let fn_line = tokens[j].line;
                let mut k = skip_generics(tokens, j + 2);
                // Parameter list.
                let mut has_self = false;
                if tokens.get(k).is_some_and(|t| t.is_punct('(')) {
                    let params_end = skip_balanced(tokens, k, '(', ')').unwrap_or(close);
                    has_self = tokens[k..=params_end.min(close)]
                        .iter()
                        .any(|t| t.is_ident("self"));
                    k = params_end + 1;
                }
                // Return type / where clause up to the body brace or `;`.
                while k < close && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                    k += 1;
                }
                if k < close && tokens[k].is_punct('{') {
                    let body_end = skip_balanced(tokens, k, '{', '}').unwrap_or(close);
                    methods.push(Method {
                        name,
                        line: fn_line,
                        has_self,
                        body: (k + 1, body_end),
                    });
                    j = body_end + 1;
                    continue;
                }
                j = k + 1;
                continue;
            }
        }
        // Skip nested braces (consts with blocks, etc.) conservatively.
        if tokens[j].is_punct('{') {
            j = skip_balanced(tokens, j, '{', '}').map_or(close, |e| e + 1);
            continue;
        }
        j += 1;
    }
    Some((
        ImplBlock {
            trait_name,
            type_name,
            line,
            methods,
        },
        close + 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn struct_fields_with_annotations() {
        let src = "\
pub struct Core {
    cfg: Config,
    /// docs
    pub ongoing: Vec<Option<Ongoing>>,
    // snap: derived(rebuilt from ongoing on load)
    cand_cache: Vec<u64>,
    chan_bound: Vec<u64>, // snap: derived(monotone bound cache)
}";
        let l = lex(src);
        let items = parse_items(&l.tokens, &l.comments);
        assert_eq!(items.structs.len(), 1);
        let s = &items.structs[0];
        assert_eq!(s.name, "Core");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["cfg", "ongoing", "cand_cache", "chan_bound"]);
        assert_eq!(s.fields[0].derived, None);
        assert_eq!(
            s.fields[2].derived.as_deref(),
            Some("rebuilt from ongoing on load")
        );
        assert_eq!(s.fields[3].derived.as_deref(), Some("monotone bound cache"));
    }

    #[test]
    fn impl_blocks_and_methods() {
        let src = "\
impl AccessScheduler for BurstScheduler {
    fn tick(&mut self, now: u64) { self.x += 1; }
    fn mechanism(&self) -> M { M::A }
}
impl Core {
    pub fn load_snap(r: &mut R) -> Result<Self, E> { Ok(Core { cfg }) }
}";
        let l = lex(src);
        let items = parse_items(&l.tokens, &l.comments);
        assert_eq!(items.impls.len(), 2);
        assert_eq!(
            items.impls[0].trait_name.as_deref(),
            Some("AccessScheduler")
        );
        assert_eq!(items.impls[0].type_name, "BurstScheduler");
        assert_eq!(items.impls[0].methods.len(), 2);
        assert!(items.impls[0].methods[0].has_self);
        assert_eq!(items.impls[1].trait_name, None);
        assert_eq!(items.impls[1].type_name, "Core");
        assert!(!items.impls[1].methods[0].has_self);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "\
struct Real { a: u64 }
#[cfg(test)]
mod tests {
    struct Fake { b: u64 }
    #[test]
    fn t() {}
}";
        let l = lex(src);
        let items = parse_items(&l.tokens, &l.comments);
        assert_eq!(items.structs.len(), 1);
        assert_eq!(items.structs[0].name, "Real");
    }

    #[test]
    fn generic_impl_with_where_clause() {
        let src =
            "impl<R: Send> CellOutcome<R> where R: Clone { fn value(self) -> Option<R> { None } }";
        let l = lex(src);
        let items = parse_items(&l.tokens, &l.comments);
        assert_eq!(items.impls.len(), 1);
        assert_eq!(items.impls[0].type_name, "CellOutcome");
    }
}
