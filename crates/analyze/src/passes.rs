//! The four analysis passes: snapshot coverage, determinism hygiene,
//! panic-path audit and scheduler-contract conformance.
//!
//! Every pass emits [`Diagnostic`]s with `file:line` positions. Suppression
//! is explicit and reasoned: `// snap: derived(<reason>)` on struct fields
//! (snapshot pass), `// audit: allow(<rule>): <reason>` on or directly
//! above a flagged line (any pass), or a workspace allowlist entry
//! (`crates/analyze/allowlist.txt`) of the form
//! `<rule> <path-substring> -- <reason>`.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{in_spans, parse_items, test_spans, FileItems};
use crate::lexer::{lex, Lexed, TokKind, Token};

/// One finding, pointing at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule token (`snap-field`, `hash-iter`, `float`, `unwrap`,
    /// `index`, `contract`, ...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One workspace allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry suppresses.
    pub rule: String,
    /// Path substring the entry applies to.
    pub path: String,
    /// Written reason (required).
    pub reason: String,
}

/// The parsed workspace allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format; malformed lines become diagnostics
    /// against `path` rather than silent suppressions.
    pub fn parse(text: &str, path: &str) -> (Allowlist, Vec<Diagnostic>) {
        let mut entries = Vec::new();
        let mut diags = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = i as u32 + 1;
            let (head, reason) = match line.split_once("--") {
                Some((h, r)) => (h.trim(), r.trim()),
                None => {
                    diags.push(Diagnostic {
                        file: path.to_string(),
                        line: lineno,
                        rule: "allowlist",
                        message: format!("allowlist entry has no `-- <reason>` clause: {line:?}"),
                    });
                    continue;
                }
            };
            let mut parts = head.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), reason.is_empty()) {
                (Some(rule), Some(p), None, false) => entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: p.to_string(),
                    reason: reason.to_string(),
                }),
                _ => diags.push(Diagnostic {
                    file: path.to_string(),
                    line: lineno,
                    rule: "allowlist",
                    message: format!(
                        "malformed allowlist entry (want `<rule> <path> -- <reason>`): {line:?}"
                    ),
                }),
            }
        }
        (Allowlist { entries }, diags)
    }

    fn allows(&self, rule: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && file.contains(&e.path))
    }
}

/// Pass configuration: which files each scoped pass covers, plus the
/// allowlist.
#[derive(Debug, Default)]
pub struct Config {
    /// Path substrings in determinism-lint scope (timing-observable code).
    pub determinism_scope: Vec<String>,
    /// Path substrings in panic-audit scope (supervised-cell code).
    pub panic_scope: Vec<String>,
    /// Path substrings in io-bypass scope (chaos-plane code whose
    /// filesystem traffic must route through the `SimIo` seam).
    pub io_scope: Vec<String>,
    /// Workspace allowlist.
    pub allowlist: Allowlist,
}

impl Config {
    /// The scope this repository commits to: timing-observable crates for
    /// the determinism lint, supervised-cell files for the panic audit.
    pub fn repo_default() -> Config {
        Config {
            determinism_scope: vec![
                "crates/core/src/".into(),
                "crates/dram/src/".into(),
                "crates/cpu/src/".into(),
                "crates/sim/src/system.rs".into(),
                "crates/sim/src/cmp.rs".into(),
            ],
            panic_scope: vec![
                "crates/sim/src/supervisor.rs".into(),
                "crates/sim/src/journal.rs".into(),
                "crates/sim/src/checkpoint.rs".into(),
                "crates/sim/src/executor.rs".into(),
            ],
            io_scope: vec![
                "crates/sim/src/journal.rs".into(),
                "crates/sim/src/checkpoint.rs".into(),
                "crates/sim/src/supervisor.rs".into(),
            ],
            allowlist: Allowlist::default(),
        }
    }
}

/// One source file to analyze.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with unix separators.
    pub path: String,
    /// File contents.
    pub src: String,
}

/// Inline `// audit: allow(<rule>): <reason>` suppressions in one file.
struct InlineAllows {
    /// `(line, rule)` pairs with a non-empty reason.
    allows: Vec<(u32, String)>,
}

impl InlineAllows {
    fn collect(lexed: &Lexed<'_>, path: &str, diags: &mut Vec<Diagnostic>) -> InlineAllows {
        let mut allows = Vec::new();
        for c in &lexed.comments {
            let Some(rest) = c.text.trim().strip_prefix("audit: allow(") else {
                continue;
            };
            let Some((rule, reason)) = rest.split_once(')') else {
                continue;
            };
            let reason = reason.trim_start_matches(':').trim();
            if reason.is_empty() {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: c.line,
                    rule: "allowlist",
                    message: format!(
                        "inline `audit: allow({rule})` needs a reason: `// audit: allow({rule}): <why>`"
                    ),
                });
                continue;
            }
            allows.push((c.line, rule.trim().to_string()));
        }
        InlineAllows { allows }
    }

    /// Whether a diagnostic of `rule` at `line` is suppressed by an inline
    /// allow on the same line or the line directly above.
    fn allows(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }
}

/// Runs all four passes over `files` and returns the surviving
/// diagnostics sorted by `(file, line)`.
pub fn analyze_sources(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut snap = SnapCollector::default();
    for f in files {
        let lexed = lex(&f.src);
        let items = parse_items(&lexed.tokens, &lexed.comments);
        let inline = InlineAllows::collect(&lexed, &f.path, &mut diags);
        let spans = test_spans(&lexed.tokens);
        let mut file_diags = Vec::new();
        if cfg.determinism_scope.iter().any(|s| f.path.contains(s)) {
            determinism_pass(&f.path, &lexed.tokens, &spans, &mut file_diags);
        }
        if cfg.panic_scope.iter().any(|s| f.path.contains(s)) {
            panic_pass(&f.path, &lexed.tokens, &spans, &mut file_diags);
        }
        if cfg.io_scope.iter().any(|s| f.path.contains(s)) {
            io_bypass_pass(&f.path, &lexed.tokens, &spans, &mut file_diags);
        }
        contract_pass(&f.path, &items, &mut file_diags);
        snap.collect_file(&f.path, &lexed.tokens, &items);
        diags.extend(
            file_diags.into_iter().filter(|d| {
                !inline.allows(d.rule, d.line) && !cfg.allowlist.allows(d.rule, &d.file)
            }),
        );
    }
    let snap_diags = snap.finish();
    diags.extend(
        snap_diags
            .into_iter()
            .filter(|d| !cfg.allowlist.allows(d.rule, &d.file)),
    );
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

// --- Pass 1: snapshot coverage ---------------------------------------------

/// The serialisation method pairs the pass cross-checks.
const SNAP_PAIRS: [(&str, &str); 2] = [("save_snap", "load_snap"), ("save_state", "load_state")];

#[derive(Debug, Default)]
struct SnapCollector {
    /// `type name -> struct defs` (same name may exist in several crates).
    structs: BTreeMap<String, Vec<(String, crate::items::StructDef)>>,
    /// `(file, type) -> method name -> (line, field refs, self-calls)`.
    methods: BTreeMap<(String, String), BTreeMap<String, MethodInfo>>,
}

#[derive(Debug, Clone)]
struct MethodInfo {
    line: u32,
    refs: BTreeSet<String>,
    calls: BTreeSet<String>,
}

impl SnapCollector {
    fn collect_file(&mut self, path: &str, tokens: &[Token<'_>], items: &FileItems) {
        for s in &items.structs {
            self.structs
                .entry(s.name.clone())
                .or_default()
                .push((path.to_string(), s.clone()));
        }
        for imp in &items.impls {
            for m in &imp.methods {
                let body = &tokens[m.body.0..m.body.1];
                let mut refs = BTreeSet::new();
                let mut calls = BTreeSet::new();
                if m.has_self {
                    for (i, t) in body.iter().enumerate() {
                        if t.is_ident("self") && body.get(i + 1).is_some_and(|n| n.is_punct('.')) {
                            if let Some(field) = body.get(i + 2) {
                                if field.kind == TokKind::Ident {
                                    if body.get(i + 3).is_some_and(|n| n.is_punct('(')) {
                                        calls.insert(field.text.to_string());
                                    } else {
                                        refs.insert(field.text.to_string());
                                    }
                                }
                            }
                        }
                    }
                } else {
                    // Constructor-style (`fn load_snap(r) -> Result<Self>`):
                    // any identifier in the body can be a field reference
                    // (struct literal shorthand, `let cfg = ...`).
                    for t in body {
                        if t.kind == TokKind::Ident {
                            refs.insert(t.text.to_string());
                        }
                    }
                }
                self.methods
                    .entry((path.to_string(), imp.type_name.clone()))
                    .or_default()
                    .insert(
                        m.name.clone(),
                        MethodInfo {
                            line: m.line,
                            refs,
                            calls,
                        },
                    );
            }
        }
    }

    /// Field references of `name` plus (transitively) of every same-type
    /// method it calls through `self.` — serialisation helpers like
    /// `save_common` count toward coverage.
    fn transitive_refs(methods: &BTreeMap<String, MethodInfo>, name: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut refs = BTreeSet::new();
        let mut stack = vec![name.to_string()];
        while let Some(m) = stack.pop() {
            if !seen.insert(m.clone()) {
                continue;
            }
            if let Some(info) = methods.get(&m) {
                refs.extend(info.refs.iter().cloned());
                stack.extend(info.calls.iter().cloned());
            }
        }
        refs
    }

    fn finish(self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for ((file, type_name), methods) in &self.methods {
            for (save, load) in SNAP_PAIRS {
                let (s, l) = (methods.get(save), methods.get(load));
                if s.is_none() && l.is_none() {
                    continue;
                }
                // A lone half of a pair is itself a finding: state written
                // but never restored (or restored from nowhere).
                match (s, l) {
                    (Some(_), Some(_)) => {}
                    (Some(s), None) => {
                        diags.push(Diagnostic {
                            file: file.clone(),
                            line: s.line,
                            rule: "snap-pair",
                            message: format!("`{type_name}` defines `{save}` but no `{load}`"),
                        });
                        continue;
                    }
                    (None, Some(l)) => {
                        diags.push(Diagnostic {
                            file: file.clone(),
                            line: l.line,
                            rule: "snap-pair",
                            message: format!("`{type_name}` defines `{load}` but no `{save}`"),
                        });
                        continue;
                    }
                    (None, None) => unreachable!(),
                }
                // Pair the methods with the struct definition — same file
                // first, unique global match otherwise, else skip (enums,
                // types defined in code we don't see).
                let Some(def) = self.structs.get(type_name).and_then(|defs| {
                    defs.iter()
                        .find(|(f, _)| f == file)
                        .or(if defs.len() == 1 { defs.first() } else { None })
                        .map(|(_, d)| d)
                }) else {
                    continue;
                };
                let save_refs = Self::transitive_refs(methods, save);
                let load_refs = Self::transitive_refs(methods, load);
                for field in &def.fields {
                    match &field.derived {
                        Some(reason) if reason.is_empty() => diags.push(Diagnostic {
                            file: file.clone(),
                            line: field.line,
                            rule: "snap-reason",
                            message: format!(
                                "field `{}` of `{type_name}`: `snap: derived()` needs a reason",
                                field.name
                            ),
                        }),
                        Some(_) => {} // audited derived state
                        None => {
                            for (refs, method) in [(&save_refs, save), (&load_refs, load)] {
                                if !refs.contains(&field.name) {
                                    diags.push(Diagnostic {
                                        file: file.clone(),
                                        line: field.line,
                                        rule: "snap-field",
                                        message: format!(
                                            "field `{}` of `{type_name}` is not referenced in \
                                             `{method}` — serialise it or annotate \
                                             `// snap: derived(<reason>)`",
                                            field.name
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        diags
    }
}

// --- Pass 2: determinism lint ----------------------------------------------

const HASH_ITERATORS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

fn determinism_pass(
    path: &str,
    tokens: &[Token<'_>],
    skip: &[(usize, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    // Identifiers declared with a HashMap/HashSet type or initialiser.
    let mut hash_idents: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) || in_spans(skip, i) {
            continue;
        }
        // Walk left over the `std :: collections ::` path and the `:` of
        // the declaration; the first identifier left of that is the name.
        let mut j = i;
        while j > 0 {
            let p = &tokens[j - 1];
            if p.is_punct(':') || p.is_ident("std") || p.is_ident("collections") {
                j -= 1;
            } else {
                break;
            }
        }
        if j < i {
            // Consumed at least the declaration `:`: `owners: HashMap<..>`.
            if let Some(name) = tokens.get(j.wrapping_sub(1)) {
                if name.kind == TokKind::Ident {
                    hash_idents.insert(name.text);
                }
            }
        } else if tokens
            .get(i.wrapping_sub(1))
            .is_some_and(|p| p.is_punct('='))
        {
            // `let [mut] completed = HashMap::new()`.
            if let Some(name) = tokens.get(i.wrapping_sub(2)) {
                if name.kind == TokKind::Ident && !name.is_ident("mut") {
                    hash_idents.insert(name.text);
                } else if name.is_ident("mut") {
                    if let Some(n2) = tokens.get(i.wrapping_sub(3)) {
                        if n2.kind == TokKind::Ident {
                            hash_idents.insert(n2.text);
                        }
                    }
                }
            }
        }
    }
    let mut flagged_float_lines = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(skip, i) {
            continue;
        }
        match t.kind {
            TokKind::Ident if hash_idents.contains(t.text) => {
                // `map.keys()` / `map.drain()` / ...
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    && tokens
                        .get(i + 2)
                        .is_some_and(|n| HASH_ITERATORS.contains(&n.text))
                    && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
                {
                    diags.push(Diagnostic {
                        file: path.to_string(),
                        line: t.line,
                        rule: "hash-iter",
                        message: format!(
                            "order-nondeterministic iteration `.{}()` over hash collection \
                             `{}` in timing-observable code — use BTreeMap/BTreeSet or sort \
                             the keys first",
                            tokens[i + 2].text,
                            t.text
                        ),
                    });
                }
                // `for x in [&][mut] [self.]map`
                let mut k = i;
                if k >= 2 && tokens[k - 1].is_punct('.') && tokens[k - 2].is_ident("self") {
                    k -= 2;
                }
                while k >= 1 && (tokens[k - 1].is_punct('&') || tokens[k - 1].is_ident("mut")) {
                    k -= 1;
                }
                if k >= 1
                    && tokens[k - 1].is_ident("in")
                    && !tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                {
                    diags.push(Diagnostic {
                        file: path.to_string(),
                        line: t.line,
                        rule: "hash-iter",
                        message: format!(
                            "order-nondeterministic `for` loop over hash collection `{}` in \
                             timing-observable code — use BTreeMap/BTreeSet or sort first",
                            t.text
                        ),
                    });
                }
            }
            TokKind::Ident if t.is_ident("Instant") || t.is_ident("SystemTime") => {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: t.line,
                    rule: "wall-clock",
                    message: format!(
                        "`{}` in timing-observable code — wall-clock time must never feed \
                         simulated timing",
                        t.text
                    ),
                });
            }
            TokKind::Ident if t.is_ident("thread_rng") || t.is_ident("from_entropy") => {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: t.line,
                    rule: "rng",
                    message: format!(
                        "`{}` in timing-observable code — only seeded deterministic RNGs are \
                         allowed",
                        t.text
                    ),
                });
            }
            TokKind::Ident
                if (t.is_ident("f64") || t.is_ident("f32"))
                    && flagged_float_lines.insert(t.line) =>
            {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: t.line,
                    rule: "float",
                    message: format!(
                        "`{}` in timing-observable code — float arithmetic must not feed \
                         scheduling or timing decisions (integer arithmetic, or \
                         `audit: allow(float)` for report-only metrics)",
                        t.text
                    ),
                });
            }
            TokKind::Float if flagged_float_lines.insert(t.line) => {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: t.line,
                    rule: "float",
                    message: format!(
                        "float literal `{}` in timing-observable code — float arithmetic \
                         must not feed scheduling or timing decisions",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
}

// --- Pass 3: panic-path audit ----------------------------------------------

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = ...` is a slice pattern, not an index).
const NON_INDEX_KEYWORDS: [&str; 11] = [
    "mut", "dyn", "as", "in", "return", "break", "else", "ref", "move", "const", "let",
];

fn panic_pass(
    path: &str,
    tokens: &[Token<'_>],
    skip: &[(usize, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(skip, i) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &tokens[j]);
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && prev.is_some_and(|p| p.is_punct('.'))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: if t.is_ident("unwrap") {
                    "unwrap"
                } else {
                    "expect"
                },
                message: format!(
                    "`.{}()` in supervised-cell code — a panic here burns a retry budget; \
                     return a structured error (`FailureKind`/`CellError`) instead",
                    t.text
                ),
            });
        } else if (t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: "panic",
                message: format!(
                    "`{}!` in supervised-cell code — prefer a structured error so the \
                     failure is classified instead of unwound",
                    t.text
                ),
            });
        } else if t.is_punct('[') {
            let indexes = match prev {
                Some(p) if p.kind == TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text),
                Some(p) => p.is_punct(')') || p.is_punct(']'),
                None => false,
            };
            if indexes {
                diags.push(Diagnostic {
                    file: path.to_string(),
                    line: t.line,
                    rule: "index",
                    message: format!(
                        "slice indexing `{}[..]` in supervised-cell code — panics on \
                         out-of-range; use `.get()`/destructuring or justify with \
                         `audit: allow(index)`",
                        prev.map_or("", |p| p.text)
                    ),
                });
            }
        }
    }
}

// --- Pass 3b: io-bypass audit ----------------------------------------------

/// Filesystem entry points that must route through the `SimIo` seam in
/// chaos-plane code: a direct call here is invisible to the crash-point
/// matrix, so the robustness it claims was never tested.
const IO_ENTRY_POINTS: [&str; 3] = ["fs", "File", "OpenOptions"];

/// Flags direct `std::fs`/`File::`/`OpenOptions` usage in io-scope files
/// outside test code. `use` declarations are exempt (importing a type is
/// not an I/O operation — `File` legitimately appears in signatures),
/// as is anything behind a reasoned `audit: allow(io-bypass)`.
fn io_bypass_pass(
    path: &str,
    tokens: &[Token<'_>],
    skip: &[(usize, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    let mut in_use = false;
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("use") {
            in_use = true;
        } else if in_use {
            if t.is_punct(';') {
                in_use = false;
            }
            continue;
        }
        if in_spans(skip, i) {
            continue;
        }
        // Only path-qualified uses (`fs::…`, `File::…`) perform I/O;
        // bare `File` in a type position is fine.
        let qualifies = IO_ENTRY_POINTS.iter().any(|e| t.is_ident(e))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'));
        // `std::fs` spells the `fs` segment after `std::`; catch it via
        // the `fs` token itself, so both spellings hit the same rule.
        if qualifies {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: "io-bypass",
                message: format!(
                    "direct `{}::…` filesystem call in chaos-plane code bypasses the \
                     `SimIo` seam — the crash-point matrix cannot fault it; route \
                     through the journal/checkpoint `io` handle or justify with \
                     `audit: allow(io-bypass)`",
                    t.text
                ),
            });
        }
    }
}

// --- Pass 4: scheduler-contract conformance --------------------------------

/// Every method of the `AccessScheduler` event-wheel contract. The
/// compiler enforces the non-defaulted ones; the point of the pass is the
/// *defaulted* tail — a new mechanism must opt into each default visibly
/// rather than inherit behaviour that silently disables skipping,
/// invalidation vetoes or checkpointing.
pub const SCHEDULER_CONTRACT: [&str; 14] = [
    "mechanism",
    "can_accept",
    "enqueue",
    "tick",
    "stats",
    "outstanding",
    "stall_diagnostic",
    "quiescent",
    "advance_quiescent",
    "next_busy_event",
    "enqueue_may_advance_horizon",
    "advance_blocked",
    "save_state",
    "load_state",
];

fn contract_pass(path: &str, items: &FileItems, diags: &mut Vec<Diagnostic>) {
    for imp in &items.impls {
        if imp.trait_name.as_deref() != Some("AccessScheduler") {
            continue;
        }
        let defined: BTreeSet<&str> = imp.methods.iter().map(|m| m.name.as_str()).collect();
        let missing: Vec<&str> = SCHEDULER_CONTRACT
            .iter()
            .copied()
            .filter(|m| !defined.contains(m))
            .collect();
        if !missing.is_empty() {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: imp.line,
                rule: "contract",
                message: format!(
                    "`impl AccessScheduler for {}` does not define {} — every mechanism \
                     must implement the full event-wheel contract explicitly (a silently \
                     inherited default can disable horizon skipping or checkpointing)",
                    imp.type_name,
                    missing
                        .iter()
                        .map(|m| format!("`{m}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}
