//! `burst-analyze` — in-repo static analysis for the burst-scheduling
//! workspace.
//!
//! Four passes over `crates/*/src/**/*.rs` (see [`passes`]):
//!
//! 1. **snap-coverage** — every type with `save_snap`/`load_snap` (or
//!    `save_state`/`load_state`) must reference each struct field in both
//!    methods, or annotate the field `// snap: derived(<reason>)`.
//! 2. **determinism** — no hash-order iteration, wall-clock reads, ambient
//!    RNG or float arithmetic in timing-observable code.
//! 3. **panic-path** — no `unwrap`/`expect`/`panic!`/slice indexing in
//!    supervised-cell code, where a panic burns a retry budget.
//! 4. **scheduler-contract** — every `impl AccessScheduler` defines the
//!    full method set explicitly, defaults included.
//!
//! The crate is deliberately dependency-free (offline CI): the Rust lexer
//! and item parser are hand-rolled in [`lexer`] and [`items`].

pub mod items;
pub mod lexer;
pub mod passes;

use std::io;
use std::path::{Path, PathBuf};

pub use passes::{analyze_sources, Allowlist, Config, Diagnostic, SourceFile};

/// Workspace-relative path of the allowlist consulted by
/// [`analyze_workspace`].
pub const ALLOWLIST_PATH: &str = "crates/analyze/allowlist.txt";

/// Collects every `crates/*/src/**/*.rs` under `root`, with paths
/// workspace-relative and unix-separated, in sorted order.
pub fn collect_workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut rs_files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut rs_files)?;
        }
    }
    rs_files.sort();
    let mut out = Vec::with_capacity(rs_files.len());
    for p in rs_files {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile {
            path: rel,
            src: std::fs::read_to_string(&p)?,
        });
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full analysis over the workspace at `root` with the
/// repository-default scopes and the checked-in allowlist. Allowlist
/// syntax errors surface as diagnostics.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let files = collect_workspace_sources(root)?;
    let mut cfg = Config::repo_default();
    let allowlist_file = root.join(ALLOWLIST_PATH);
    let mut diags = Vec::new();
    if let Ok(text) = std::fs::read_to_string(&allowlist_file) {
        let (list, errs) = Allowlist::parse(&text, ALLOWLIST_PATH);
        cfg.allowlist = list;
        diags = errs;
    }
    diags.extend(analyze_sources(&files, &cfg));
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

/// Finds the workspace root by walking up from `start` to the first
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
