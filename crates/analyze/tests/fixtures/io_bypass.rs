//! Seeded io-bypass violations: direct filesystem calls in chaos-plane
//! scope that the `SimIo` seam cannot fault.

use std::fs::File;

fn writes_directly(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, "x")?;
    let _f = File::create(path)?;
    let _o = OpenOptions::new().append(true).open(path)?;
    Ok(())
}

fn excused(path: &std::path::Path) {
    // audit: allow(io-bypass): fixture-sanctioned best-effort cleanup
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::fs::read("ignored");
    }
}
