//! Non-violations the analyzer must NOT flag: deterministic collections,
//! annotated derived state, slice patterns, strings that merely mention
//! banned names, and nondeterminism confined to `#[cfg(test)]`. The
//! fixture test asserts this file produces zero diagnostics.

use std::collections::BTreeMap;

pub struct Snapped {
    pub a: u64,
    // snap: derived(rebuilt from `a` by load_snap)
    cache: u64,
}

impl Snapped {
    fn save_snap(&self, w: &mut Vec<u64>) {
        w.push(self.a);
    }

    fn load_snap(&mut self, vals: &[u64]) {
        self.a = vals.first().copied().unwrap_or(0);
        self.cache = self.a * 2;
    }
}

pub fn fine(map: BTreeMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (k, v) in &map {
        sum += k + v;
    }
    let name = "HashMap in a string literal is fine";
    let [head, tail]: [u64; 2] = [sum, name.len() as u64];
    head + tail
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn nondeterminism_confined_to_tests_is_fine() {
        let m: HashMap<u64, u64> = HashMap::new();
        for (k, _) in m.iter() {
            let v = [k];
            let _ = v[0] as f64;
        }
    }
}
