//! Non-violations the analyzer must NOT flag: deterministic collections,
//! annotated derived state, slice patterns, strings that merely mention
//! banned names, and nondeterminism confined to `#[cfg(test)]`. The
//! fixture test asserts this file produces zero diagnostics.

use std::collections::BTreeMap;

pub struct Snapped {
    pub a: u64,
    // snap: derived(rebuilt from `a` by load_snap)
    cache: u64,
}

impl Snapped {
    fn save_snap(&self, w: &mut Vec<u64>) {
        w.push(self.a);
    }

    fn load_snap(&mut self, vals: &[u64]) {
        self.a = vals.first().copied().unwrap_or(0);
        self.cache = self.a * 2;
    }
}

/// The dense open-addressed-table idiom (`MshrTable`, `RobRing`): the
/// physical slot layout is a probe/ring artefact, so every field is
/// `snap: derived` and the snapshot serialises logical entries in sorted
/// key order instead. The sort itself is deterministic code the
/// determinism pass must not flag.
pub struct DenseTable {
    slots: Vec<u64>, // snap: derived(entries serialised key-sorted by save_snap)
    mask: usize,     // snap: derived(table geometry)
    len: usize,      // snap: derived(count serialised by save_snap)
}

impl DenseTable {
    fn save_snap(&self, w: &mut Vec<u64>) {
        let mut keys: Vec<u64> = self.slots.iter().copied().filter(|&k| k != 0).collect();
        keys.sort_unstable();
        w.push(keys.len() as u64);
        w.extend(keys);
    }

    fn load_snap(&mut self, vals: &[u64]) {
        self.slots = vec![0; self.mask + 1];
        self.len = 0;
        for &k in vals {
            self.insert(k);
        }
    }
}

pub fn fine(map: BTreeMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (k, v) in &map {
        sum += k + v;
    }
    let name = "HashMap in a string literal is fine";
    let [head, tail]: [u64; 2] = [sum, name.len() as u64];
    head + tail
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn nondeterminism_confined_to_tests_is_fine() {
        let m: HashMap<u64, u64> = HashMap::new();
        for (k, _) in m.iter() {
            let v = [k];
            let _ = v[0] as f64;
        }
    }
}
