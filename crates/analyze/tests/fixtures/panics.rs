//! Seeded panic-path violations. Never compiled — parsed by
//! `analyze_tests.rs`. Keep the line numbers stable.

pub fn risky(v: &[u64], o: Option<u64>) -> u64 {
    let first = v[0];
    let x = o.unwrap();
    let y = o.expect("present");
    if first > 10 {
        panic!("boom");
    }
    x + y
}

pub fn excused(v: &[u64]) -> u64 {
    // audit: allow(index): length checked by caller contract
    v[0]
}
