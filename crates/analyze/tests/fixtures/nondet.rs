//! Seeded determinism violations. Never compiled — parsed by
//! `analyze_tests.rs`. Keep the line numbers stable.

use std::collections::HashMap;
use std::time::Instant;

pub fn bad(map: HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (k, v) in &map {
        sum += k + v;
    }
    for k in map.keys() {
        sum += k;
    }
    let started = Instant::now();
    let rng = thread_rng();
    let share = sum as f64 * 0.5;
    share as u64
}
