//! Seeded scheduler-contract violation. Never compiled — parsed by
//! `analyze_tests.rs`. Keep the line numbers stable.

pub struct Dead;

impl AccessScheduler for Dead {
    fn mechanism(&self) -> Mechanism {
        Mechanism::BkInOrder
    }

    fn can_accept(&self, _kind: AccessKind) -> bool {
        false
    }

    fn enqueue(&mut self, _a: Access, _now: Cycle, _c: &mut Vec<Completion>) -> EnqueueOutcome {
        EnqueueOutcome::Rejected
    }

    fn tick(&mut self, _dram: &mut Dram, _now: Cycle, _c: &mut Vec<Completion>) {}

    fn stats(&self) -> &CtrlStats {
        unimplemented!()
    }

    fn outstanding(&self) -> Outstanding {
        Outstanding::default()
    }
}
