//! Seeded snap-coverage violations. Never compiled — parsed by
//! `analyze_tests.rs`, which asserts the exact diagnostics. Keep the line
//! numbers stable.

pub struct Widget {
    pub a: u64,
    pub b: u64,
    cache: Vec<u64>,
    // snap: derived()
    bad_reason: u32,
}

impl Widget {
    fn save_snap(&self, w: &mut W) {
        w.u64(self.a);
    }

    fn load_snap(&mut self, r: &mut R) {
        self.a = r.u64();
        self.cache.clear();
        self.bad_reason = 0;
    }
}

pub struct HalfPair {
    x: u64,
}

impl HalfPair {
    fn save_state(&self) {
        let _ = self.x;
    }
}

pub struct DenseMiss {
    pub seq: u64,
    slots: Vec<u64>,
    mask: usize,
}

impl DenseMiss {
    fn save_snap(&self, w: &mut W) {
        w.u64(self.seq);
    }

    fn load_snap(&mut self, r: &mut R) {
        self.seq = r.u64();
    }
}
