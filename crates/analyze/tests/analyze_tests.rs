//! Fixture tests: each seeded-violation fixture must produce exactly the
//! expected diagnostics (file, line, rule), the clean fixture must produce
//! none, and the workspace itself must analyze clean.

use std::path::Path;

use burst_analyze::{analyze_sources, Allowlist, Config, Diagnostic, SourceFile};

/// Loads a fixture as a `SourceFile` with a stable workspace-style path.
fn fixture(name: &str) -> SourceFile {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        path: format!("fixtures/{name}"),
        src: std::fs::read_to_string(&disk)
            .unwrap_or_else(|e| panic!("reading fixture {}: {e}", disk.display())),
    }
}

/// Scopes mirroring the repo config: determinism and panic rules each
/// apply only to the fixtures seeded for them (plus the clean fixture,
/// which must survive both).
fn fixture_config() -> Config {
    Config {
        determinism_scope: vec!["fixtures/nondet.rs".into(), "fixtures/clean.rs".into()],
        panic_scope: vec!["fixtures/panics.rs".into(), "fixtures/clean.rs".into()],
        io_scope: vec!["fixtures/io_bypass.rs".into(), "fixtures/clean.rs".into()],
        allowlist: Allowlist::default(),
    }
}

fn lines_and_rules(diags: &[Diagnostic]) -> Vec<(u32, &str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn snap_fixture_produces_exact_diagnostics() {
    let diags = analyze_sources(&[fixture("snap_missing.rs")], &fixture_config());
    assert_eq!(
        lines_and_rules(&diags),
        vec![
            (7, "snap-field"),   // `b` absent from save_snap
            (7, "snap-field"),   // `b` absent from load_snap
            (8, "snap-field"),   // `cache` absent from save_snap, unannotated
            (10, "snap-reason"), // `snap: derived()` with empty reason
            (30, "snap-pair"),   // `HalfPair` has save_state but no load_state
            (37, "snap-field"),  // dense-table `slots` absent from save_snap
            (37, "snap-field"),  // dense-table `slots` absent from load_snap
            (38, "snap-field"),  // dense-table `mask` absent from save_snap
            (38, "snap-field"),  // dense-table `mask` absent from load_snap
        ],
        "diagnostics were: {diags:#?}"
    );
    assert!(diags[0].message.contains("`b` of `Widget`"));
    assert!(diags[2].message.contains("snap: derived"));
    assert!(diags[4]
        .message
        .contains("`save_state` but no `load_state`"));
}

#[test]
fn determinism_fixture_produces_exact_diagnostics() {
    let diags = analyze_sources(&[fixture("nondet.rs")], &fixture_config());
    assert_eq!(
        lines_and_rules(&diags),
        vec![
            (5, "wall-clock"),  // use std::time::Instant
            (9, "hash-iter"),   // for (k, v) in &map
            (12, "hash-iter"),  // map.keys()
            (15, "wall-clock"), // Instant::now()
            (16, "rng"),        // thread_rng()
            (17, "float"),      // f64 arithmetic (one diagnostic per line)
        ],
        "diagnostics were: {diags:#?}"
    );
    assert!(diags[1]
        .message
        .contains("`for` loop over hash collection `map`"));
    assert!(diags[2].message.contains(".keys()"));
}

#[test]
fn panic_fixture_produces_exact_diagnostics() {
    let diags = analyze_sources(&[fixture("panics.rs")], &fixture_config());
    assert_eq!(
        lines_and_rules(&diags),
        vec![
            (5, "index"),  // v[0]
            (6, "unwrap"), // o.unwrap()
            (7, "expect"), // o.expect(...)
            (9, "panic"),  // panic!
                           // v[0] in `excused` is suppressed by its inline allow.
        ],
        "diagnostics were: {diags:#?}"
    );
}

#[test]
fn contract_fixture_produces_exact_diagnostics() {
    let diags = analyze_sources(&[fixture("contract.rs")], &fixture_config());
    assert_eq!(lines_and_rules(&diags), vec![(6, "contract")]);
    for missing in [
        "stall_diagnostic",
        "quiescent",
        "advance_quiescent",
        "next_busy_event",
        "enqueue_may_advance_horizon",
        "advance_blocked",
        "save_state",
        "load_state",
    ] {
        assert!(
            diags[0].message.contains(missing),
            "contract diagnostic does not name `{missing}`: {}",
            diags[0].message
        );
    }
}

#[test]
fn io_bypass_fixture_produces_exact_diagnostics() {
    let diags = analyze_sources(&[fixture("io_bypass.rs")], &fixture_config());
    assert_eq!(
        lines_and_rules(&diags),
        vec![
            (7, "io-bypass"), // std::fs::write
            (8, "io-bypass"), // File::create
            (9, "io-bypass"), // OpenOptions::new
                              // `use std::fs::File` (line 4) is an import, not I/O;
                              // line 15 is behind a reasoned inline allow;
                              // line 22 is test code.
        ],
        "diagnostics were: {diags:#?}"
    );
    assert!(diags[0].message.contains("SimIo"), "{}", diags[0].message);
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let diags = analyze_sources(&[fixture("clean.rs")], &fixture_config());
    assert!(diags.is_empty(), "clean fixture flagged: {diags:#?}");
}

#[test]
fn inline_allow_without_reason_is_itself_flagged() {
    let src = "fn f(v: &[u64]) -> u64 {\n    // audit: allow(index)\n    v[0]\n}\n";
    let cfg = Config {
        determinism_scope: vec![],
        panic_scope: vec!["reasonless.rs".into()],
        io_scope: vec![],
        allowlist: Allowlist::default(),
    };
    let diags = analyze_sources(
        &[SourceFile {
            path: "reasonless.rs".into(),
            src: src.into(),
        }],
        &cfg,
    );
    // The reasonless allow does not suppress, and is reported itself.
    assert_eq!(
        lines_and_rules(&diags),
        vec![(2, "allowlist"), (3, "index")],
        "diagnostics were: {diags:#?}"
    );
}

#[test]
fn malformed_allowlist_entries_are_reported() {
    let (list, errs) = Allowlist::parse(
        "# comment\nfloat crates/core/src/stats.rs -- report-only metrics\nfloat nowhere.rs\nfloat a b -- too many fields\n",
        "allowlist.txt",
    );
    assert_eq!(list.entries.len(), 1);
    assert_eq!(
        errs.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![3, 4],
        "errors were: {errs:#?}"
    );
}

#[test]
fn workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has a workspace root two levels up");
    let diags = burst_analyze::analyze_workspace(root).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "the workspace must analyze clean; findings:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
