//! Criterion bench: the discrete-event engine on busy-phase traffic.
//!
//! Where `cycle_skip` measures quiescent-stretch jumping (an idle-heavy
//! win the legacy `Engine::Cycle` already gets), this bench measures the
//! event engine's defining gain: jumping cycles *while the memory system
//! is busy*. `swim` streams with high memory-level parallelism, so the
//! controller is almost never quiescent and `Engine::Cycle` degenerates
//! to per-cycle stepping — the gap to `Engine::Event` is pure busy-jump
//! win. `mcf` mixes both regimes.

use burst_core::Mechanism;
use burst_sim::{simulate, Engine, RunLength, SystemConfig};
use burst_workloads::SpecBenchmark;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_engine");
    group.sample_size(10);
    for bench in [SpecBenchmark::Swim, SpecBenchmark::Mcf] {
        for engine in Engine::ALL {
            let label = format!("{}/{}", bench.name(), engine.name());
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(bench, engine),
                |b, &(bench, engine)| {
                    let cfg = SystemConfig::baseline()
                        .with_mechanism(Mechanism::BurstTh(52))
                        .with_engine(engine);
                    b.iter(|| {
                        simulate(&cfg, bench.workload(42), RunLength::Instructions(5_000))
                            .mem_cycles
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_event_engine);
criterion_main!(benches);
