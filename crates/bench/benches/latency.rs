//! Criterion bench: the Figure 7/8/9 measurement pipeline — controller
//! scheduling with statistics collection, isolated from the CPU model.

use burst_core::{Access, AccessId, AccessKind, CtrlConfig, Mechanism};
use burst_dram::{AddressMapping, Dram, DramConfig, PhysAddr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Pushes `n` mixed accesses through a scheduler and drains it, returning
/// the total memory cycles — the controller-side hot loop.
fn controller_run(mechanism: Mechanism, n: u64) -> u64 {
    let dram_cfg = DramConfig::baseline();
    let mut dram = Dram::new(dram_cfg, AddressMapping::PageInterleaving);
    let mut sched = mechanism.build(CtrlConfig::default(), dram_cfg.geometry);
    let mut done = Vec::new();
    let mut now = 0u64;
    for i in 0..n {
        let addr = PhysAddr::new((i % 97) * 64 + (i % 13) * (1 << 21));
        let kind = if i % 4 == 3 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if sched.can_accept(kind) {
            let a = Access::new(AccessId::new(i), kind, addr, dram.decode(addr), now);
            sched.enqueue(a, now, &mut done);
        }
        sched.tick(&mut dram, now, &mut done);
        now += 1;
    }
    while sched.outstanding().total() > 0 {
        sched.tick(&mut dram, now, &mut done);
        now += 1;
    }
    now
}

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_pipeline");
    group.sample_size(20);
    for mechanism in [
        Mechanism::BkInOrder,
        Mechanism::RowHit,
        Mechanism::BurstTh(52),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &mechanism,
            |b, &m| b.iter(|| black_box(controller_run(m, 500))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
