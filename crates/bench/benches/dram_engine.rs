//! Criterion bench: raw DDR2 timing-engine throughput — command legality
//! checks and issue bookkeeping, the simulator's hot path (Table 1 / Fig 1
//! substrate).

use burst_dram::{Channel, Command, Cycle, Dir, DramConfig, Loc, RowState};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Streams `n` accesses through one channel with a greedy driver.
fn stream_accesses(n: u64) -> Cycle {
    let cfg = DramConfig::small();
    let mut ch = Channel::new(cfg);
    let mut now: Cycle = 0;
    for i in 0..n {
        let loc = Loc::new(0, 0, (i % 4) as u8, (i % 7) as u32, ((i * 8) % 256) as u32);
        loop {
            ch.tick(now);
            let cmd = match ch.row_state(loc) {
                RowState::Hit => Command::Column {
                    loc,
                    dir: Dir::Read,
                    auto_precharge: false,
                },
                RowState::Empty => Command::Activate(loc),
                RowState::Conflict => Command::Precharge(loc),
            };
            if ch.can_issue(&cmd, now) {
                ch.issue(&cmd, now);
                if cmd.is_column() {
                    break;
                }
            }
            now += 1;
        }
        now += 1;
    }
    now
}

fn bench_dram_engine(c: &mut Criterion) {
    c.bench_function("dram_stream_1000_accesses", |b| {
        b.iter(|| black_box(stream_accesses(1_000)))
    });

    c.bench_function("dram_can_issue_check", |b| {
        let cfg = DramConfig::baseline();
        let mut ch = Channel::new(cfg);
        let loc = Loc::new(0, 0, 0, 5, 0);
        ch.issue(&Command::Activate(loc), 0);
        let cmd = Command::read(loc);
        b.iter(|| black_box(ch.can_issue(black_box(&cmd), black_box(cfg.timing.t_rcd))))
    });

    c.bench_function("dram_refresh_tick_16_banks", |b| {
        let mut ch = Channel::new(DramConfig::baseline());
        let mut now = 0u64;
        b.iter(|| {
            ch.tick(black_box(now));
            now += 1;
        })
    });
}

criterion_group!(benches, bench_dram_engine);
criterion_main!(benches);
