//! Criterion bench: the batched CPU model against its per-cycle reference.
//!
//! Drives a bare [`Cpu`] (no DRAM, flat-latency memory service) over three
//! micro-workloads that isolate the batch paths of `Cpu::run_until`:
//!
//! - **hit_streak** — long full-width compute runs broken by cache-hitting
//!   loads: the closed-form compute streak should collapse almost every
//!   epoch into arithmetic.
//! - **miss_storm** — independent loads striding fresh lines (high MLP):
//!   dispatch rarely blocks for long, so batching has the least to win —
//!   the regression-sensitive case.
//! - **chase** — dependent loads (MLP 1): the core spends most cycles
//!   provably stalled, the span `idle_until` batches in one jump.
//!
//! Each workload runs under both drivers so the pair's ratio is the
//! macro-step win independent of machine noise.

use std::collections::VecDeque;

use burst_cpu::{Cpu, CpuConfig};
use burst_workloads::{Op, ReplaySource};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// CPU cycles simulated per iteration.
const RUN: u64 = 50_000;
/// CPU cycles between external request/completion service — the cadence
/// the full system imposes (it services the core every memory cycle).
const EPOCH: u64 = 16;
/// Flat main-memory latency in CPU cycles.
const LATENCY: u64 = 200;

/// Full-width compute runs with a cache-hitting load sprinkled in: after
/// the first touch the 4-line footprint lives in L1 forever.
fn hit_streak() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..4u64 {
        ops.extend(std::iter::repeat_n(Op::Compute, 97));
        ops.push(Op::load(i << 6));
    }
    ops
}

/// Independent loads marching over fresh lines, two computes apart: high
/// memory-level parallelism, dispatch rarely blocked for long.
fn miss_storm() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..512u64 {
        ops.push(Op::load(i << 14));
        ops.push(Op::Compute);
        ops.push(Op::Compute);
    }
    ops
}

/// A pointer chase: every load consumes the previous one's data, pinning
/// memory-level parallelism at 1.
fn chase() -> Vec<Op> {
    (0..512u64).map(|i| Op::dependent_load(i << 14)).collect()
}

/// Runs `RUN` CPU cycles against a flat-latency memory, via `run_until`
/// (batched) or a plain `cycle` loop, returning instructions retired.
fn drive(ops: &[Op], batched: bool) -> u64 {
    let mut cpu = Cpu::new(CpuConfig::baseline());
    let mut src = ReplaySource::new("bench", ops.to_vec());
    let mut inflight: VecDeque<(u64, u64)> = VecDeque::new();
    while cpu.now() < RUN {
        let target = (cpu.now() + EPOCH).min(RUN);
        if batched {
            cpu.run_until(target, &mut src);
        } else {
            while cpu.now() < target {
                cpu.cycle(&mut src);
            }
        }
        while let Some(line) = cpu.pop_read_request() {
            inflight.push_back((cpu.now() + LATENCY, line));
        }
        while cpu.pop_writeback().is_some() {}
        while inflight.front().is_some_and(|&(at, _)| at <= cpu.now()) {
            let (at, line) = inflight.pop_front().expect("checked front");
            cpu.complete_read(line, at);
        }
    }
    cpu.retired()
}

fn bench_cpu_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_model");
    group.sample_size(20);
    let workloads = [
        ("hit_streak", hit_streak()),
        ("miss_storm", miss_storm()),
        ("chase", chase()),
    ];
    for (name, ops) in &workloads {
        // The two drivers must agree before their timings mean anything.
        assert_eq!(
            drive(ops, false),
            drive(ops, true),
            "{name}: batched and per-cycle drivers retired different counts"
        );
        for batched in [false, true] {
            let label = format!("{name}/{}", if batched { "batched" } else { "per_cycle" });
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(ops, batched),
                |b, &(ops, batched)| b.iter(|| drive(ops, batched)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_model);
criterion_main!(benches);
