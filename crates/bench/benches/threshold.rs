//! Criterion bench: the Figure 11/12 threshold sweep points. Execution
//! time per threshold is the figure's y-axis; wall-clock here tracks the
//! simulated cycle count, so relative sample times mirror the figure's
//! shape.

use burst_core::Mechanism;
use burst_sim::{simulate, RunLength, SystemConfig};
use burst_workloads::SpecBenchmark;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_threshold");
    group.sample_size(10);
    let points = [
        Mechanism::BurstWp,
        Mechanism::BurstTh(16),
        Mechanism::BurstTh(32),
        Mechanism::BurstTh(48),
        Mechanism::BurstTh(52),
        Mechanism::BurstRp,
    ];
    for mechanism in points {
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &mechanism,
            |b, &m| {
                let cfg = SystemConfig::baseline().with_mechanism(m);
                b.iter(|| {
                    simulate(
                        &cfg,
                        SpecBenchmark::Swim.workload(42),
                        RunLength::Instructions(5_000),
                    )
                    .cpu_cycles
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
