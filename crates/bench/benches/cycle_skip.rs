//! Criterion bench: event-horizon cycle skipping on idle-heavy traffic.
//!
//! Simulates a fixed budget of the `mcf` surrogate — 80% pointer chase
//! with memory-level parallelism 1, so the CPU spends most memory cycles
//! fully stalled — with skipping off and on. The gap between the two
//! series is the win of `System::try_run` jumping quiescent stretches;
//! `swim` (bandwidth-bound, never quiescent for long) is included as the
//! no-opportunity baseline where skipping must cost nothing measurable.

use burst_core::Mechanism;
use burst_sim::{simulate, Engine, RunLength, SystemConfig};
use burst_workloads::SpecBenchmark;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cycle_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_skip");
    group.sample_size(10);
    let cases = [
        (SpecBenchmark::Mcf, Engine::CycleNoSkip),
        (SpecBenchmark::Mcf, Engine::Cycle),
        (SpecBenchmark::Swim, Engine::CycleNoSkip),
        (SpecBenchmark::Swim, Engine::Cycle),
    ];
    for (bench, engine) in cases {
        let label = format!(
            "{}/skip_{}",
            bench.name(),
            if engine == Engine::Cycle { "on" } else { "off" }
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(bench, engine),
            |b, &(bench, engine)| {
                let cfg = SystemConfig::baseline()
                    .with_mechanism(Mechanism::BurstTh(52))
                    .with_engine(engine);
                b.iter(|| {
                    simulate(&cfg, bench.workload(42), RunLength::Instructions(5_000)).mem_cycles
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_skip);
criterion_main!(benches);
