//! Criterion bench: full-system simulation throughput per mechanism
//! (the engine behind Figure 10's sweep). Each sample simulates a fixed
//! instruction budget of the `swim` surrogate on the baseline machine.

use burst_core::Mechanism;
use burst_sim::{simulate, RunLength, SystemConfig};
use burst_workloads::SpecBenchmark;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_mechanisms");
    group.sample_size(10);
    for mechanism in Mechanism::all_paper() {
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &mechanism,
            |b, &m| {
                let cfg = SystemConfig::baseline().with_mechanism(m);
                b.iter(|| {
                    simulate(
                        &cfg,
                        SpecBenchmark::Swim.workload(42),
                        RunLength::Instructions(5_000),
                    )
                    .cpu_cycles
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
