//! The crash-point matrix: deterministic chaos sweeps over every labeled
//! I/O site of the journal/checkpoint plane.
//!
//! For a small reference sweep, the runner first *counts* how many
//! operations each [`IoSite`] performs during one create-run-resume-run
//! cycle, then replays that cycle once per `(site, fault kind, operation
//! index)` combination with a scripted single-fault [`ChaosIo`]. Each
//! combination must end in one of two acceptable states once the fault
//! injector is removed:
//!
//! * **resumed identical** — a final clean `--resume` reproduces the
//!   reference sweep CSV byte for byte, or
//! * **structured error** — the journal/checkpoint layer refuses with a
//!   typed error ([`burst_sim::JournalError`], checkpoint validation)
//!   instead of panicking, hanging or silently returning wrong results.
//!
//! Anything else — a panic unwinding out of the sweep, a clean resume
//! whose CSV differs from the reference — is a **violation** and fails
//! the binary. A separate panic sweep drives the supervisor's
//! deterministic panic-injection hook through both its convergent and
//! quarantining regimes.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use burst_core::Mechanism;
use burst_sim::experiments::Sweep;
use burst_sim::export::sweep_to_csv;
use burst_sim::{
    cell_key, ChaosIo, CheckpointPlan, IoFaultKind, IoSite, Journal, RunLength, SimIo,
    SupervisorConfig, SystemConfig, TransientFaultPlan,
};
use burst_workloads::SpecBenchmark;

/// Shape of the small sweep each matrix combination replays.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Benchmarks in the sweep grid (keep this to one or two: the whole
    /// grid reruns once per matrix combination).
    pub benchmarks: Vec<SpecBenchmark>,
    /// Mechanisms in the sweep grid.
    pub mechanisms: Vec<Mechanism>,
    /// Per-cell run length.
    pub run: RunLength,
    /// Workload seed.
    pub seed: u64,
    /// Checkpoint cadence in memory cycles (must be > 0 so the
    /// checkpoint sites actually execute).
    pub checkpoint_every: u64,
    /// Cap on operation indexes swept per site; operations beyond the
    /// cap are reported as dropped rather than silently skipped.
    pub max_ops_per_site: u64,
    /// Scratch directory for journals and checkpoints; wiped per combo.
    pub dir: PathBuf,
}

impl MatrixConfig {
    /// The default small-sweep shape: one benchmark, the baseline and
    /// headline mechanisms, a short run with frequent checkpoints.
    pub fn small(dir: PathBuf, seed: u64) -> MatrixConfig {
        MatrixConfig {
            benchmarks: vec![SpecBenchmark::Swim],
            mechanisms: vec![Mechanism::BkInOrder, Mechanism::BurstTh(52)],
            run: RunLength::Instructions(2_000),
            seed,
            checkpoint_every: 400,
            max_ops_per_site: 4,
            dir,
        }
    }

    fn fingerprint(&self) -> u64 {
        let benches: Vec<&str> = self.benchmarks.iter().map(|b| b.name()).collect();
        burst_sim::journal::fingerprint(&format!(
            "chaos-matrix v1 run={:?} seed={} benchmarks={}",
            self.run,
            self.seed,
            benches.join(",")
        ))
    }

    fn supervisor(&self) -> SupervisorConfig {
        SupervisorConfig {
            max_retries: 2,
            backoff_base_ms: 0,
            ..SupervisorConfig::default()
        }
    }
}

/// How one matrix combination ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The final clean resume reproduced the reference CSV byte for byte.
    ResumedIdentical,
    /// A phase refused with a structured (non-panic) error; the named
    /// phase and error are kept for the report.
    StructuredError(String),
    /// The recovery contract was broken; the message says how.
    Violation(String),
}

/// One `(site, kind, op)` cell of the matrix and its verdict.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// Injection site.
    pub site: IoSite,
    /// Fault kind injected.
    pub kind: IoFaultKind,
    /// Zero-based operation index the fault fired at.
    pub op: u64,
    /// Outcome.
    pub verdict: Verdict,
}

/// The full matrix outcome.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Every combination swept, in site/kind/op order.
    pub results: Vec<ComboResult>,
    /// Per-site operation counts observed by the fault-free counting run.
    pub op_counts: Vec<(IoSite, u64)>,
    /// `(site, ops beyond the cap)` that were *not* swept.
    pub dropped: Vec<(IoSite, u64)>,
}

impl MatrixReport {
    /// Combinations that broke the recovery contract.
    pub fn violations(&self) -> Vec<&ComboResult> {
        self.results
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Violation(_)))
            .collect()
    }
}

/// Wipes and recreates one combo's scratch directory.
fn fresh_dir(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create chaos scratch dir");
}

/// Runs the reference sweep with clean I/O and returns its CSV.
fn reference_csv(cfg: &MatrixConfig) -> String {
    let sweep = Sweep::run(&cfg.benchmarks, &cfg.mechanisms, cfg.run, cfg.seed);
    sweep_to_csv(&sweep)
}

/// One create-run-resume-run cycle against `io`. Returns the error text
/// of the first phase that refused, or the final resumed CSV.
///
/// The cycle deliberately mirrors a harness crash-and-restart: phase A
/// starts a fresh journal and runs the sweep; phase B reopens the same
/// journal (as a restarted process would) and runs again, restoring
/// whatever phase A managed to persist.
fn run_cycle(cfg: &MatrixConfig, dir: &Path, io: Arc<dyn SimIo>) -> Result<(), String> {
    let journal_path = dir.join("sweep.journal");
    let fp = cfg.fingerprint();
    let plan = |io: &Arc<dyn SimIo>| CheckpointPlan {
        every: cfg.checkpoint_every,
        dir: dir.to_path_buf(),
        fingerprint: fp,
        durable: true,
        io: Arc::clone(io),
    };
    // Phase A: fresh journal, first run.
    let journal = Journal::create_with_io(&journal_path, fp, Arc::clone(&io))
        .map_err(|e| format!("phase A create: {e}"))?;
    let _ = Sweep::run_supervised(
        "chaos",
        &SystemConfig::baseline(),
        &cfg.benchmarks,
        &cfg.mechanisms,
        cfg.run,
        cfg.seed,
        1,
        &cfg.supervisor(),
        Some(&journal),
        Some(&plan(&io)),
    );
    drop(journal);
    // Phase B: restart — resume the journal, run again.
    let journal = Journal::resume_with_io(&journal_path, fp, Arc::clone(&io))
        .map_err(|e| format!("phase B resume: {e}"))?;
    let _ = Sweep::run_supervised(
        "chaos",
        &SystemConfig::baseline(),
        &cfg.benchmarks,
        &cfg.mechanisms,
        cfg.run,
        cfg.seed,
        1,
        &cfg.supervisor(),
        Some(&journal),
        Some(&plan(&io)),
    );
    Ok(())
}

/// The final clean phase: resume with real I/O and demand either a
/// byte-identical CSV or a structured error.
fn clean_resume_verdict(cfg: &MatrixConfig, dir: &Path, reference: &str) -> Verdict {
    let journal_path = dir.join("sweep.journal");
    let fp = cfg.fingerprint();
    let io = burst_sim::real_io();
    let journal = match Journal::resume_with_io(&journal_path, fp, Arc::clone(&io)) {
        Ok(j) => j,
        Err(e) => return Verdict::StructuredError(format!("clean resume: {e}")),
    };
    let plan = CheckpointPlan {
        every: cfg.checkpoint_every,
        dir: dir.to_path_buf(),
        fingerprint: fp,
        durable: true,
        io,
    };
    let sup = Sweep::run_supervised(
        "chaos",
        &SystemConfig::baseline(),
        &cfg.benchmarks,
        &cfg.mechanisms,
        cfg.run,
        cfg.seed,
        1,
        &cfg.supervisor(),
        Some(&journal),
        Some(&plan),
    );
    if !sup.failures.is_empty() {
        return Verdict::Violation(format!(
            "clean resume left {} failed cell(s): {}",
            sup.failures.len(),
            sup.failures
                .iter()
                .map(|f| cell_key(&f.scope, f.benchmark, f.mechanism))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let csv = sweep_to_csv(&sup.value);
    if csv == reference {
        Verdict::ResumedIdentical
    } else {
        Verdict::Violation("clean resume CSV differs from the reference".into())
    }
}

/// Runs one scripted `(site, kind, op)` combination end to end.
fn run_combo(
    cfg: &MatrixConfig,
    reference: &str,
    site: IoSite,
    kind: IoFaultKind,
    op: u64,
) -> ComboResult {
    let dir = cfg
        .dir
        .join(format!("{}-{}-{op}", site.name(), kind.name()));
    fresh_dir(&dir);
    let io: Arc<ChaosIo> = Arc::new(ChaosIo::scripted(site, kind, op));
    let faulted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_cycle(cfg, &dir, io.clone() as Arc<dyn SimIo>)
    }));
    let verdict = match faulted {
        Err(_) => Verdict::Violation("panic escaped the faulted cycle".into()),
        // Whether the faulted cycle refused early or limped through, the
        // clean resume decides: byte-identical or structured error.
        Ok(Err(_)) | Ok(Ok(())) => {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                clean_resume_verdict(cfg, &dir, reference)
            })) {
                Err(_) => Verdict::Violation("panic escaped the clean resume".into()),
                Ok(v) => v,
            }
        }
    };
    // Keep only failing combos' scratch state for post-mortems.
    if !matches!(verdict, Verdict::Violation(_)) {
        let _ = std::fs::remove_dir_all(&dir);
    }
    ComboResult {
        site,
        kind,
        op,
        verdict,
    }
}

/// Counts per-site operations over one fault-free cycle, sizing the
/// matrix.
fn count_ops(cfg: &MatrixConfig) -> Vec<(IoSite, u64)> {
    let dir = cfg.dir.join("counting");
    fresh_dir(&dir);
    let io = Arc::new(ChaosIo::counting());
    run_cycle(cfg, &dir, io.clone() as Arc<dyn SimIo>)
        .expect("the counting cycle injects no faults and must succeed");
    let _ = std::fs::remove_dir_all(&dir);
    io.op_counts()
}

/// Runs the exhaustive crash-point matrix.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixReport {
    run_matrix_where(cfg, |_, _, _| true)
}

/// [`run_matrix`] restricted to the combinations `keep` accepts — used
/// by the binary's scripted `--chaos-*` single-combination mode.
pub fn run_matrix_where(
    cfg: &MatrixConfig,
    keep: impl Fn(IoSite, IoFaultKind, u64) -> bool,
) -> MatrixReport {
    let reference = reference_csv(cfg);
    let op_counts = count_ops(cfg);
    let mut results = Vec::new();
    let mut dropped = Vec::new();
    for &(site, ops) in &op_counts {
        let swept = ops.min(cfg.max_ops_per_site);
        if ops > swept {
            dropped.push((site, ops - swept));
        }
        for kind in IoFaultKind::all() {
            for op in 0..swept {
                if keep(site, kind, op) {
                    results.push(run_combo(cfg, &reference, site, kind, op));
                }
            }
        }
    }
    MatrixReport {
        results,
        op_counts,
        dropped,
    }
}

/// Renders the matrix report as the chaos binary's output.
pub fn render_matrix(report: &MatrixReport) -> String {
    let mut out = String::new();
    out.push_str("site ops swept per counting run:\n");
    for &(site, n) in &report.op_counts {
        out.push_str(&format!("  {:<16} {n}\n", site.name()));
    }
    for &(site, n) in &report.dropped {
        out.push_str(&format!(
            "  note: {n} op(s) at {} beyond the cap were not swept\n",
            site.name()
        ));
    }
    let mut identical = 0usize;
    let mut structured = 0usize;
    for r in &report.results {
        match &r.verdict {
            Verdict::ResumedIdentical => identical += 1,
            Verdict::StructuredError(_) => structured += 1,
            Verdict::Violation(msg) => out.push_str(&format!(
                "VIOLATION {}/{} op {}: {msg}\n",
                r.site.name(),
                r.kind.name(),
                r.op
            )),
        }
    }
    out.push_str(&format!(
        "{} combination(s): {identical} resumed byte-identically, \
         {structured} refused with a structured error, {} violation(s)\n",
        report.results.len(),
        report.violations().len()
    ));
    out
}

/// Drives the supervisor's deterministic panic-injection hook through
/// both regimes and checks the quarantine contract end to end. Returns
/// an error message on any contract breach.
pub fn run_panic_sweep(cfg: &MatrixConfig) -> Result<String, String> {
    let mut out = String::new();
    // Regime 1 — convergent: every first attempt panics, the retry
    // budget covers it, every cell must complete.
    let sup = SupervisorConfig {
        max_retries: 2,
        backoff_base_ms: 0,
        inject_panics: Some(TransientFaultPlan {
            seed: cfg.seed,
            fail_permille: 1000,
            max_failures: 1,
        }),
        ..SupervisorConfig::default()
    };
    let r = Sweep::run_supervised(
        "chaos-panic",
        &SystemConfig::baseline(),
        &cfg.benchmarks,
        &cfg.mechanisms,
        cfg.run,
        cfg.seed,
        1,
        &sup,
        None,
        None,
    );
    if !r.failures.is_empty() {
        return Err(format!(
            "convergent panic regime left {} failure(s)",
            r.failures.len()
        ));
    }
    out.push_str("panic sweep: convergent regime recovered every cell\n");
    // Regime 2 — quarantining: panics outlast the retry budget; the
    // journal must quarantine each cell and a resume must skip them.
    let dir = cfg.dir.join("panic-quarantine");
    fresh_dir(&dir);
    let journal_path = dir.join("sweep.journal");
    let fp = cfg.fingerprint();
    let sup = SupervisorConfig {
        max_retries: 1,
        backoff_base_ms: 0,
        inject_panics: Some(TransientFaultPlan {
            seed: cfg.seed,
            fail_permille: 1000,
            max_failures: 16,
        }),
        ..SupervisorConfig::default()
    };
    let journal = Journal::create(&journal_path, fp).map_err(|e| e.to_string())?;
    let cells = cfg.benchmarks.len() * cfg.mechanisms.len();
    let r = Sweep::run_supervised(
        "chaos-panic",
        &SystemConfig::baseline(),
        &cfg.benchmarks,
        &cfg.mechanisms,
        cfg.run,
        cfg.seed,
        1,
        &sup,
        Some(&journal),
        None,
    );
    drop(journal);
    if r.failures.len() != cells || r.failures.iter().any(|f| !f.quarantined) {
        return Err("quarantining regime did not quarantine every cell".into());
    }
    // The resumed run injects no panics: were the cells *re-run*, they
    // would all succeed — so any surviving failure proves the skip.
    let journal = Journal::resume(&journal_path, fp).map_err(|e| e.to_string())?;
    let sup = SupervisorConfig {
        max_retries: 1,
        backoff_base_ms: 0,
        ..SupervisorConfig::default()
    };
    let r = Sweep::run_supervised(
        "chaos-panic",
        &SystemConfig::baseline(),
        &cfg.benchmarks,
        &cfg.mechanisms,
        cfg.run,
        cfg.seed,
        1,
        &sup,
        Some(&journal),
        None,
    );
    if r.failures.len() != cells || r.failures.iter().any(|f| !f.quarantined) {
        return Err("resume re-ran quarantined cells instead of skipping them".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    out.push_str(&format!(
        "panic sweep: quarantining regime parked {cells} cell(s) and the resume skipped them\n"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(dir: &str) -> MatrixConfig {
        MatrixConfig {
            run: RunLength::Instructions(1_200),
            max_ops_per_site: 1,
            ..MatrixConfig::small(
                std::env::temp_dir().join(format!("{dir}-{}", std::process::id())),
                11,
            )
        }
    }

    #[test]
    fn counting_cycle_sees_every_site() {
        let cfg = tiny("burst-chaos-count");
        let counts = count_ops(&cfg);
        for (site, n) in counts {
            assert!(n > 0, "site {site} never executed in the counting cycle");
        }
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn single_fault_first_ops_hold_the_contract() {
        let cfg = tiny("burst-chaos-matrix");
        let report = run_matrix(&cfg);
        assert!(!report.results.is_empty());
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "contract violations:\n{}",
            render_matrix(&report)
        );
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn panic_sweep_contract_holds() {
        let cfg = tiny("burst-chaos-panic");
        run_panic_sweep(&cfg).expect("panic sweep contract");
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}
