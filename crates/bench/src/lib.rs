//! # burst-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation. Each `src/bin/<id>.rs` binary prints the rows/series
//! the paper reports; the Criterion benches under `benches/` measure the
//! simulator itself.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p burst-bench --bin fig10 -- --instructions 200000
//! cargo run --release -p burst-bench --bin all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use burst_sim::RunLength;
use burst_workloads::SpecBenchmark;

/// Harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Instruction budget per simulation run.
    pub run: RunLength,
    /// Workload seed.
    pub seed: u64,
    /// Benchmarks to simulate.
    pub benchmarks: Vec<SpecBenchmark>,
    /// Worker threads for parallel sweeps (`--jobs N`; 0 = auto-detect).
    pub jobs: usize,
    /// Directory for CSV dumps (`--csv DIR`), if requested.
    pub csv: Option<std::path::PathBuf>,
    /// Event-horizon cycle skipping (`--no-skip` disables it; results are
    /// bit-identical either way, only the wall-clock time changes).
    pub skip: bool,
}

impl HarnessOptions {
    /// Parses `--instructions N`, `--seed N`, `--benchmarks a,b,c`,
    /// `--jobs N`, `--csv DIR` and `--no-skip` from `std::env::args`, with
    /// the given default instruction budget.
    ///
    /// Unknown arguments are ignored so binaries can be combined with cargo
    /// flags freely.
    pub fn from_args(default_instructions: u64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_slice(&args, default_instructions)
    }

    /// [`HarnessOptions::from_args`] over an explicit argument slice
    /// (testable without touching the process environment).
    pub fn from_arg_slice(args: &[String], default_instructions: u64) -> Self {
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let instructions = value_of("--instructions")
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_instructions);
        let seed = value_of("--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let jobs = value_of("--jobs").and_then(|v| v.parse().ok()).unwrap_or(0);
        let csv = value_of("--csv").map(std::path::PathBuf::from);
        let skip = !args.iter().any(|a| a == "--no-skip");
        let benchmarks = value_of("--benchmarks")
            .map(|list| {
                let mut picks = Vec::new();
                for name in list.split(',') {
                    match SpecBenchmark::from_name(name) {
                        Some(b) => picks.push(b),
                        None => eprintln!(
                            "warning: unknown benchmark {name:?} ignored (valid: {})",
                            SpecBenchmark::all16().map(|b| b.name()).join(",")
                        ),
                    }
                }
                picks
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| SpecBenchmark::all16().to_vec());
        HarnessOptions {
            run: RunLength::Instructions(instructions),
            seed,
            benchmarks,
            jobs,
            csv,
            skip,
        }
    }

    /// The base system configuration implied by the flags (currently just
    /// the cycle-skipping toggle over the paper baseline).
    pub fn system_config(&self) -> burst_sim::SystemConfig {
        burst_sim::SystemConfig::baseline().with_skip(self.skip)
    }

    /// Writes `content` as `name` into the `--csv` directory, if one was
    /// requested; creates the directory on first use. Shared by every
    /// binary that exports CSVs so the flag behaves identically everywhere.
    pub fn dump_csv(&self, name: &str, content: &str) {
        if let Some(dir) = &self.csv {
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|_| std::fs::write(dir.join(name), content))
            {
                eprintln!("warning: could not write {name}: {e}");
            }
        }
    }
}

/// A short header naming the experiment, printed by every binary.
pub fn banner(id: &str, caption: &str, opts: &HarnessOptions) -> String {
    let budget = match opts.run {
        RunLength::Instructions(n) => format!("{n} instructions"),
        RunLength::MemCycles(n) => format!("{n} memory cycles"),
    };
    format!(
        "=== {id}: {caption}\n    (per-run budget: {budget}, seed {}, {} benchmark(s))\n",
        opts.seed,
        opts.benchmarks.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_no_flags() {
        let o = HarnessOptions::from_args(1000);
        assert_eq!(o.seed, 42);
        assert_eq!(o.benchmarks.len(), 16);
        assert!(matches!(o.run, RunLength::Instructions(1000)));
        assert_eq!(o.jobs, 0);
        assert!(o.csv.is_none());
        assert!(o.skip, "cycle skipping defaults to on");
    }

    #[test]
    fn parses_no_skip() {
        let args: Vec<String> = ["bin", "--no-skip"].iter().map(|s| s.to_string()).collect();
        let o = HarnessOptions::from_arg_slice(&args, 500);
        assert!(!o.skip);
        assert!(!o.system_config().skip);
    }

    #[test]
    fn parses_jobs_and_csv() {
        let args: Vec<String> = ["bin", "--jobs", "3", "--csv", "out/results", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = HarnessOptions::from_arg_slice(&args, 500);
        assert_eq!(o.jobs, 3);
        assert_eq!(o.csv.as_deref(), Some(std::path::Path::new("out/results")));
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn banner_contains_id() {
        let o = HarnessOptions::from_args(10);
        assert!(banner("fig7", "latency", &o).contains("fig7"));
    }
}
