//! # burst-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation. Each `src/bin/<id>.rs` binary prints the rows/series
//! the paper reports; the Criterion benches under `benches/` measure the
//! simulator itself.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p burst-bench --bin fig10 -- --instructions 200000
//! cargo run --release -p burst-bench --bin all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use burst_sim::RunLength;
use burst_workloads::SpecBenchmark;

/// Harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Instruction budget per simulation run.
    pub run: RunLength,
    /// Workload seed.
    pub seed: u64,
    /// Benchmarks to simulate.
    pub benchmarks: Vec<SpecBenchmark>,
}

impl HarnessOptions {
    /// Parses `--instructions N`, `--seed N` and `--benchmarks a,b,c` from
    /// `std::env::args`, with the given default instruction budget.
    ///
    /// Unknown arguments are ignored so binaries can be combined with cargo
    /// flags freely.
    pub fn from_args(default_instructions: u64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let instructions = value_of("--instructions")
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_instructions);
        let seed = value_of("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
        let benchmarks = value_of("--benchmarks")
            .map(|list| {
                let mut picks = Vec::new();
                for name in list.split(',') {
                    match SpecBenchmark::from_name(name) {
                        Some(b) => picks.push(b),
                        None => eprintln!(
                            "warning: unknown benchmark {name:?} ignored (valid: {})",
                            SpecBenchmark::all16().map(|b| b.name()).join(",")
                        ),
                    }
                }
                picks
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| SpecBenchmark::all16().to_vec());
        HarnessOptions { run: RunLength::Instructions(instructions), seed, benchmarks }
    }
}

/// A short header naming the experiment, printed by every binary.
pub fn banner(id: &str, caption: &str, opts: &HarnessOptions) -> String {
    let budget = match opts.run {
        RunLength::Instructions(n) => format!("{n} instructions"),
        RunLength::MemCycles(n) => format!("{n} memory cycles"),
    };
    format!(
        "=== {id}: {caption}\n    (per-run budget: {budget}, seed {}, {} benchmark(s))\n",
        opts.seed,
        opts.benchmarks.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_no_flags() {
        let o = HarnessOptions::from_args(1000);
        assert_eq!(o.seed, 42);
        assert_eq!(o.benchmarks.len(), 16);
        assert!(matches!(o.run, RunLength::Instructions(1000)));
    }

    #[test]
    fn banner_contains_id() {
        let o = HarnessOptions::from_args(10);
        assert!(banner("fig7", "latency", &o).contains("fig7"));
    }
}
