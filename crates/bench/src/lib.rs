//! # burst-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation. Each `src/bin/<id>.rs` binary prints the rows/series
//! the paper reports; the Criterion benches under `benches/` measure the
//! simulator itself.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p burst-bench --bin fig10 -- --instructions 200000
//! cargo run --release -p burst-bench --bin all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;

use burst_sim::{
    CellFailure, CheckpointPlan, Engine, Journal, OracleError, RunLength, Supervised,
    SupervisorConfig, TransientFaultPlan,
};
use burst_workloads::SpecBenchmark;

/// Harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Instruction budget per simulation run.
    pub run: RunLength,
    /// Workload seed.
    pub seed: u64,
    /// Benchmarks to simulate.
    pub benchmarks: Vec<SpecBenchmark>,
    /// Worker threads for parallel sweeps (`--jobs N`; 0 = auto-detect).
    pub jobs: usize,
    /// Directory for CSV dumps (`--csv DIR`), if requested.
    pub csv: Option<std::path::PathBuf>,
    /// Simulation engine (`--engine {event,cycle,cycle-noskip}`; results
    /// are bit-identical for every choice, only the wall-clock time
    /// changes). `--no-skip` is kept as a deprecated alias for
    /// `--engine cycle-noskip`.
    pub engine: Engine,
    /// Journal file started fresh for this run (`--journal FILE`): every
    /// completed cell is appended and fsynced, so a crash mid-sweep can be
    /// resumed with `--resume FILE`.
    pub journal: Option<std::path::PathBuf>,
    /// Journal file to resume from (`--resume FILE`): cells already on
    /// record are restored instead of re-simulated; new completions keep
    /// being appended to the same file.
    pub resume: Option<std::path::PathBuf>,
    /// Per-cell wall-clock deadline in seconds (`--deadline SECS`);
    /// attempts exceeding it are abandoned and retried.
    pub deadline: Option<f64>,
    /// Retries granted per failed cell (`--max-retries N`, default 2).
    pub max_retries: u32,
    /// Seed for deterministic cell-level transient fault injection
    /// (`--inject-cell-faults SEED`) — exercises the retry machinery
    /// end-to-end without touching simulation results.
    pub inject_cell_faults: Option<u64>,
    /// Checkpoint cadence in memory cycles (`--checkpoint-every N`;
    /// 0 = off). With a journal, a killed run resumes each in-flight
    /// cell from its last checkpoint instead of restarting it.
    pub checkpoint_every: u64,
    /// Directory for per-cell `*.ckpt` files (`--checkpoint-dir DIR`;
    /// defaults to the current directory).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Whether checkpoint writes fsync before their atomic rename
    /// (`--checkpoint-durable {true,false}`, default `true`). `false`
    /// makes mid-run checkpoints far cheaper but a power loss can tear
    /// one; a torn file is detected on load and the cell restarts from
    /// scratch, bit-identically.
    pub checkpoint_durable: bool,
    /// Lockstep oracle mode (`--oracle`): instead of the normal sweep,
    /// run the skip-enabled engine against the naive per-cycle engine
    /// and compare state hashes every epoch, bisecting to the first
    /// divergent cycle on mismatch.
    pub oracle: bool,
    /// Seed for randomized deterministic I/O fault injection
    /// (`--chaos-seed SEED`): journal and checkpoint I/O runs through a
    /// seeded [`burst_sim::ChaosIo`] instead of the real filesystem
    /// passthrough. Same seed, same fault schedule.
    pub chaos_seed: Option<u64>,
    /// Scripted single-fault injection site (`--chaos-site NAME`, e.g.
    /// `journal-append`); requires `--chaos-kind` and `--chaos-op`.
    pub chaos_site: Option<String>,
    /// Scripted fault kind (`--chaos-kind {fail,torn,truncate}`).
    pub chaos_kind: Option<String>,
    /// Zero-based operation index at which the scripted fault fires
    /// (`--chaos-op N`).
    pub chaos_op: Option<u64>,
}

impl HarnessOptions {
    /// Parses `--instructions N`, `--seed N`, `--benchmarks a,b,c`,
    /// `--jobs N`, `--csv DIR`, `--engine NAME`, `--journal FILE`,
    /// `--resume FILE`, `--deadline SECS`, `--max-retries N`,
    /// `--inject-cell-faults SEED`, `--checkpoint-every N`,
    /// `--checkpoint-dir DIR`, `--checkpoint-durable BOOL` and `--oracle`
    /// from `std::env::args`, with the given default instruction budget.
    ///
    /// Unknown arguments are ignored so binaries can be combined with cargo
    /// flags freely.
    pub fn from_args(default_instructions: u64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_slice(&args, default_instructions)
    }

    /// [`HarnessOptions::from_args`] over an explicit argument slice
    /// (testable without touching the process environment).
    pub fn from_arg_slice(args: &[String], default_instructions: u64) -> Self {
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let instructions = value_of("--instructions")
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_instructions);
        let seed = value_of("--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let jobs = value_of("--jobs").and_then(|v| v.parse().ok()).unwrap_or(0);
        let csv = value_of("--csv").map(std::path::PathBuf::from);
        let engine = match value_of("--engine") {
            Some(name) => Engine::from_name(&name).unwrap_or_else(|| {
                eprintln!(
                    "warning: unknown engine {name:?} ignored \
                     (valid: event, cycle, cycle-noskip); using event"
                );
                Engine::Event
            }),
            // Deprecated alias from before the event engine existed.
            None if args.iter().any(|a| a == "--no-skip") => Engine::CycleNoSkip,
            None => Engine::Event,
        };
        let journal = value_of("--journal").map(std::path::PathBuf::from);
        let resume = value_of("--resume").map(std::path::PathBuf::from);
        let deadline = value_of("--deadline").and_then(|v| v.parse().ok());
        let max_retries = value_of("--max-retries")
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        let inject_cell_faults = value_of("--inject-cell-faults").and_then(|v| v.parse().ok());
        let checkpoint_every = value_of("--checkpoint-every")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let checkpoint_dir = value_of("--checkpoint-dir").map(std::path::PathBuf::from);
        let checkpoint_durable = match value_of("--checkpoint-durable").as_deref() {
            Some("false") | Some("0") | Some("no") => false,
            Some("true") | Some("1") | Some("yes") | None => true,
            Some(other) => {
                eprintln!(
                    "warning: unknown --checkpoint-durable value {other:?} ignored \
                     (valid: true, false); using true"
                );
                true
            }
        };
        let oracle = args.iter().any(|a| a == "--oracle");
        let chaos_seed = value_of("--chaos-seed").and_then(|v| v.parse().ok());
        let chaos_site = value_of("--chaos-site");
        let chaos_kind = value_of("--chaos-kind");
        let chaos_op = value_of("--chaos-op").and_then(|v| v.parse().ok());
        let benchmarks = value_of("--benchmarks")
            .map(|list| {
                let mut picks = Vec::new();
                for name in list.split(',') {
                    match SpecBenchmark::from_name(name) {
                        Some(b) => picks.push(b),
                        None => eprintln!(
                            "warning: unknown benchmark {name:?} ignored (valid: {})",
                            SpecBenchmark::all16().map(|b| b.name()).join(",")
                        ),
                    }
                }
                picks
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| SpecBenchmark::all16().to_vec());
        HarnessOptions {
            run: RunLength::Instructions(instructions),
            seed,
            benchmarks,
            jobs,
            csv,
            engine,
            journal,
            resume,
            deadline,
            max_retries,
            inject_cell_faults,
            checkpoint_every,
            checkpoint_dir,
            checkpoint_durable,
            oracle,
            chaos_seed,
            chaos_site,
            chaos_kind,
            chaos_op,
        }
    }

    /// The I/O layer implied by the `--chaos-*` flags: a scripted
    /// single-fault [`ChaosIo`] when `--chaos-site`/`--chaos-kind`/
    /// `--chaos-op` are all given, a seeded one for `--chaos-seed`, and
    /// the zero-overhead real-filesystem passthrough otherwise. Exits
    /// with status 2 on an unparseable site or kind name — a chaos run
    /// that silently falls back to clean I/O would report robustness it
    /// never tested.
    pub fn sim_io(&self) -> std::sync::Arc<dyn burst_sim::SimIo> {
        use burst_sim::{ChaosIo, IoFaultKind, IoSite};
        match (&self.chaos_site, &self.chaos_kind, self.chaos_op) {
            (Some(site), Some(kind), Some(op)) => {
                let site = IoSite::from_name(site).unwrap_or_else(|| {
                    eprintln!(
                        "error: unknown --chaos-site {site:?} (valid: {})",
                        IoSite::all()
                            .iter()
                            .map(|s| s.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                });
                let kind = IoFaultKind::from_name(kind).unwrap_or_else(|| {
                    eprintln!(
                        "error: unknown --chaos-kind {kind:?} (valid: {})",
                        IoFaultKind::all()
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                });
                std::sync::Arc::new(ChaosIo::scripted(site, kind, op))
            }
            (None, None, None) => match self.chaos_seed {
                Some(seed) => std::sync::Arc::new(ChaosIo::seeded(seed)),
                None => burst_sim::real_io(),
            },
            _ => {
                eprintln!(
                    "error: --chaos-site, --chaos-kind and --chaos-op \
                     must be given together"
                );
                std::process::exit(2);
            }
        }
    }

    /// The supervision policy implied by the flags: deadline, retry budget
    /// and (for testing) cell-fault injection.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            deadline: self.deadline.map(std::time::Duration::from_secs_f64),
            max_retries: self.max_retries,
            inject: self.inject_cell_faults.map(TransientFaultPlan::new),
            ..SupervisorConfig::default()
        }
    }

    /// The canonical description whose hash binds a journal to this run's
    /// result-determining configuration. Deliberately excludes `--jobs`
    /// (parallelism never changes results), the CSV directory and the
    /// supervision policy (`--deadline`, `--max-retries`), and `--engine`
    /// (every engine is bit-identical) — a journal recorded with any of
    /// those settings is valid for any other.
    pub fn fingerprint_desc(&self) -> String {
        let benches: Vec<&str> = self.benchmarks.iter().map(|b| b.name()).collect();
        format!(
            "burst-bench v1 run={:?} seed={} benchmarks={}",
            self.run,
            self.seed,
            benches.join(",")
        )
    }

    /// Opens the journal requested by `--journal` (fresh) or `--resume`
    /// (restoring completed cells), fingerprint-bound to this run's
    /// configuration; `None` when neither flag was given. Exits with
    /// status 2 on a fingerprint mismatch or filesystem error — silently
    /// mixing results from a differently-configured run would be worse
    /// than dying.
    pub fn open_journal(&self) -> Option<Journal> {
        self.open_journal_with_io(self.sim_io())
    }

    /// [`HarnessOptions::open_journal`] over an explicit I/O layer, so the
    /// chaos matrix runner can share one fault-injecting [`burst_sim::ChaosIo`]
    /// between the journal and the checkpoint plan.
    pub fn open_journal_with_io(
        &self,
        io: std::sync::Arc<dyn burst_sim::SimIo>,
    ) -> Option<Journal> {
        let fp = burst_sim::journal::fingerprint(&self.fingerprint_desc());
        let (path, resuming) = match (&self.resume, &self.journal) {
            (Some(p), _) => (p, true),
            (None, Some(p)) => (p, false),
            (None, None) => return None,
        };
        let opened = if resuming {
            Journal::resume_with_io(path, fp, io)
        } else {
            Journal::create_with_io(path, fp, io)
        };
        match opened {
            Ok(j) => {
                if resuming {
                    eprintln!(
                        "resuming from {}: {} completed cell(s) on record",
                        path.display(),
                        j.completed_cells()
                    );
                }
                Some(j)
            }
            Err(e) => {
                eprintln!("error: cannot open journal {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    /// The intra-cell checkpoint plan implied by `--checkpoint-every` and
    /// `--checkpoint-dir`, fingerprint-bound to the same run description
    /// as the journal; `None` when checkpointing is off. Checkpoint files
    /// land in the chosen directory (default: the current directory) as
    /// one `<scope>-<benchmark>-<mechanism>.ckpt` per in-flight cell.
    pub fn checkpoint_plan(&self) -> Option<CheckpointPlan> {
        self.checkpoint_plan_with_io(self.sim_io())
    }

    /// [`HarnessOptions::checkpoint_plan`] over an explicit I/O layer (see
    /// [`HarnessOptions::open_journal_with_io`]).
    pub fn checkpoint_plan_with_io(
        &self,
        io: std::sync::Arc<dyn burst_sim::SimIo>,
    ) -> Option<CheckpointPlan> {
        (self.checkpoint_every > 0).then(|| CheckpointPlan {
            every: self.checkpoint_every,
            dir: self
                .checkpoint_dir
                .clone()
                .unwrap_or_else(|| std::path::PathBuf::from(".")),
            fingerprint: burst_sim::journal::fingerprint(&self.fingerprint_desc()),
            durable: self.checkpoint_durable,
            io,
        })
    }

    /// Runs the lockstep oracle over `benchmarks x mechanisms` when
    /// `--oracle` was given: the skip-enabled engine races the naive
    /// per-cycle engine, state hashes are compared every epoch, and a
    /// mismatch is bisected to its first divergent cycle. Returns `None`
    /// when the flag is absent (the binary proceeds normally), otherwise
    /// the exit code the binary should return: success only if every
    /// cell's engines stayed in lockstep to the end.
    pub fn oracle_gate(
        &self,
        mechanisms: &[burst_core::Mechanism],
    ) -> Option<std::process::ExitCode> {
        if !self.oracle {
            return None;
        }
        let base = self.system_config();
        let mut grid = Vec::with_capacity(self.benchmarks.len() * mechanisms.len());
        for &b in &self.benchmarks {
            for &m in mechanisms {
                grid.push((b, m));
            }
        }
        let seed = self.seed;
        let run = self.run;
        let verdicts = burst_sim::map_parallel(&grid, self.jobs, move |_, &(b, m)| {
            let cfg = base.with_mechanism(m);
            burst_sim::oracle_simulate(
                &cfg,
                || b.workload(seed),
                run,
                &burst_sim::OracleConfig::default(),
                None,
            )
            .map(|_| ())
        });
        let mut failures = 0usize;
        for (&(b, m), verdict) in grid.iter().zip(&verdicts) {
            match verdict {
                Ok(()) => println!("oracle ok   {}/{}", b.name(), m.name()),
                Err(OracleError::Divergence(d)) => {
                    failures += 1;
                    println!("oracle FAIL {}/{}: {d}", b.name(), m.name());
                }
                Err(e) => {
                    failures += 1;
                    println!("oracle FAIL {}/{}: {e}", b.name(), m.name());
                }
            }
        }
        Some(if failures == 0 {
            println!(
                "oracle: all {} cell(s) in lockstep (skip vs per-cycle)",
                grid.len()
            );
            std::process::ExitCode::SUCCESS
        } else {
            eprintln!("oracle: {failures} of {} cell(s) diverged", grid.len());
            std::process::ExitCode::from(1)
        })
    }

    /// The base system configuration implied by the flags (currently just
    /// the engine selection over the paper baseline).
    pub fn system_config(&self) -> burst_sim::SystemConfig {
        burst_sim::SystemConfig::baseline().with_engine(self.engine)
    }

    /// Writes `content` as `name` into the `--csv` directory, if one was
    /// requested; creates the directory on first use. Shared by every
    /// binary that exports CSVs so the flag behaves identically everywhere.
    pub fn dump_csv(&self, name: &str, content: &str) {
        if let Some(dir) = &self.csv {
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|_| std::fs::write(dir.join(name), content))
            {
                eprintln!("warning: could not write {name}: {e}");
            }
        }
    }
}

/// A short header naming the experiment, printed by every binary.
pub fn banner(id: &str, caption: &str, opts: &HarnessOptions) -> String {
    let budget = match opts.run {
        RunLength::Instructions(n) => format!("{n} instructions"),
        RunLength::MemCycles(n) => format!("{n} memory cycles"),
    };
    format!(
        "=== {id}: {caption}\n    (per-run budget: {budget}, seed {}, {} benchmark(s))\n",
        opts.seed,
        opts.benchmarks.len()
    )
}

/// Collects unrecovered cell failures across every grid a binary runs and
/// converts them into the process exit status, so a sweep with losses
/// still prints everything it salvaged but exits nonzero.
#[derive(Debug, Default)]
pub struct FailureLedger {
    failures: Vec<CellFailure>,
    resumed: usize,
}

impl FailureLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unwraps a supervised result, absorbing its failure records and
    /// journal-resume count.
    pub fn absorb<T>(&mut self, s: Supervised<T>) -> T {
        self.failures.extend(s.failures);
        self.resumed += s.resumed;
        s.value
    }

    /// Records one failure observed outside the supervised sweep paths
    /// (serial harness loops using `try_simulate`).
    pub fn note(&mut self, f: CellFailure) {
        self.failures.push(f);
    }

    /// Every failure absorbed so far, in observation order.
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }

    /// Cells restored from a journal instead of re-simulated.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Prints the resume count and the failure-taxonomy summary (when
    /// non-empty) and returns the binary's exit code: success only if
    /// every cell completed.
    pub fn finish(self) -> std::process::ExitCode {
        if self.resumed > 0 {
            println!("{} cell(s) restored from the journal", self.resumed);
        }
        let v2 = burst_sim::report::render_robustness_v2(&self.failures, self.resumed);
        if !v2.is_empty() {
            print!("{v2}");
        }
        if self.failures.is_empty() {
            std::process::ExitCode::SUCCESS
        } else {
            eprint!(
                "{}",
                burst_sim::report::render_failure_summary(&self.failures)
            );
            std::process::ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_no_flags() {
        let o = HarnessOptions::from_args(1000);
        assert_eq!(o.seed, 42);
        assert_eq!(o.benchmarks.len(), 16);
        assert!(matches!(o.run, RunLength::Instructions(1000)));
        assert_eq!(o.jobs, 0);
        assert!(o.csv.is_none());
        assert_eq!(o.engine, Engine::Event, "event engine is the default");
        assert!(o.journal.is_none());
        assert!(o.resume.is_none());
        assert!(o.deadline.is_none());
        assert_eq!(o.max_retries, 2);
        assert!(o.inject_cell_faults.is_none());
        assert!(o.open_journal().is_none());
    }

    #[test]
    fn parses_supervision_flags() {
        let args: Vec<String> = [
            "bin",
            "--deadline",
            "1.5",
            "--max-retries",
            "5",
            "--inject-cell-faults",
            "9",
            "--journal",
            "run.journal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = HarnessOptions::from_arg_slice(&args, 500);
        let sup = o.supervisor_config();
        assert_eq!(sup.deadline, Some(std::time::Duration::from_millis(1500)));
        assert_eq!(sup.max_retries, 5);
        assert_eq!(sup.inject.map(|p| p.seed), Some(9));
        assert_eq!(
            o.journal.as_deref(),
            Some(std::path::Path::new("run.journal"))
        );
    }

    #[test]
    fn fingerprint_ignores_jobs_and_policy_but_not_seed() {
        let parse = |extra: &[&str]| {
            let mut args = vec!["bin".to_string()];
            args.extend(extra.iter().map(|s| s.to_string()));
            HarnessOptions::from_arg_slice(&args, 500)
        };
        let base = parse(&[]).fingerprint_desc();
        assert_eq!(parse(&["--jobs", "7"]).fingerprint_desc(), base);
        assert_eq!(parse(&["--deadline", "2"]).fingerprint_desc(), base);
        assert_eq!(parse(&["--no-skip"]).fingerprint_desc(), base);
        assert_eq!(parse(&["--engine", "cycle"]).fingerprint_desc(), base);
        assert_ne!(parse(&["--seed", "7"]).fingerprint_desc(), base);
        assert_ne!(parse(&["--instructions", "9"]).fingerprint_desc(), base);
        assert_ne!(parse(&["--benchmarks", "swim"]).fingerprint_desc(), base);
    }

    #[test]
    fn ledger_tracks_failures_and_resumes() {
        use burst_core::Mechanism;
        let mut ledger = FailureLedger::new();
        let sweep_value = ledger.absorb(Supervised {
            value: 41,
            failures: vec![],
            resumed: 3,
        });
        assert_eq!(sweep_value, 41);
        assert!(ledger.failures().is_empty());
        assert_eq!(ledger.resumed(), 3);
        ledger.note(CellFailure {
            scope: "profile".into(),
            benchmark: SpecBenchmark::Swim,
            mechanism: Mechanism::BkInOrder,
            kind: burst_sim::FailureKind::Other,
            attempts: 1,
            payload: "boom".into(),
            quarantined: false,
        });
        assert_eq!(ledger.failures().len(), 1);
    }

    #[test]
    fn parses_engine_and_deprecated_no_skip() {
        let parse = |extra: &[&str]| {
            let mut args = vec!["bin".to_string()];
            args.extend(extra.iter().map(|s| s.to_string()));
            HarnessOptions::from_arg_slice(&args, 500)
        };
        assert_eq!(parse(&["--engine", "event"]).engine, Engine::Event);
        assert_eq!(parse(&["--engine", "cycle"]).engine, Engine::Cycle);
        let o = parse(&["--engine", "cycle-noskip"]);
        assert_eq!(o.engine, Engine::CycleNoSkip);
        assert_eq!(o.system_config().engine, Engine::CycleNoSkip);
        // The pre-event-engine spelling still works...
        assert_eq!(parse(&["--no-skip"]).engine, Engine::CycleNoSkip);
        // ...but an explicit --engine wins over the deprecated alias.
        assert_eq!(
            parse(&["--no-skip", "--engine", "event"]).engine,
            Engine::Event
        );
        // Unknown names fall back to the default instead of aborting.
        assert_eq!(parse(&["--engine", "warp"]).engine, Engine::Event);
    }

    #[test]
    fn parses_checkpoint_durability() {
        let parse = |extra: &[&str]| {
            let mut args = vec!["bin".to_string()];
            args.extend(extra.iter().map(|s| s.to_string()));
            HarnessOptions::from_arg_slice(&args, 500)
        };
        // Durable by default, and durability never affects the fingerprint.
        let o = parse(&["--checkpoint-every", "1000"]);
        assert!(o.checkpoint_durable);
        assert_eq!(o.checkpoint_plan().map(|p| p.durable), Some(true));
        let o = parse(&[
            "--checkpoint-every",
            "1000",
            "--checkpoint-durable",
            "false",
        ]);
        assert!(!o.checkpoint_durable);
        assert_eq!(o.checkpoint_plan().map(|p| p.durable), Some(false));
        assert_eq!(
            o.fingerprint_desc(),
            parse(&["--checkpoint-every", "1000"]).fingerprint_desc(),
            "durability changes no result, so it must not invalidate journals"
        );
        // Unknown values fall back to durable instead of aborting.
        assert!(parse(&["--checkpoint-durable", "warp"]).checkpoint_durable);
    }

    #[test]
    fn parses_jobs_and_csv() {
        let args: Vec<String> = ["bin", "--jobs", "3", "--csv", "out/results", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = HarnessOptions::from_arg_slice(&args, 500);
        assert_eq!(o.jobs, 3);
        assert_eq!(o.csv.as_deref(), Some(std::path::Path::new("out/results")));
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn banner_contains_id() {
        let o = HarnessOptions::from_args(10);
        assert!(banner("fig7", "latency", &o).contains("fig7"));
    }
}
