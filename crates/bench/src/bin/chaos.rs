//! The crash-point matrix runner: sweeps a scripted single fault over
//! every labeled I/O site of the journal/checkpoint plane and checks
//! that each combination either resumes byte-identically under clean
//! I/O or refuses with a structured error — never a panic, a hang or a
//! silently different CSV. Also drives the supervisor's deterministic
//! panic-injection hook through its convergent and quarantining
//! regimes.
//!
//! ```text
//! cargo run --release -p burst-bench --bin chaos
//! cargo run --release -p burst-bench --bin chaos -- \
//!     --chaos-site journal-append --chaos-kind torn --chaos-op 1
//! ```

use std::process::ExitCode;

use burst_bench::chaos::{
    render_matrix, run_matrix, run_matrix_where, run_panic_sweep, MatrixConfig,
};
use burst_bench::{banner, HarnessOptions};

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(2_000);
    println!("{}", banner("chaos", "crash-point matrix", &opts));
    // Injected panics are the point of this binary; the supervisor
    // catches every one, so the default hook's backtraces are pure
    // noise. Escaped panics still fail the run via the matrix verdicts.
    std::panic::set_hook(Box::new(|_| {}));
    let mut cfg = MatrixConfig::small(
        opts.checkpoint_dir
            .clone()
            .unwrap_or_else(|| std::env::temp_dir().join("burst-chaos")),
        opts.seed,
    );
    cfg.run = opts.run;
    if let Some(&b) = opts.benchmarks.first() {
        cfg.benchmarks = vec![b];
    }
    if opts.checkpoint_every > 0 {
        cfg.checkpoint_every = opts.checkpoint_every;
    }
    // A scripted `--chaos-site/--chaos-kind/--chaos-op` triple narrows
    // the run to that one combination (handy for post-mortems); the
    // shared `sim_io` parser validates — and exits on — bad names.
    let scripted =
        opts.chaos_site.is_some() || opts.chaos_kind.is_some() || opts.chaos_op.is_some();
    let report = if scripted {
        let _ = opts.sim_io();
        run_matrix_where(&cfg, |site, kind, op| {
            opts.chaos_site.as_deref() == Some(site.name())
                && opts.chaos_kind.as_deref() == Some(kind.name())
                && opts.chaos_op == Some(op)
        })
    } else {
        run_matrix(&cfg)
    };
    print!("{}", render_matrix(&report));
    let mut ok = report.violations().is_empty();
    if scripted && report.results.is_empty() {
        eprintln!(
            "chaos: the scripted combination was never reached \
             (see the op counts above for what the cycle executes)"
        );
        ok = false;
    }
    if !scripted {
        match run_panic_sweep(&cfg) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("PANIC-SWEEP VIOLATION: {e}");
                ok = false;
            }
        }
    }
    if ok {
        println!("chaos: recovery contract held for every combination");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos: recovery contract violated");
        ExitCode::from(1)
    }
}
