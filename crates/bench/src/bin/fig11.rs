//! Regenerates Figure 11: the distribution of outstanding accesses for
//! `swim` across the write-queue threshold sweep.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_sim::experiments::{fig12_mechanisms, outstanding_supervised};
use burst_sim::report::render_outstanding;
use burst_workloads::SpecBenchmark;

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(150_000);
    println!(
        "{}",
        banner(
            "Figure 11",
            "outstanding accesses for swim vs threshold",
            &opts
        )
    );
    if let Some(code) = opts.oracle_gate(&fig12_mechanisms()) {
        return code;
    }
    let journal = opts.open_journal();
    let ckpt = opts.checkpoint_plan();
    let mut ledger = FailureLedger::new();
    let rows = ledger.absorb(outstanding_supervised(
        "fig11",
        &opts.system_config(),
        SpecBenchmark::Swim,
        &fig12_mechanisms(),
        opts.run,
        opts.seed,
        opts.jobs,
        &opts.supervisor_config(),
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_outstanding(&rows));
    println!(
        "Paper shape: the peak outstanding-write count grows with the threshold;\n\
         saturation stays below 7% for thresholds < 48, reaches 14% at 56 and\n\
         jumps to 70% for Burst_RP (= TH64)."
    );
    ledger.finish()
}
