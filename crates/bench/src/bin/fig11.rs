//! Regenerates Figure 11: the distribution of outstanding accesses for
//! `swim` across the write-queue threshold sweep.

use burst_bench::{banner, HarnessOptions};
use burst_sim::experiments::fig11_with_config;
use burst_sim::report::render_outstanding;
use burst_workloads::SpecBenchmark;

fn main() {
    let opts = HarnessOptions::from_args(150_000);
    println!(
        "{}",
        banner(
            "Figure 11",
            "outstanding accesses for swim vs threshold",
            &opts
        )
    );
    let rows = fig11_with_config(
        &opts.system_config(),
        SpecBenchmark::Swim,
        opts.run,
        opts.seed,
        opts.jobs,
    );
    println!("{}", render_outstanding(&rows));
    println!(
        "Paper shape: the peak outstanding-write count grows with the threshold;\n\
         saturation stays below 7% for thresholds < 48, reaches 14% at 56 and\n\
         jumps to 70% for Burst_RP (= TH64)."
    );
}
