//! Sensitivity study (extension): how robust is burst scheduling's
//! advantage to the machine parameters the paper fixed? Sweeps the write
//! queue capacity (with the threshold scaled proportionally), the LSQ size
//! (memory-level parallelism) and the channel count, reporting the
//! Burst_TH improvement over BkInOrder at each point.
//!
//! Cells run supervised: a failing run drops its sweep point to `n/a`
//! instead of aborting the study, and the binary exits nonzero.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::report::render_table;
use burst_sim::{
    supervise, try_simulate, CellError, CellFailure, CellOutcome, SupervisorConfig, SystemConfig,
};
use burst_workloads::SpecBenchmark;

/// The Burst_TH improvement over the baseline config, or `None` when any
/// of the eight cells stayed unrecovered (a partial ratio would mislead).
fn improvement(
    scope: &str,
    base_cfg: SystemConfig,
    th_cfg: SystemConfig,
    opts: &HarnessOptions,
    sup: &SupervisorConfig,
    ledger: &mut FailureLedger,
) -> Option<f64> {
    let benches = [
        SpecBenchmark::Swim,
        SpecBenchmark::Gcc,
        SpecBenchmark::Art,
        SpecBenchmark::Parser,
    ];
    // All eight (config, benchmark) runs are independent — fan them out.
    let mut grid = Vec::new();
    for cfg in [base_cfg, th_cfg] {
        for b in benches {
            grid.push((cfg, b));
        }
    }
    let (seed, run) = (opts.seed, opts.run);
    let outcomes = supervise(&grid, opts.jobs, sup, move |_, &(cfg, b), _| {
        try_simulate(&cfg, b.workload(seed), run)
            .map(|r| r.cpu_cycles)
            .map_err(CellError::from)
    });
    let mut complete = true;
    for (&(cfg, b), o) in grid.iter().zip(&outcomes) {
        if let CellOutcome::Failed {
            kind,
            attempts,
            payload,
        } = o
        {
            complete = false;
            ledger.note(CellFailure {
                scope: scope.into(),
                benchmark: b,
                mechanism: cfg.mechanism,
                kind: *kind,
                attempts: *attempts,
                payload: payload.clone(),
                quarantined: false,
            });
        }
    }
    if !complete {
        return None;
    }
    let cycles: Vec<u64> = outcomes.into_iter().filter_map(|o| o.value()).collect();
    let (base, th) = cycles.split_at(benches.len());
    Some(1.0 - th.iter().sum::<u64>() as f64 / base.iter().sum::<u64>() as f64)
}

fn fmt_gain(gain: Option<f64>) -> String {
    match gain {
        Some(g) => format!("{:.1}%", g * 100.0),
        None => "n/a".to_string(),
    }
}

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(20_000);
    println!(
        "{}",
        banner("sensitivity", "TH52 advantage vs machine parameters", &opts)
    );
    let sup = opts.supervisor_config();
    let mut ledger = FailureLedger::new();

    // 1. Write queue capacity (threshold scaled to ~80% of capacity).
    let mut rows = Vec::new();
    for cap in [16usize, 32, 64, 128] {
        let th = (cap * 52 / 64) as u32;
        let mut base = opts.system_config();
        base.ctrl.write_capacity = cap;
        let th_cfg = base.with_mechanism(Mechanism::BurstTh(th));
        let gain = improvement("sensitivity-wq", base, th_cfg, &opts, &sup, &mut ledger);
        rows.push(vec![format!("{cap} (th {th})"), fmt_gain(gain)]);
    }
    println!("--- write queue capacity\n");
    println!("{}", render_table(&["capacity", "TH improvement"], &rows));

    // 2. LSQ size: memory-level parallelism available to reorder.
    let mut rows = Vec::new();
    for lsq in [8usize, 16, 32, 64] {
        let mut base = opts.system_config();
        base.cpu.lsq_size = lsq;
        let th_cfg = base.with_mechanism(Mechanism::BurstTh(52));
        let gain = improvement("sensitivity-lsq", base, th_cfg, &opts, &sup, &mut ledger);
        rows.push(vec![format!("{lsq}"), fmt_gain(gain)]);
    }
    println!("--- LSQ size (outstanding-miss limit)\n");
    println!("{}", render_table(&["LSQ", "TH improvement"], &rows));

    // 3. Channels: raw parallelism dilutes per-channel contention.
    let mut rows = Vec::new();
    for channels in [1u8, 2, 4] {
        let mut base = opts.system_config();
        base.dram.geometry.channels = channels;
        let th_cfg = base.with_mechanism(Mechanism::BurstTh(52));
        let gain = improvement("sensitivity-ch", base, th_cfg, &opts, &sup, &mut ledger);
        rows.push(vec![format!("{channels}"), fmt_gain(gain)]);
    }
    println!("--- channel count\n");
    println!("{}", render_table(&["channels", "TH improvement"], &rows));

    println!(
        "Expected shape: more outstanding misses (bigger LSQ) give reordering more\n\
         to work with; more channels dilute contention and shrink the advantage."
    );
    ledger.finish()
}
