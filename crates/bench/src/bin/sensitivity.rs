//! Sensitivity study (extension): how robust is burst scheduling's
//! advantage to the machine parameters the paper fixed? Sweeps the write
//! queue capacity (with the threshold scaled proportionally), the LSQ size
//! (memory-level parallelism) and the channel count, reporting the
//! Burst_TH improvement over BkInOrder at each point.

use burst_bench::{banner, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::report::render_table;
use burst_sim::{map_parallel, simulate, SystemConfig};
use burst_workloads::SpecBenchmark;

fn improvement(base_cfg: SystemConfig, th_cfg: SystemConfig, opts: &HarnessOptions) -> f64 {
    let benches = [
        SpecBenchmark::Swim,
        SpecBenchmark::Gcc,
        SpecBenchmark::Art,
        SpecBenchmark::Parser,
    ];
    // All eight (config, benchmark) runs are independent — fan them out.
    let mut grid = Vec::new();
    for cfg in [base_cfg, th_cfg] {
        for b in benches {
            grid.push((cfg, b));
        }
    }
    let cycles = map_parallel(&grid, opts.jobs, |_, (cfg, b)| {
        simulate(cfg, b.workload(opts.seed), opts.run).cpu_cycles
    });
    let (base, th) = cycles.split_at(benches.len());
    1.0 - th.iter().sum::<u64>() as f64 / base.iter().sum::<u64>() as f64
}

fn main() {
    let opts = HarnessOptions::from_args(20_000);
    println!(
        "{}",
        banner("sensitivity", "TH52 advantage vs machine parameters", &opts)
    );

    // 1. Write queue capacity (threshold scaled to ~80% of capacity).
    let mut rows = Vec::new();
    for cap in [16usize, 32, 64, 128] {
        let th = (cap * 52 / 64) as u32;
        let mut base = opts.system_config();
        base.ctrl.write_capacity = cap;
        let th_cfg = base.with_mechanism(Mechanism::BurstTh(th));
        let gain = improvement(base, th_cfg, &opts);
        rows.push(vec![
            format!("{cap} (th {th})"),
            format!("{:.1}%", gain * 100.0),
        ]);
    }
    println!("--- write queue capacity\n");
    println!("{}", render_table(&["capacity", "TH improvement"], &rows));

    // 2. LSQ size: memory-level parallelism available to reorder.
    let mut rows = Vec::new();
    for lsq in [8usize, 16, 32, 64] {
        let mut base = opts.system_config();
        base.cpu.lsq_size = lsq;
        let th_cfg = base.with_mechanism(Mechanism::BurstTh(52));
        let gain = improvement(base, th_cfg, &opts);
        rows.push(vec![format!("{lsq}"), format!("{:.1}%", gain * 100.0)]);
    }
    println!("--- LSQ size (outstanding-miss limit)\n");
    println!("{}", render_table(&["LSQ", "TH improvement"], &rows));

    // 3. Channels: raw parallelism dilutes per-channel contention.
    let mut rows = Vec::new();
    for channels in [1u8, 2, 4] {
        let mut base = opts.system_config();
        base.dram.geometry.channels = channels;
        let th_cfg = base.with_mechanism(Mechanism::BurstTh(52));
        let gain = improvement(base, th_cfg, &opts);
        rows.push(vec![format!("{channels}"), format!("{:.1}%", gain * 100.0)]);
    }
    println!("--- channel count\n");
    println!("{}", render_table(&["channels", "TH improvement"], &rows));

    println!(
        "Expected shape: more outstanding misses (bigger LSQ) give reordering more\n\
         to work with; more channels dilute contention and shrink the advantage."
    );
}
