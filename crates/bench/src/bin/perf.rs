//! Tracked performance harness: measures *simulator* throughput (not the
//! simulated machine) and writes `BENCH_perf.json` so CI and future changes
//! can compare against it.
//!
//! Four views:
//!
//! 1. **Single-sim throughput** — one simulation per mechanism on the
//!    profile workload (swim), reported as simulated memory megacycles per
//!    wall-clock second. This tracks the cycle-loop hot path.
//! 2. **Cycle-skip effect** — the same simulation with event-horizon cycle
//!    skipping off and on, on a bandwidth-bound workload (swim) and an
//!    idle-heavy pointer chase (mcf). The two runs must produce
//!    bit-identical reports; only the wall clock may differ.
//! 3. **Checkpoint overhead** — the same simulation uninterrupted and
//!    with periodic mid-run checkpoints (capture + atomic write), at two
//!    cadences. The two runs must produce bit-identical reports; the JSON
//!    records the wall-clock overhead percentage.
//! 4. **Sweep throughput** — a benchmark x mechanism sweep run serially
//!    (`jobs = 1`) and with the resolved worker count, reported as
//!    simulations per second plus the resulting speedup. The JSON records
//!    the worker count actually used and the machine's available
//!    parallelism, so a single-core environment is visible in the numbers
//!    rather than masquerading as a parallel measurement.
//!
//! ```text
//! cargo run --release -p burst-bench --bin perf -- --instructions 300000
//! ```

use std::time::Instant;

use burst_bench::{banner, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::experiments::{fig8_mechanisms, Sweep};
use burst_sim::report::render_table;
use burst_sim::{default_jobs, simulate, SimReport, SystemConfig};
use burst_workloads::SpecBenchmark;

/// One single-sim measurement.
struct SingleSim {
    mechanism: Mechanism,
    report: SimReport,
    wall_secs: f64,
}

impl SingleSim {
    fn mcycles_per_sec(&self) -> f64 {
        self.report.mem_cycles as f64 / 1e6 / self.wall_secs
    }
}

/// Skip-off vs skip-on timing of one (workload, mechanism) simulation.
struct SkipEffect {
    benchmark: SpecBenchmark,
    mechanism: Mechanism,
    mem_cycles: u64,
    off_secs: f64,
    on_secs: f64,
}

impl SkipEffect {
    fn measure(
        base: &SystemConfig,
        benchmark: SpecBenchmark,
        mechanism: Mechanism,
        seed: u64,
        run: burst_sim::RunLength,
    ) -> Self {
        let cfg = base.with_mechanism(mechanism);
        let start = Instant::now();
        let off = simulate(&cfg.with_skip(false), benchmark.workload(seed), run);
        let off_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let on = simulate(&cfg.with_skip(true), benchmark.workload(seed), run);
        let on_secs = start.elapsed().as_secs_f64();
        // The cycle-skipping bit-identity guarantee, enforced on every
        // perf run.
        assert_eq!(
            off, on,
            "cycle skipping must be bit-identical to per-cycle stepping"
        );
        SkipEffect {
            benchmark,
            mechanism,
            mem_cycles: on.mem_cycles,
            off_secs,
            on_secs,
        }
    }

    fn off_rate(&self) -> f64 {
        self.mem_cycles as f64 / 1e6 / self.off_secs
    }

    fn on_rate(&self) -> f64 {
        self.mem_cycles as f64 / 1e6 / self.on_secs
    }

    fn speedup(&self) -> f64 {
        self.off_secs / self.on_secs
    }
}

/// Plain vs checkpointed timing of one (workload, mechanism) simulation.
struct CheckpointOverhead {
    benchmark: SpecBenchmark,
    mechanism: Mechanism,
    every: u64,
    mem_cycles: u64,
    plain_secs: f64,
    checkpointed_secs: f64,
}

impl CheckpointOverhead {
    fn measure(
        base: &SystemConfig,
        benchmark: SpecBenchmark,
        mechanism: Mechanism,
        every: u64,
        seed: u64,
        run: burst_sim::RunLength,
    ) -> Self {
        let cfg = base.with_mechanism(mechanism);
        let start = Instant::now();
        let plain = simulate(&cfg, benchmark.workload(seed), run);
        let plain_secs = start.elapsed().as_secs_f64();
        let dir = std::env::temp_dir().join(format!("burst-perf-ckpt-{}", std::process::id()));
        let policy = burst_sim::CheckpointPolicy {
            every,
            path: dir.join(format!(
                "perf-{}-{}.ckpt",
                benchmark.name(),
                mechanism.name()
            )),
            fingerprint: 0x70_65_72_66,
        };
        let start = Instant::now();
        let checkpointed =
            burst_sim::try_simulate_checkpointed(&cfg, || benchmark.workload(seed), run, &policy)
                .expect("checkpointed perf run");
        let checkpointed_secs = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        // The checkpoint layer's transparency guarantee, enforced on
        // every perf run.
        assert_eq!(
            plain, checkpointed,
            "checkpointed run must be bit-identical to an uninterrupted one"
        );
        CheckpointOverhead {
            benchmark,
            mechanism,
            every,
            mem_cycles: plain.mem_cycles,
            plain_secs,
            checkpointed_secs,
        }
    }

    fn checkpoints_written(&self) -> u64 {
        self.mem_cycles / self.every
    }

    fn overhead_pct(&self) -> f64 {
        (self.checkpointed_secs / self.plain_secs - 1.0) * 100.0
    }
}

/// Minimal JSON string escaping (names only contain ASCII, but be safe).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let opts = HarnessOptions::from_args(300_000);
    let base = opts.system_config();
    println!(
        "{}",
        banner("perf", "simulator throughput (tracked)", &opts)
    );

    let profile_bench = SpecBenchmark::Swim;
    let singles: Vec<SingleSim> = fig8_mechanisms()
        .into_iter()
        .map(|m| {
            let cfg = base.with_mechanism(m);
            let start = Instant::now();
            let report = simulate(&cfg, profile_bench.workload(opts.seed), opts.run);
            SingleSim {
                mechanism: m,
                report,
                wall_secs: start.elapsed().as_secs_f64(),
            }
        })
        .collect();

    println!(
        "--- single-sim throughput ({} workload, skip {})\n",
        profile_bench.name(),
        if base.skip { "on" } else { "off" }
    );
    let rows: Vec<Vec<String>> = singles
        .iter()
        .map(|s| {
            vec![
                s.mechanism.name(),
                format!("{}", s.report.mem_cycles),
                format!("{:.3}", s.wall_secs),
                format!("{:.2}", s.mcycles_per_sec()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["mechanism", "mem cycles", "wall s", "Mcycles/s"], &rows)
    );

    // Cycle-skip effect: bandwidth-bound (swim) vs idle-heavy pointer
    // chase (mcf, MLP 1 — the CPU spends most cycles fully stalled).
    let skip_cases = [
        (SpecBenchmark::Swim, Mechanism::BurstTh(52)),
        (SpecBenchmark::Mcf, Mechanism::BurstTh(52)),
        (SpecBenchmark::Mcf, Mechanism::BkInOrder),
    ];
    let effects: Vec<SkipEffect> = skip_cases
        .into_iter()
        .map(|(b, m)| SkipEffect::measure(&base, b, m, opts.seed, opts.run))
        .collect();
    println!("--- cycle-skip effect (bit-identity checked per row)\n");
    let rows: Vec<Vec<String>> = effects
        .iter()
        .map(|e| {
            vec![
                e.benchmark.name().to_string(),
                e.mechanism.name(),
                format!("{}", e.mem_cycles),
                format!("{:.2}", e.off_rate()),
                format!("{:.2}", e.on_rate()),
                format!("{:.2}", e.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "mechanism",
                "mem cycles",
                "off Mcyc/s",
                "on Mcyc/s",
                "speedup",
            ],
            &rows,
        )
    );

    // Checkpoint overhead: the same simulation uninterrupted vs paused
    // every N memory cycles to capture + atomically write a snapshot.
    let ckpt_cases = [
        (SpecBenchmark::Swim, Mechanism::BurstTh(52), 50_000u64),
        (SpecBenchmark::Swim, Mechanism::BurstTh(52), 10_000u64),
        (SpecBenchmark::Mcf, Mechanism::BurstTh(52), 10_000u64),
    ];
    let overheads: Vec<CheckpointOverhead> = ckpt_cases
        .into_iter()
        .map(|(b, m, every)| CheckpointOverhead::measure(&base, b, m, every, opts.seed, opts.run))
        .collect();
    println!("--- checkpoint overhead (bit-identity checked per row)\n");
    let rows: Vec<Vec<String>> = overheads
        .iter()
        .map(|o| {
            vec![
                o.benchmark.name().to_string(),
                o.mechanism.name(),
                format!("{}", o.every),
                format!("{}", o.checkpoints_written()),
                format!("{:.3}", o.plain_secs),
                format!("{:.3}", o.checkpointed_secs),
                format!("{:+.1}%", o.overhead_pct()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "mechanism",
                "every (cyc)",
                "ckpts",
                "plain s",
                "ckpt s",
                "overhead",
            ],
            &rows,
        )
    );

    // Sweep throughput: a small representative grid, serial vs parallel.
    let sweep_benches = [
        SpecBenchmark::Swim,
        SpecBenchmark::Gcc,
        SpecBenchmark::Art,
        SpecBenchmark::Parser,
    ];
    let mechanisms = fig8_mechanisms();
    let cells = sweep_benches.len() * mechanisms.len();
    let available = default_jobs();
    let jobs = if opts.jobs == 0 { available } else { opts.jobs };

    let start = Instant::now();
    let serial = Sweep::run_with_config(&base, &sweep_benches, &mechanisms, opts.run, opts.seed, 1);
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = Sweep::run_with_config(
        &base,
        &sweep_benches,
        &mechanisms,
        opts.run,
        opts.seed,
        jobs,
    );
    let parallel_secs = start.elapsed().as_secs_f64();

    // The executor's determinism guarantee, enforced on every perf run.
    assert_eq!(
        burst_sim::export::sweep_to_csv(&serial),
        burst_sim::export::sweep_to_csv(&parallel),
        "parallel sweep must be bit-identical to serial"
    );

    let serial_rate = cells as f64 / serial_secs;
    let parallel_rate = cells as f64 / parallel_secs;
    println!("--- sweep throughput ({cells} sims, {available} cores available)\n");
    println!(
        "{}",
        render_table(
            &["jobs", "wall s", "sims/s"],
            &[
                vec![
                    "1".into(),
                    format!("{serial_secs:.3}"),
                    format!("{serial_rate:.2}")
                ],
                vec![
                    format!("{jobs}"),
                    format!("{parallel_secs:.3}"),
                    format!("{parallel_rate:.2}")
                ],
            ],
        )
    );
    println!(
        "speedup: {:.2}x with {jobs} jobs",
        serial_secs / parallel_secs
    );

    let instructions = match opts.run {
        burst_sim::RunLength::Instructions(n) => n,
        burst_sim::RunLength::MemCycles(n) => n,
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"instructions\": {instructions},\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"skip\": {},\n", base.skip));
    json.push_str(&format!(
        "  \"profile_benchmark\": {},\n",
        json_str(profile_bench.name())
    ));
    json.push_str("  \"single_sim\": [\n");
    for (i, s) in singles.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mechanism\": {}, \"mem_cycles\": {}, \"wall_secs\": {:.6}, \"mcycles_per_sec\": {:.3}}}{}\n",
            json_str(&s.mechanism.name()),
            s.report.mem_cycles,
            s.wall_secs,
            s.mcycles_per_sec(),
            if i + 1 < singles.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"skip_effect\": [\n");
    for (i, e) in effects.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": {}, \"mechanism\": {}, \"mem_cycles\": {}, \
             \"skip_off_secs\": {:.6}, \"skip_off_mcycles_per_sec\": {:.3}, \
             \"skip_on_secs\": {:.6}, \"skip_on_mcycles_per_sec\": {:.3}, \
             \"speedup\": {:.3}}}{}\n",
            json_str(e.benchmark.name()),
            json_str(&e.mechanism.name()),
            e.mem_cycles,
            e.off_secs,
            e.off_rate(),
            e.on_secs,
            e.on_rate(),
            e.speedup(),
            if i + 1 < effects.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"checkpoint_overhead\": [\n");
    for (i, o) in overheads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": {}, \"mechanism\": {}, \"every_cycles\": {}, \
             \"checkpoints_written\": {}, \"plain_secs\": {:.6}, \
             \"checkpointed_secs\": {:.6}, \"overhead_pct\": {:.3}}}{}\n",
            json_str(o.benchmark.name()),
            json_str(&o.mechanism.name()),
            o.every,
            o.checkpoints_written(),
            o.plain_secs,
            o.checkpointed_secs,
            o.overhead_pct(),
            if i + 1 < overheads.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"sweep\": {\n");
    json.push_str(&format!("    \"cells\": {cells},\n"));
    json.push_str(&format!("    \"serial_secs\": {serial_secs:.6},\n"));
    json.push_str(&format!("    \"serial_sims_per_sec\": {serial_rate:.3},\n"));
    json.push_str(&format!("    \"requested_jobs\": {},\n", opts.jobs));
    json.push_str(&format!("    \"jobs\": {jobs},\n"));
    json.push_str(&format!("    \"available_parallelism\": {available},\n"));
    json.push_str(&format!("    \"parallel_secs\": {parallel_secs:.6},\n"));
    json.push_str(&format!(
        "    \"parallel_sims_per_sec\": {parallel_rate:.3},\n"
    ));
    json.push_str(&format!(
        "    \"speedup\": {:.3}\n",
        serial_secs / parallel_secs
    ));
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = "BENCH_perf.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
}
