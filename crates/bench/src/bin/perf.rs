//! Tracked performance harness: measures *simulator* throughput (not the
//! simulated machine) and writes `BENCH_perf.json` so CI and future changes
//! can compare against it.
//!
//! Five views:
//!
//! 1. **Single-sim throughput** — one simulation per mechanism on the
//!    profile workload (swim), reported as simulated memory megacycles per
//!    wall-clock second. This tracks the cycle-loop hot path.
//! 2. **Engine effect** — the same simulation under each [`Engine`]:
//!    plain per-cycle (`cycle-noskip`), quiescent-only skipping (`cycle`)
//!    and the full discrete-event engine (`event`), on a bandwidth-bound
//!    workload (swim) and an idle-heavy pointer chase (mcf). All three
//!    runs must produce bit-identical reports; only the wall clock may
//!    differ. The event run's observability counters (events dispatched,
//!    jump lengths, busy-vs-quiescent split) are reported alongside, and
//!    the harness **fails** if the event engine is slower than the cycle
//!    engine on any tracked row — the regression gate CI relies on. With
//!    `--baseline FILE` it additionally fails if any row's event-engine
//!    throughput drops more than 15% below the committed
//!    `BENCH_perf.json`, so CI catches absolute regressions too.
//! 3. **Phase profile** — one separately-profiled event-engine run per
//!    workload, splitting step time across the four step phases (CPU
//!    model, handoff, DRAM tick, delivery). These runs never feed a
//!    throughput row: the phase timers themselves cost wall clock.
//! 4. **Checkpoint overhead** — the same simulation uninterrupted and
//!    with periodic mid-run checkpoints (capture + atomic write), at two
//!    cadences and with the per-write fsync on and off
//!    (`--checkpoint-durable false`). Every pair must produce
//!    bit-identical reports; the JSON records the wall-clock overhead
//!    percentage per row.
//! 5. **Sweep scaling** — a benchmark x mechanism sweep run at worker
//!    counts 1, 2, 4, … up to the machine's available parallelism,
//!    reported as simulations per second plus the speedup over the serial
//!    run at each level. The JSON records the levels actually run and the
//!    available parallelism, and annotates single-core hosts explicitly,
//!    so a flat curve is visible as a host limitation rather than
//!    masquerading as a parallel measurement.
//!
//! ```text
//! cargo run --release -p burst-bench --bin perf -- --instructions 300000
//! ```

use std::time::Instant;

use burst_bench::{banner, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::experiments::{fig8_mechanisms, Sweep};
use burst_sim::report::render_table;
use burst_sim::{
    default_jobs, simulate, Engine, EngineStats, PhaseProfile, SimReport, System, SystemConfig,
};
use burst_workloads::SpecBenchmark;

/// One single-sim measurement.
struct SingleSim {
    mechanism: Mechanism,
    report: SimReport,
    wall_secs: f64,
}

impl SingleSim {
    fn mcycles_per_sec(&self) -> f64 {
        self.report.mem_cycles as f64 / 1e6 / self.wall_secs
    }
}

/// Per-engine timing of one (workload, mechanism) simulation, plus the
/// event engine's observability counters.
struct EngineEffect {
    benchmark: SpecBenchmark,
    mechanism: Mechanism,
    mem_cycles: u64,
    noskip_secs: f64,
    cycle_secs: f64,
    event_secs: f64,
    stats: EngineStats,
}

impl EngineEffect {
    fn measure(
        base: &SystemConfig,
        benchmark: SpecBenchmark,
        mechanism: Mechanism,
        seed: u64,
        run: burst_sim::RunLength,
    ) -> Self {
        let cfg = base.with_mechanism(mechanism);
        let timed = |engine: Engine| -> (SimReport, f64) {
            let start = Instant::now();
            let report = simulate(&cfg.with_engine(engine), benchmark.workload(seed), run);
            (report, start.elapsed().as_secs_f64())
        };
        let (noskip, noskip_secs) = timed(Engine::CycleNoSkip);
        let (cycle, cycle_secs) = timed(Engine::Cycle);
        let (event, event_secs) = timed(Engine::Event);
        // The engine bit-identity guarantee, enforced on every perf run.
        assert_eq!(
            noskip, cycle,
            "quiescent skipping must be bit-identical to per-cycle stepping"
        );
        assert_eq!(
            noskip, event,
            "the event engine must be bit-identical to per-cycle stepping"
        );
        EngineEffect {
            benchmark,
            mechanism,
            mem_cycles: event.mem_cycles,
            noskip_secs,
            cycle_secs,
            event_secs,
            stats: event.engine,
        }
    }

    fn rate(&self, secs: f64) -> f64 {
        self.mem_cycles as f64 / 1e6 / secs
    }

    fn event_speedup_vs_cycle(&self) -> f64 {
        self.cycle_secs / self.event_secs
    }

    fn event_speedup_vs_noskip(&self) -> f64 {
        self.noskip_secs / self.event_secs
    }
}

/// Wall-clock split of one event-engine run across the step loop's four
/// phases (CPU model, CPU→controller handoff, DRAM/scheduler tick,
/// completion delivery). The per-phase timers add overhead, so these runs
/// are measured separately and never feed a throughput row.
struct PhaseSplit {
    benchmark: SpecBenchmark,
    mechanism: Mechanism,
    mem_cycles: u64,
    profile: PhaseProfile,
}

impl PhaseSplit {
    fn measure(
        base: &SystemConfig,
        benchmark: SpecBenchmark,
        mechanism: Mechanism,
        seed: u64,
        run: burst_sim::RunLength,
    ) -> Self {
        let cfg = base.with_mechanism(mechanism).with_engine(Engine::Event);
        let mut workload = benchmark.workload(seed);
        let mut sys = System::new(&cfg);
        sys.warm(&mut workload);
        sys.enable_phase_profile();
        sys.run(&mut workload, run);
        PhaseSplit {
            benchmark,
            mechanism,
            mem_cycles: sys.mem_cycle(),
            profile: *sys.phase_profile().expect("profiling enabled"),
        }
    }

    fn phases(&self) -> [(&'static str, u64); 4] {
        [
            ("cpu", self.profile.cpu_ns),
            ("handoff", self.profile.handoff_ns),
            ("dram", self.profile.dram_ns),
            ("deliver", self.profile.deliver_ns),
        ]
    }

    fn pct(&self, ns: u64) -> f64 {
        ns as f64 * 100.0 / self.profile.total_ns().max(1) as f64
    }
}

/// Plain vs checkpointed timing of one (workload, mechanism) simulation.
struct CheckpointOverhead {
    benchmark: SpecBenchmark,
    mechanism: Mechanism,
    every: u64,
    durable: bool,
    mem_cycles: u64,
    plain_secs: f64,
    checkpointed_secs: f64,
}

impl CheckpointOverhead {
    fn measure(
        base: &SystemConfig,
        benchmark: SpecBenchmark,
        mechanism: Mechanism,
        every: u64,
        durable: bool,
        seed: u64,
        run: burst_sim::RunLength,
    ) -> Self {
        let cfg = base.with_mechanism(mechanism);
        let start = Instant::now();
        let plain = simulate(&cfg, benchmark.workload(seed), run);
        let plain_secs = start.elapsed().as_secs_f64();
        let dir = std::env::temp_dir().join(format!("burst-perf-ckpt-{}", std::process::id()));
        let policy = burst_sim::CheckpointPolicy {
            durable,
            ..burst_sim::CheckpointPolicy::new(
                every,
                dir.join(format!(
                    "perf-{}-{}.ckpt",
                    benchmark.name(),
                    mechanism.name()
                )),
                0x70_65_72_66,
            )
        };
        let start = Instant::now();
        let checkpointed =
            burst_sim::try_simulate_checkpointed(&cfg, || benchmark.workload(seed), run, &policy)
                .expect("checkpointed perf run");
        let checkpointed_secs = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        // The checkpoint layer's transparency guarantee, enforced on
        // every perf run.
        assert_eq!(
            plain, checkpointed,
            "checkpointed run must be bit-identical to an uninterrupted one"
        );
        CheckpointOverhead {
            benchmark,
            mechanism,
            every,
            durable,
            mem_cycles: plain.mem_cycles,
            plain_secs,
            checkpointed_secs,
        }
    }

    fn checkpoints_written(&self) -> u64 {
        self.mem_cycles / self.every
    }

    fn overhead_pct(&self) -> f64 {
        (self.checkpointed_secs / self.plain_secs - 1.0) * 100.0
    }
}

/// Extracts `(workload, mechanism, event_mcycles_per_sec)` triples from a
/// previously-written `BENCH_perf.json`. This harness writes one
/// `engine_effect` row per line, so a line-oriented scan is exact for its
/// own output; anything unparseable is simply skipped (a missing or
/// foreign baseline must never fail the run by itself).
fn read_baseline_rates(text: &str) -> Vec<(String, String, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    text.lines()
        .filter(|l| l.contains("\"event_mcycles_per_sec\""))
        .filter_map(|l| {
            Some((
                field(l, "\"workload\":")?,
                field(l, "\"mechanism\":")?,
                field(l, "\"event_mcycles_per_sec\":")?.parse().ok()?,
            ))
        })
        .collect()
}

/// Minimal JSON string escaping (names only contain ASCII, but be safe).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() -> std::process::ExitCode {
    let opts = HarnessOptions::from_args(300_000);
    let base = opts.system_config();
    println!(
        "{}",
        banner("perf", "simulator throughput (tracked)", &opts)
    );

    let profile_bench = SpecBenchmark::Swim;
    let singles: Vec<SingleSim> = fig8_mechanisms()
        .into_iter()
        .map(|m| {
            let cfg = base.with_mechanism(m);
            let start = Instant::now();
            let report = simulate(&cfg, profile_bench.workload(opts.seed), opts.run);
            SingleSim {
                mechanism: m,
                report,
                wall_secs: start.elapsed().as_secs_f64(),
            }
        })
        .collect();

    println!(
        "--- single-sim throughput ({} workload, {} engine)\n",
        profile_bench.name(),
        base.engine
    );
    let rows: Vec<Vec<String>> = singles
        .iter()
        .map(|s| {
            vec![
                s.mechanism.name(),
                format!("{}", s.report.mem_cycles),
                format!("{:.3}", s.wall_secs),
                format!("{:.2}", s.mcycles_per_sec()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["mechanism", "mem cycles", "wall s", "Mcycles/s"], &rows)
    );

    // Engine effect: bandwidth-bound busy phases (swim) vs idle-heavy
    // pointer chase (mcf, MLP 1 — the CPU spends most cycles fully
    // stalled). Swim exercises the event engine's busy-period jumps,
    // mcf its inherited quiescent skipping.
    let engine_cases = [
        (SpecBenchmark::Swim, Mechanism::BurstTh(52)),
        (SpecBenchmark::Mcf, Mechanism::BurstTh(52)),
        (SpecBenchmark::Mcf, Mechanism::BkInOrder),
    ];
    let effects: Vec<EngineEffect> = engine_cases
        .into_iter()
        .map(|(b, m)| EngineEffect::measure(&base, b, m, opts.seed, opts.run))
        .collect();
    println!("--- engine effect (bit-identity checked per row)\n");
    let rows: Vec<Vec<String>> = effects
        .iter()
        .map(|e| {
            vec![
                e.benchmark.name().to_string(),
                e.mechanism.name(),
                format!("{}", e.mem_cycles),
                format!("{:.2}", e.rate(e.noskip_secs)),
                format!("{:.2}", e.rate(e.cycle_secs)),
                format!("{:.2}", e.rate(e.event_secs)),
                format!("{:.2}", e.event_speedup_vs_cycle()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "mechanism",
                "mem cycles",
                "noskip Mc/s",
                "cycle Mc/s",
                "event Mc/s",
                "event/cycle",
            ],
            &rows,
        )
    );
    println!("--- event-engine observability (same rows)\n");
    let rows: Vec<Vec<String>> = effects
        .iter()
        .map(|e| {
            vec![
                e.benchmark.name().to_string(),
                e.mechanism.name(),
                format!("{}", e.stats.events_dispatched()),
                format!("{:.1}", e.stats.events_per_kcycle(e.mem_cycles)),
                format!("{:.1}", e.stats.mean_jump()),
                format!("{}", e.stats.quiescent_jumps),
                format!("{}", e.stats.quiescent_skipped),
                format!("{}", e.stats.busy_jumps),
                format!("{}", e.stats.busy_skipped),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "mechanism",
                "events",
                "ev/kcyc",
                "mean jump",
                "q jumps",
                "q skipped",
                "b jumps",
                "b skipped",
            ],
            &rows,
        )
    );
    // The regression gate: the event engine must never be slower than
    // the quiescent-only cycle engine on a tracked row.
    let mut regressed = false;
    for e in &effects {
        if e.event_secs > e.cycle_secs {
            regressed = true;
            eprintln!(
                "PERF REGRESSION: event engine slower than cycle engine on \
                 {}/{} ({:.2} vs {:.2} Mcycles/s)",
                e.benchmark.name(),
                e.mechanism.name(),
                e.rate(e.event_secs),
                e.rate(e.cycle_secs),
            );
        }
    }

    // Committed-baseline guard (`--baseline FILE`): event-engine
    // throughput on every tracked row must stay within 15% of the
    // committed BENCH_perf.json. A missing file or row only warns (first
    // run, renamed row, foreign baseline); an actual drop fails the
    // process through the same `regressed` flag as the engine gate.
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .windows(2)
        .find(|w| w[0] == "--baseline")
        .map(|w| w[1].clone());
    if let Some(baseline_path) = baseline_path {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => {
                let baseline = read_baseline_rates(&text);
                for e in &effects {
                    let row = baseline.iter().find(|(w, m, _)| {
                        w.as_str() == e.benchmark.name() && *m == e.mechanism.name()
                    });
                    let Some((_, _, base_rate)) = row else {
                        eprintln!(
                            "warning: no baseline row for {}/{} in {baseline_path}; skipped",
                            e.benchmark.name(),
                            e.mechanism.name(),
                        );
                        continue;
                    };
                    let measured = e.rate(e.event_secs);
                    if measured < base_rate * 0.85 {
                        regressed = true;
                        eprintln!(
                            "PERF REGRESSION: {}/{} event engine at {measured:.2} \
                             Mcycles/s, >15% below committed baseline {base_rate:.2}",
                            e.benchmark.name(),
                            e.mechanism.name(),
                        );
                    } else {
                        println!(
                            "baseline ok: {}/{} event engine {measured:.2} Mcycles/s \
                             vs committed {base_rate:.2} (floor {:.2})",
                            e.benchmark.name(),
                            e.mechanism.name(),
                            base_rate * 0.85,
                        );
                    }
                }
            }
            Err(err) => {
                eprintln!("warning: baseline {baseline_path} unreadable ({err}); guard skipped")
            }
        }
    }

    // Phase profile: where the event engine's step time goes, per
    // workload. Profiled runs are separate from the timed rows above —
    // the phase timers themselves cost wall clock.
    let splits: Vec<PhaseSplit> = [
        (SpecBenchmark::Swim, Mechanism::BurstTh(52)),
        (SpecBenchmark::Mcf, Mechanism::BurstTh(52)),
    ]
    .into_iter()
    .map(|(b, m)| PhaseSplit::measure(&base, b, m, opts.seed, opts.run))
    .collect();
    println!("--- phase profile (event engine, separately profiled runs)\n");
    let rows: Vec<Vec<String>> = splits
        .iter()
        .map(|s| {
            let mut row = vec![
                s.benchmark.name().to_string(),
                s.mechanism.name(),
                format!("{}", s.mem_cycles),
            ];
            for (_, ns) in s.phases() {
                row.push(format!("{:.1}%", s.pct(ns)));
            }
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "mechanism",
                "mem cycles",
                "cpu",
                "handoff",
                "dram",
                "deliver",
            ],
            &rows,
        )
    );

    // Checkpoint overhead: the same simulation uninterrupted vs paused
    // every N memory cycles to capture + atomically write a snapshot,
    // with the per-write fsync on (durable) and off (--checkpoint-durable
    // false) at the tightest cadence — the fsync dominates at short
    // cadences, so the pair bounds what the flag buys.
    let ckpt_cases = [
        (SpecBenchmark::Swim, Mechanism::BurstTh(52), 50_000u64, true),
        (SpecBenchmark::Swim, Mechanism::BurstTh(52), 10_000u64, true),
        (
            SpecBenchmark::Swim,
            Mechanism::BurstTh(52),
            10_000u64,
            false,
        ),
        (SpecBenchmark::Mcf, Mechanism::BurstTh(52), 10_000u64, true),
        (SpecBenchmark::Mcf, Mechanism::BurstTh(52), 10_000u64, false),
    ];
    let overheads: Vec<CheckpointOverhead> = ckpt_cases
        .into_iter()
        .map(|(b, m, every, durable)| {
            CheckpointOverhead::measure(&base, b, m, every, durable, opts.seed, opts.run)
        })
        .collect();
    println!("--- checkpoint overhead (bit-identity checked per row)\n");
    let rows: Vec<Vec<String>> = overheads
        .iter()
        .map(|o| {
            vec![
                o.benchmark.name().to_string(),
                o.mechanism.name(),
                format!("{}", o.every),
                if o.durable { "yes" } else { "no" }.to_string(),
                format!("{}", o.checkpoints_written()),
                format!("{:.3}", o.plain_secs),
                format!("{:.3}", o.checkpointed_secs),
                format!("{:+.1}%", o.overhead_pct()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "mechanism",
                "every (cyc)",
                "fsync",
                "ckpts",
                "plain s",
                "ckpt s",
                "overhead",
            ],
            &rows,
        )
    );

    // Sweep scaling: a small representative grid at worker counts
    // 1, 2, 4, … up to the machine's available parallelism. Reporting the
    // whole curve (instead of one serial/parallel pair labelled
    // "speedup") keeps a 1-core host from producing a misleading row.
    let sweep_benches = [
        SpecBenchmark::Swim,
        SpecBenchmark::Gcc,
        SpecBenchmark::Art,
        SpecBenchmark::Parser,
    ];
    let mechanisms = fig8_mechanisms();
    let cells = sweep_benches.len() * mechanisms.len();
    let available = default_jobs();
    let mut job_levels = Vec::new();
    let mut level = 1usize;
    while level < available {
        job_levels.push(level);
        level *= 2;
    }
    job_levels.push(available);

    let mut scaling: Vec<(usize, f64)> = Vec::with_capacity(job_levels.len());
    let mut serial_csv: Option<String> = None;
    for &jobs in &job_levels {
        let start = Instant::now();
        let sweep = Sweep::run_with_config(
            &base,
            &sweep_benches,
            &mechanisms,
            opts.run,
            opts.seed,
            jobs,
        );
        let secs = start.elapsed().as_secs_f64();
        let csv = burst_sim::export::sweep_to_csv(&sweep);
        // The executor's determinism guarantee, enforced at every level.
        match &serial_csv {
            None => serial_csv = Some(csv),
            Some(reference) => assert_eq!(
                reference, &csv,
                "a {jobs}-worker sweep must be bit-identical to serial"
            ),
        }
        scaling.push((jobs, secs));
    }
    let serial_secs = scaling[0].1;
    println!("--- sweep scaling ({cells} sims, {available} cores available)\n");
    let rows: Vec<Vec<String>> = scaling
        .iter()
        .map(|&(jobs, secs)| {
            vec![
                format!("{jobs}"),
                format!("{secs:.3}"),
                format!("{:.2}", cells as f64 / secs),
                format!("{:.2}", serial_secs / secs),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["jobs", "wall s", "sims/s", "speedup"], &rows)
    );
    if available == 1 {
        println!("note: single-core host — parallel speedup is not measurable here");
    }

    let instructions = match opts.run {
        burst_sim::RunLength::Instructions(n) => n,
        burst_sim::RunLength::MemCycles(n) => n,
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"instructions\": {instructions},\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!(
        "  \"engine\": {},\n",
        json_str(base.engine.name())
    ));
    json.push_str(&format!(
        "  \"profile_benchmark\": {},\n",
        json_str(profile_bench.name())
    ));
    json.push_str("  \"single_sim\": [\n");
    for (i, s) in singles.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mechanism\": {}, \"mem_cycles\": {}, \"wall_secs\": {:.6}, \"mcycles_per_sec\": {:.3}}}{}\n",
            json_str(&s.mechanism.name()),
            s.report.mem_cycles,
            s.wall_secs,
            s.mcycles_per_sec(),
            if i + 1 < singles.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"engine_effect\": [\n");
    for (i, e) in effects.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": {}, \"mechanism\": {}, \"mem_cycles\": {}, \
             \"noskip_secs\": {:.6}, \"noskip_mcycles_per_sec\": {:.3}, \
             \"cycle_secs\": {:.6}, \"cycle_mcycles_per_sec\": {:.3}, \
             \"event_secs\": {:.6}, \"event_mcycles_per_sec\": {:.3}, \
             \"event_speedup_vs_cycle\": {:.3}, \
             \"event_speedup_vs_noskip\": {:.3}, \
             \"events_dispatched\": {}, \"events_per_kcycle\": {:.3}, \
             \"mean_jump\": {:.3}, \
             \"quiescent_jumps\": {}, \"quiescent_skipped\": {}, \
             \"busy_jumps\": {}, \"busy_skipped\": {}}}{}\n",
            json_str(e.benchmark.name()),
            json_str(&e.mechanism.name()),
            e.mem_cycles,
            e.noskip_secs,
            e.rate(e.noskip_secs),
            e.cycle_secs,
            e.rate(e.cycle_secs),
            e.event_secs,
            e.rate(e.event_secs),
            e.event_speedup_vs_cycle(),
            e.event_speedup_vs_noskip(),
            e.stats.events_dispatched(),
            e.stats.events_per_kcycle(e.mem_cycles),
            e.stats.mean_jump(),
            e.stats.quiescent_jumps,
            e.stats.quiescent_skipped,
            e.stats.busy_jumps,
            e.stats.busy_skipped,
            if i + 1 < effects.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"phase_profile\": [\n");
    for (i, s) in splits.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": {}, \"mechanism\": {}, \"mem_cycles\": {}, \
             \"cpu_ns\": {}, \"handoff_ns\": {}, \"dram_ns\": {}, \
             \"deliver_ns\": {}, \"cpu_pct\": {:.3}, \"handoff_pct\": {:.3}, \
             \"dram_pct\": {:.3}, \"deliver_pct\": {:.3}}}{}\n",
            json_str(s.benchmark.name()),
            json_str(&s.mechanism.name()),
            s.mem_cycles,
            s.profile.cpu_ns,
            s.profile.handoff_ns,
            s.profile.dram_ns,
            s.profile.deliver_ns,
            s.pct(s.profile.cpu_ns),
            s.pct(s.profile.handoff_ns),
            s.pct(s.profile.dram_ns),
            s.pct(s.profile.deliver_ns),
            if i + 1 < splits.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"checkpoint_overhead\": [\n");
    for (i, o) in overheads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": {}, \"mechanism\": {}, \"every_cycles\": {}, \
             \"durable\": {}, \"checkpoints_written\": {}, \"plain_secs\": {:.6}, \
             \"checkpointed_secs\": {:.6}, \"overhead_pct\": {:.3}}}{}\n",
            json_str(o.benchmark.name()),
            json_str(&o.mechanism.name()),
            o.every,
            o.durable,
            o.checkpoints_written(),
            o.plain_secs,
            o.checkpointed_secs,
            o.overhead_pct(),
            if i + 1 < overheads.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"sweep\": {\n");
    json.push_str(&format!("    \"cells\": {cells},\n"));
    json.push_str(&format!("    \"available_parallelism\": {available},\n"));
    json.push_str(&format!("    \"single_core_host\": {},\n", available == 1));
    json.push_str("    \"scaling\": [\n");
    for (i, &(jobs, secs)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"jobs\": {jobs}, \"secs\": {secs:.6}, \
             \"sims_per_sec\": {:.3}, \"speedup\": {:.3}}}{}\n",
            cells as f64 / secs,
            serial_secs / secs,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n");
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = "BENCH_perf.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
    if regressed {
        eprintln!("perf: event-engine regression gate FAILED");
        std::process::ExitCode::from(1)
    } else {
        std::process::ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::read_baseline_rates;

    #[test]
    fn baseline_parser_reads_engine_effect_rows() {
        let json = concat!(
            "{\n",
            "  \"engine_effect\": [\n",
            "    {\"workload\": \"swim\", \"mechanism\": \"Burst TH=52\", \
             \"mem_cycles\": 536133, \"noskip_secs\": 0.1, \
             \"event_secs\": 0.2, \"event_mcycles_per_sec\": 2.468, \
             \"busy_jumps\": 3},\n",
            "    {\"workload\": \"mcf\", \"mechanism\": \"Burst TH=52\", \
             \"event_mcycles_per_sec\": 9.671, \"busy_jumps\": 0}\n",
            "  ],\n",
            "  \"phase_profile\": [\n",
            "    {\"workload\": \"swim\", \"mechanism\": \"Burst TH=52\", \
             \"cpu_ns\": 12}\n",
            "  ]\n",
            "}\n",
        );
        assert_eq!(
            read_baseline_rates(json),
            vec![
                ("swim".to_string(), "Burst TH=52".to_string(), 2.468),
                ("mcf".to_string(), "Burst TH=52".to_string(), 9.671),
            ]
        );
    }

    #[test]
    fn baseline_parser_ignores_garbage() {
        assert!(read_baseline_rates("not json at all").is_empty());
        assert!(read_baseline_rates("").is_empty());
        // A row with the key but an unparseable number is skipped, not fatal.
        assert!(read_baseline_rates("{\"event_mcycles_per_sec\": oops}").is_empty());
    }
}
