//! Energy ablation (extension): access reordering changes the DRAM command
//! mix (row hits avoid activate/precharge pairs) and the run time (faster
//! runs pay less standby power). This harness compares estimated DRAM
//! energy per mechanism using the Micron IDD-based model.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_dram::EnergyParams;
use burst_sim::report::render_table;
use burst_sim::{try_simulate, CellError, CellFailure};

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(40_000);
    println!(
        "{}",
        banner("energy", "DRAM energy per mechanism (extension)", &opts)
    );
    let params = EnergyParams::ddr2_pc2_6400();
    let benches = if opts.benchmarks.len() > 4 {
        opts.benchmarks[..4].to_vec()
    } else {
        opts.benchmarks.clone()
    };
    let ranks = 8; // 2 channels x 4 ranks
    let mut ledger = FailureLedger::new();

    let mut rows = Vec::new();
    for mechanism in Mechanism::all_paper() {
        let mut total_mj = 0.0;
        let mut act_nj = 0.0;
        let mut bg_nj = 0.0;
        let mut accesses = 0u64;
        let mut cycles = 0u64;
        let mut completed = 0usize;
        for b in &benches {
            let cfg = opts.system_config().with_mechanism(mechanism);
            let r = match try_simulate(&cfg, b.workload(opts.seed), opts.run) {
                Ok(r) => r,
                Err(e) => {
                    let err = CellError::from(e);
                    ledger.note(CellFailure {
                        scope: "energy".into(),
                        benchmark: *b,
                        mechanism,
                        kind: err.kind,
                        attempts: 1,
                        payload: err.payload,
                        quarantined: false,
                    });
                    continue;
                }
            };
            let e = r.energy(ranks, &params);
            total_mj += e.total_mj();
            act_nj += e.activate_nj;
            bg_nj += e.background_nj;
            accesses += r.reads() + r.writes();
            cycles += r.mem_cycles;
            completed += 1;
        }
        if completed == 0 {
            continue;
        }
        rows.push(vec![
            mechanism.name(),
            format!("{total_mj:.3}"),
            format!("{:.1}", (act_nj + bg_nj + 0.0) / accesses.max(1) as f64),
            format!("{:.0}", act_nj * 1e-3),
            format!("{:.0}", bg_nj * 1e-3),
            format!("{cycles}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "mechanism",
                "total (mJ)",
                "nJ/access (act+bg)",
                "activate (uJ)",
                "background (uJ)",
                "mem cycles"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: mechanisms with higher row-hit rates issue fewer activates;\n\
         mechanisms that finish sooner pay less background energy — Burst_TH wins both ways."
    );
    ledger.finish()
}
