//! Regenerates Figure 7: average read and write latency per access
//! reordering mechanism, averaged across the simulated benchmarks.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::experiments::Sweep;
use burst_sim::report::render_fig7;

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(120_000);
    println!(
        "{}",
        banner("Figure 7", "access latency in memory cycles", &opts)
    );
    if let Some(code) = opts.oracle_gate(&Mechanism::all_paper()) {
        return code;
    }
    let journal = opts.open_journal();
    let ckpt = opts.checkpoint_plan();
    let mut ledger = FailureLedger::new();
    let sweep = ledger.absorb(Sweep::run_supervised(
        "sweep",
        &opts.system_config(),
        &opts.benchmarks,
        &Mechanism::all_paper(),
        opts.run,
        opts.seed,
        opts.jobs,
        &opts.supervisor_config(),
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_fig7(&sweep.fig7_rows()));
    println!(
        "Paper shape: out-of-order mechanisms cut read latency 26-47% vs BkInOrder;\n\
         write latency rises for all except RowHit; Burst_RP has the lowest read\n\
         latency; write piggybacking (WP/TH) pulls write latency back down."
    );
    ledger.finish()
}
