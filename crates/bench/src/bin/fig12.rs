//! Regenerates Figure 12: read latency, write latency and normalised
//! execution time across the static threshold sweep.

use burst_bench::{banner, HarnessOptions};
use burst_sim::experiments::fig12_with_config;
use burst_sim::report::render_fig12;

fn main() {
    let opts = HarnessOptions::from_args(100_000);
    println!(
        "{}",
        banner(
            "Figure 12",
            "threshold sweep (normalised to plain Burst)",
            &opts
        )
    );
    let rows = fig12_with_config(
        &opts.system_config(),
        &opts.benchmarks,
        opts.run,
        opts.seed,
        opts.jobs,
    );
    println!("{}", render_fig12(&rows));
    let best = rows
        .iter()
        .min_by(|a, b| a.normalized_exec.total_cmp(&b.normalized_exec))
        .expect("rows nonempty");
    println!(
        "Best point in this run: {} (exec {:.3}).\n\
         Paper: read latency falls then rises past threshold 40 (write-queue\n\
         saturation stalls); write latency grows monotonically; threshold 52 wins.",
        best.mechanism.name(),
        best.normalized_exec
    );
}
