//! Regenerates Figure 12: read latency, write latency and normalised
//! execution time across the static threshold sweep.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_sim::experiments::fig12_supervised;
use burst_sim::report::render_fig12;

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(100_000);
    println!(
        "{}",
        banner(
            "Figure 12",
            "threshold sweep (normalised to plain Burst)",
            &opts
        )
    );
    if let Some(code) = opts.oracle_gate(&burst_sim::experiments::fig12_mechanisms()) {
        return code;
    }
    let journal = opts.open_journal();
    let ckpt = opts.checkpoint_plan();
    let mut ledger = FailureLedger::new();
    let rows = ledger.absorb(fig12_supervised(
        &opts.system_config(),
        &opts.benchmarks,
        opts.run,
        opts.seed,
        opts.jobs,
        &opts.supervisor_config(),
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_fig12(&rows));
    if let Some(best) = rows
        .iter()
        .min_by(|a, b| a.normalized_exec.total_cmp(&b.normalized_exec))
    {
        println!(
            "Best point in this run: {} (exec {:.3}).\n\
             Paper: read latency falls then rises past threshold 40 (write-queue\n\
             saturation stalls); write latency grows monotonically; threshold 52 wins.",
            best.mechanism.name(),
            best.normalized_exec
        );
    }
    ledger.finish()
}
