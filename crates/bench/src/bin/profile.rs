//! Profiles each benchmark surrogate's memory traffic under the baseline
//! mechanism: reads/writes reaching main memory, cache hit rates, IPC and
//! bus pressure. A calibration aid, not a paper figure.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_sim::report::render_table;
use burst_sim::{try_simulate, CellError, CellFailure};

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(40_000);
    println!(
        "{}",
        banner("profile", "workload traffic calibration", &opts)
    );
    let mut ledger = FailureLedger::new();
    let mut rows = Vec::new();
    for &b in &opts.benchmarks {
        let cfg = opts.system_config();
        let report = match try_simulate(&cfg, b.workload(opts.seed), opts.run) {
            Ok(r) => r,
            Err(e) => {
                let err = CellError::from(e);
                ledger.note(CellFailure {
                    scope: "profile".into(),
                    benchmark: b,
                    mechanism: cfg.mechanism,
                    kind: err.kind,
                    attempts: 1,
                    payload: err.payload,
                    quarantined: false,
                });
                continue;
            }
        };
        rows.push(vec![
            b.name().to_string(),
            format!("{:.3}", report.ipc()),
            report.reads().to_string(),
            report.writes().to_string(),
            format!(
                "{:.2}",
                report.writes() as f64 / report.reads().max(1) as f64
            ),
            format!("{:.1}", report.ctrl.avg_read_latency()),
            format!("{:.0}%", report.data_bus_utilization() * 100.0),
            format!("{:.0}%", report.ctrl.row_hit_rate() * 100.0),
            format!("{}", report.mem_cycles),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["bench", "IPC", "rd", "wr", "wr/rd", "rd lat", "data bus", "row hit", "mem cyc"],
            &rows
        )
    );
    ledger.finish()
}
