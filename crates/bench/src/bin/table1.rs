//! Regenerates Table 1: possible SDRAM access latencies under the Open
//! Page and Close Page Autoprecharge controller policies.

use burst_bench::HarnessOptions;
use burst_dram::TimingParams;
use burst_sim::experiments::table1;
use burst_sim::report::render_table1;

fn main() {
    let opts = HarnessOptions::from_args(0);
    let _ = &opts;
    println!("=== Table 1: possible SDRAM access latencies (memory cycles)\n");
    for (name, timing) in [
        (
            "DDR2 PC2-6400 (5-5-5), the baseline device",
            TimingParams::ddr2_pc2_6400(),
        ),
        (
            "DDR PC-2100 (2-2-2), Section 6 comparison",
            TimingParams::ddr_pc_2100(),
        ),
    ] {
        println!("{name}:");
        println!("{}", render_table1(&table1(&timing)));
    }
    println!(
        "Paper: OP = tCL / tRCD+tCL / tRP+tRCD+tCL for hit/empty/conflict; CPA only row empty."
    );
}
