//! CMP scaling study (extension of paper Section 6): "Access reordering
//! mechanisms will play a more important role with chip level multiple
//! processors, as the memory controller will have a larger number of
//! outstanding main memory accesses from which to select." This harness
//! measures the BkInOrder -> Burst_TH52 improvement at 1, 2 and 4 cores
//! sharing the baseline memory subsystem.

use burst_bench::{banner, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::cmp::CmpSystem;
use burst_sim::report::render_table;
use burst_sim::SystemConfig;
use burst_workloads::{OpSource, SpecBenchmark};

fn mix(cores: usize, seed: u64) -> Vec<Box<dyn OpSource>> {
    // A spread of behaviours: streaming, integer, pointer chasing.
    let picks = [
        SpecBenchmark::Swim,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Art,
    ];
    (0..cores)
        .map(|i| Box::new(picks[i % picks.len()].workload(seed + i as u64)) as Box<dyn OpSource>)
        .collect()
}

fn main() {
    let opts = HarnessOptions::from_args(15_000);
    println!(
        "{}",
        banner("cmp", "reordering gains vs core count (extension)", &opts)
    );
    let per_core = match opts.run {
        burst_sim::RunLength::Instructions(n) => n,
        burst_sim::RunLength::MemCycles(n) => n,
    };

    let mut rows = Vec::new();
    for cores in [1usize, 2, 4] {
        // Throughput view: run a fixed total instruction budget and compare
        // how many memory cycles each mechanism needs. `min share` shows
        // fairness — the slowest core's fraction of an equal split.
        let run = |mechanism: Mechanism| -> (u64, f64, f64) {
            let cfg = SystemConfig::baseline().with_mechanism(mechanism);
            let mut sys = CmpSystem::new(&cfg, cores);
            let mut w = mix(cores, opts.seed);
            sys.warm(&mut w);
            sys.run_total_instructions(&mut w, per_core * cores as u64);
            let r = sys.report("mix");
            let min_share = (0..cores)
                .map(|i| sys.retired(i) as f64)
                .fold(f64::INFINITY, f64::min)
                / (sys.total_retired() as f64 / cores as f64);
            (r.mem_cycles, r.ctrl.avg_read_latency(), min_share)
        };
        let (base_cycles, base_lat, base_fair) = run(Mechanism::BkInOrder);
        let (th_cycles, th_lat, th_fair) = run(Mechanism::BurstTh(52));
        rows.push(vec![
            format!("{cores}"),
            format!("{base_cycles}"),
            format!("{th_cycles}"),
            format!(
                "{:.1}%",
                (1.0 - th_cycles as f64 / base_cycles as f64) * 100.0
            ),
            format!("{base_lat:.0} -> {th_lat:.0}"),
            format!("{:.2} -> {:.2}", base_fair, th_fair),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "cores",
                "BkInOrder cycles",
                "Burst_TH52 cycles",
                "improvement",
                "read latency",
                "min share",
            ],
            &rows
        )
    );
    println!(
        "Throughput view (fixed total instructions). Burst_TH's improvement stays\n\
         positive at every core count, while `min share` exposes the CMP-era cost of\n\
         deferring writes: latency-critical cores (mcf here) starve when the shared\n\
         write queue saturates — precisely the fairness problem later QoS-aware\n\
         schedulers were designed to fix, and a concrete instance of the paper's\n\
         Section 6 observation that CMPs raise the stakes for access reordering."
    );
}
