//! Section 6's generational argument: from DDR PC-2100 (2-2-2 at 133 MHz)
//! to DDR2 PC2-6400 (5-5-5 at 400 MHz) bus frequency tripled while timing
//! in nanoseconds barely moved, so latency *in cycles* grew (row conflict:
//! 6 -> 15 cycles) — and with it the headroom for access reordering. This
//! harness measures the Burst_TH52 improvement on both devices.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_dram::{DramConfig, TimingParams};
use burst_sim::report::render_table;
use burst_sim::{try_simulate, CellError, CellFailure};

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(40_000);
    println!(
        "{}",
        banner(
            "section6",
            "reordering gains across device generations",
            &opts
        )
    );

    let ddr = DramConfig {
        timing: TimingParams::ddr_pc_2100(),
        ..DramConfig::baseline()
    };
    let ddr2 = DramConfig::baseline();
    let ddr3 = DramConfig {
        timing: TimingParams::ddr3_1333(),
        ..DramConfig::baseline()
    };

    let benches = if opts.benchmarks.len() > 5 {
        opts.benchmarks[..5].to_vec()
    } else {
        opts.benchmarks.clone()
    };
    let mut ledger = FailureLedger::new();

    let mut rows = Vec::new();
    for (name, dram) in [
        ("DDR PC-2100 (2-2-2)", ddr),
        ("DDR2 PC2-6400 (5-5-5)", ddr2),
        ("DDR3-1333 (9-9-9)", ddr3),
    ] {
        // Sums cycles over the benchmarks where the run completed; a failed
        // cell is recorded in the ledger and excluded from *both* sums so
        // the ratio stays apples-to-apples.
        let run = |mechanism: Mechanism, ledger: &mut FailureLedger| -> Vec<Option<u64>> {
            benches
                .iter()
                .map(|b| {
                    let cfg = opts
                        .system_config()
                        .with_dram(dram)
                        .with_mechanism(mechanism);
                    match try_simulate(&cfg, b.workload(opts.seed), opts.run) {
                        Ok(r) => Some(r.cpu_cycles),
                        Err(e) => {
                            let err = CellError::from(e);
                            ledger.note(CellFailure {
                                scope: "section6".into(),
                                benchmark: *b,
                                mechanism,
                                kind: err.kind,
                                attempts: 1,
                                payload: err.payload,
                                quarantined: false,
                            });
                            None
                        }
                    }
                })
                .collect()
        };
        let base_cells = run(Mechanism::BkInOrder, &mut ledger);
        let th_cells = run(Mechanism::BurstTh(52), &mut ledger);
        let (mut base, mut th) = (0u64, 0u64);
        for (b, t) in base_cells.iter().zip(&th_cells) {
            if let (Some(b), Some(t)) = (b, t) {
                base += b;
                th += t;
            }
        }
        let ratio = if base > 0 {
            format!("{:.3}", th as f64 / base as f64)
        } else {
            "n/a".to_string()
        };
        let gain = if base > 0 {
            format!("{:.1}%", (1.0 - th as f64 / base as f64) * 100.0)
        } else {
            "n/a".to_string()
        };
        rows.push(vec![
            name.to_string(),
            format!("{}", dram.timing.row_conflict_latency()),
            ratio,
            gain,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "device",
                "conflict latency (cycles)",
                "TH52 / BkInOrder",
                "improvement"
            ],
            &rows
        )
    );
    println!(
        "Paper's claim: as timing parameters grow in cycles, the improvement provided\n\
         by access reordering mechanisms becomes more significant."
    );
    ledger.finish()
}
