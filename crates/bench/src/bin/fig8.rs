//! Regenerates Figure 8: the distribution of outstanding memory accesses
//! for the `swim` benchmark under six mechanisms.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_sim::experiments::{fig8_mechanisms, outstanding_supervised};
use burst_sim::report::render_outstanding;
use burst_workloads::SpecBenchmark;

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(150_000);
    println!(
        "{}",
        banner("Figure 8", "outstanding accesses for swim", &opts)
    );
    if let Some(code) = opts.oracle_gate(&fig8_mechanisms()) {
        return code;
    }
    let journal = opts.open_journal();
    let ckpt = opts.checkpoint_plan();
    let mut ledger = FailureLedger::new();
    let rows = ledger.absorb(outstanding_supervised(
        "fig8",
        &opts.system_config(),
        SpecBenchmark::Swim,
        &fig8_mechanisms(),
        opts.run,
        opts.seed,
        opts.jobs,
        &opts.supervisor_config(),
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_outstanding(&rows));
    println!(
        "Paper shape (swim): Intel and Burst pile writes up (24% / 46% write queue\n\
         saturation); Burst_RP saturates 70% of time; Burst_WP only 2%; Burst_TH52\n\
         lands between at 9%."
    );
    ledger.finish()
}
