//! Regenerates Figure 8: the distribution of outstanding memory accesses
//! for the `swim` benchmark under six mechanisms.

use burst_bench::{banner, HarnessOptions};
use burst_sim::experiments::fig8_with_config;
use burst_sim::report::render_outstanding;
use burst_workloads::SpecBenchmark;

fn main() {
    let opts = HarnessOptions::from_args(150_000);
    println!(
        "{}",
        banner("Figure 8", "outstanding accesses for swim", &opts)
    );
    let rows = fig8_with_config(
        &opts.system_config(),
        SpecBenchmark::Swim,
        opts.run,
        opts.seed,
        opts.jobs,
    );
    println!("{}", render_outstanding(&rows));
    println!(
        "Paper shape (swim): Intel and Burst pile writes up (24% / 46% write queue\n\
         saturation); Burst_RP saturates 70% of time; Burst_WP only 2%; Burst_TH52\n\
         lands between at 9%."
    );
}
