//! Regenerates Figure 9: average row hit / conflict / empty rates and
//! SDRAM bus utilisation per mechanism.

use burst_bench::{banner, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::experiments::Sweep;
use burst_sim::report::render_fig9;

fn main() {
    let opts = HarnessOptions::from_args(120_000);
    println!(
        "{}",
        banner("Figure 9", "row states and bus utilisation", &opts)
    );
    let sweep = Sweep::run_with_config(
        &opts.system_config(),
        &opts.benchmarks,
        &Mechanism::all_paper(),
        opts.run,
        opts.seed,
        opts.jobs,
    );
    println!("{}", render_fig9(&sweep.fig9_rows()));
    println!(
        "Paper shape: reordering raises row hits; RowHit/Burst_WP/Burst_TH highest\n\
         (they also mine the write queues for hits); RP variants raise row empties;\n\
         address bus varies ~3%, data bus spans 31-42% with Burst_TH on top."
    );
}
