//! Regenerates Figure 9: average row hit / conflict / empty rates and
//! SDRAM bus utilisation per mechanism.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::experiments::Sweep;
use burst_sim::report::render_fig9;

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(120_000);
    println!(
        "{}",
        banner("Figure 9", "row states and bus utilisation", &opts)
    );
    if let Some(code) = opts.oracle_gate(&Mechanism::all_paper()) {
        return code;
    }
    let journal = opts.open_journal();
    let ckpt = opts.checkpoint_plan();
    let mut ledger = FailureLedger::new();
    let sweep = ledger.absorb(Sweep::run_supervised(
        "sweep",
        &opts.system_config(),
        &opts.benchmarks,
        &Mechanism::all_paper(),
        opts.run,
        opts.seed,
        opts.jobs,
        &opts.supervisor_config(),
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_fig9(&sweep.fig9_rows()));
    println!(
        "Paper shape: reordering raises row hits; RowHit/Burst_WP/Burst_TH highest\n\
         (they also mine the write queues for hits); RP variants raise row empties;\n\
         address bus varies ~3%, data bus spans 31-42% with Burst_TH on top."
    );
    ledger.finish()
}
