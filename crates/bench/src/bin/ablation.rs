//! Ablation studies beyond the paper's figures:
//!
//! 1. Address mapping x scheduling (paper Section 7: "studies of access
//!    reordering mechanisms working in conjunction with SDRAM address
//!    mapping are ongoing") — page interleaving vs permutation vs
//!    bit-reversal under BkInOrder and Burst_TH52.
//! 2. Row policy: open page vs close-page autoprecharge under BkInOrder.
//! 3. Dynamic threshold (Section 7 future work) vs the static optimum.

use burst_bench::{banner, HarnessOptions};
use burst_core::Mechanism;
use burst_dram::{AddressMapping, RowPolicy};
use burst_sim::report::render_table;
use burst_sim::{map_parallel, simulate};
use burst_workloads::SpecBenchmark;

fn main() {
    let opts = HarnessOptions::from_args(40_000);
    println!(
        "{}",
        banner("ablation", "design-space studies beyond the paper", &opts)
    );
    let benches: Vec<SpecBenchmark> = if opts.benchmarks.len() > 6 {
        vec![
            SpecBenchmark::Swim,
            SpecBenchmark::Gcc,
            SpecBenchmark::Mcf,
            SpecBenchmark::Lucas,
            SpecBenchmark::Art,
        ]
    } else {
        opts.benchmarks.clone()
    };

    // 1. Address mapping x mechanism: every (mapping, mechanism, benchmark)
    // cell is an independent simulation — run the whole grid in parallel and
    // aggregate afterwards.
    println!(
        "--- address mapping x mechanism (avg cpu cycles over {} benchmarks)\n",
        benches.len()
    );
    let mappings = [
        AddressMapping::PageInterleaving,
        AddressMapping::CacheLineInterleaving,
        AddressMapping::Permutation,
        AddressMapping::BitReversal,
    ];
    let mechanisms = [Mechanism::BkInOrder, Mechanism::BurstTh(52)];
    let mut grid = Vec::new();
    for mapping in mappings {
        for mechanism in mechanisms {
            for &b in &benches {
                grid.push((mapping, mechanism, b));
            }
        }
    }
    let cycles = map_parallel(&grid, opts.jobs, |_, &(mapping, mechanism, b)| {
        let cfg = opts
            .system_config()
            .with_mechanism(mechanism)
            .with_mapping(mapping);
        simulate(&cfg, b.workload(opts.seed), opts.run).cpu_cycles
    });
    let mut rows = Vec::new();
    let mut cell = cycles.chunks_exact(benches.len());
    for mapping in mappings {
        let mut row = vec![format!("{mapping:?}")];
        for _mechanism in mechanisms {
            let total: u64 = cell.next().expect("full grid").iter().sum();
            row.push(format!("{}", total / benches.len() as u64));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["mapping", "BkInOrder", "Burst_TH52"], &rows)
    );

    // 2. Row policy under the baseline mechanism.
    println!("--- row policy (BkInOrder)\n");
    let policies = [RowPolicy::OpenPage, RowPolicy::ClosePageAutoprecharge];
    let mut grid = Vec::new();
    for policy in policies {
        for &b in &benches {
            grid.push((policy, b));
        }
    }
    let results = map_parallel(&grid, opts.jobs, |_, &(policy, b)| {
        let mut cfg = opts.system_config();
        cfg.ctrl.row_policy = policy;
        let r = simulate(&cfg, b.workload(opts.seed), opts.run);
        (r.cpu_cycles, r.ctrl.row_hit_rate())
    });
    let mut rows = Vec::new();
    for (policy, chunk) in policies.iter().zip(results.chunks_exact(benches.len())) {
        let total: u64 = chunk.iter().map(|&(c, _)| c).sum();
        let hits: f64 = chunk.iter().map(|&(_, h)| h).sum();
        rows.push(vec![
            policy.to_string(),
            format!("{}", total / benches.len() as u64),
            format!("{:.1}%", hits / benches.len() as f64 * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["policy", "avg cpu cycles", "row hit"], &rows)
    );

    // 3. Section 7 future work and related work vs the static optimum.
    println!("--- future-work & related-work mechanisms\n");
    let future = [
        Mechanism::BurstTh(52),
        Mechanism::BurstDyn,
        Mechanism::BurstCrit,
        Mechanism::AdaptiveHistory,
    ];
    let mut grid = Vec::new();
    for mechanism in future {
        for &b in &benches {
            grid.push((mechanism, b));
        }
    }
    let cycles = map_parallel(&grid, opts.jobs, |_, &(mechanism, b)| {
        let cfg = opts.system_config().with_mechanism(mechanism);
        simulate(&cfg, b.workload(opts.seed), opts.run).cpu_cycles
    });
    let mut rows = Vec::new();
    for (mechanism, chunk) in future.iter().zip(cycles.chunks_exact(benches.len())) {
        let mut row = vec![mechanism.name()];
        row.extend(chunk.iter().map(|c| format!("{c}")));
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["mechanism"];
    let names: Vec<String> = benches.iter().map(|b| b.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    println!("{}", render_table(&headers, &rows));
}
