//! Ablation studies beyond the paper's figures:
//!
//! 1. Address mapping x scheduling (paper Section 7: "studies of access
//!    reordering mechanisms working in conjunction with SDRAM address
//!    mapping are ongoing") — page interleaving vs permutation vs
//!    bit-reversal under BkInOrder and Burst_TH52.
//! 2. Row policy: open page vs close-page autoprecharge under BkInOrder.
//! 3. Dynamic threshold (Section 7 future work) vs the static optimum.

use burst_bench::{banner, HarnessOptions};
use burst_core::Mechanism;
use burst_dram::{AddressMapping, RowPolicy};
use burst_sim::report::render_table;
use burst_sim::{simulate, SystemConfig};
use burst_workloads::SpecBenchmark;

fn main() {
    let opts = HarnessOptions::from_args(40_000);
    println!("{}", banner("ablation", "design-space studies beyond the paper", &opts));
    let benches: Vec<SpecBenchmark> = if opts.benchmarks.len() > 6 {
        vec![
            SpecBenchmark::Swim,
            SpecBenchmark::Gcc,
            SpecBenchmark::Mcf,
            SpecBenchmark::Lucas,
            SpecBenchmark::Art,
        ]
    } else {
        opts.benchmarks.clone()
    };

    // 1. Address mapping x mechanism.
    println!("--- address mapping x mechanism (avg cpu cycles over {} benchmarks)\n", benches.len());
    let mut rows = Vec::new();
    for mapping in [
        AddressMapping::PageInterleaving,
        AddressMapping::CacheLineInterleaving,
        AddressMapping::Permutation,
        AddressMapping::BitReversal,
    ] {
        let mut row = vec![format!("{mapping:?}")];
        for mechanism in [Mechanism::BkInOrder, Mechanism::BurstTh(52)] {
            let total: u64 = benches
                .iter()
                .map(|b| {
                    let cfg = SystemConfig::baseline()
                        .with_mechanism(mechanism)
                        .with_mapping(mapping);
                    simulate(&cfg, b.workload(opts.seed), opts.run).cpu_cycles
                })
                .sum();
            row.push(format!("{}", total / benches.len() as u64));
        }
        rows.push(row);
    }
    println!("{}", render_table(&["mapping", "BkInOrder", "Burst_TH52"], &rows));

    // 2. Row policy under the baseline mechanism.
    println!("--- row policy (BkInOrder)\n");
    let mut rows = Vec::new();
    for policy in [RowPolicy::OpenPage, RowPolicy::ClosePageAutoprecharge] {
        let mut cfg = SystemConfig::baseline();
        cfg.ctrl.row_policy = policy;
        let mut total = 0u64;
        let mut hits = 0.0;
        for b in &benches {
            let r = simulate(&cfg, b.workload(opts.seed), opts.run);
            total += r.cpu_cycles;
            hits += r.ctrl.row_hit_rate();
        }
        rows.push(vec![
            policy.to_string(),
            format!("{}", total / benches.len() as u64),
            format!("{:.1}%", hits / benches.len() as f64 * 100.0),
        ]);
    }
    println!("{}", render_table(&["policy", "avg cpu cycles", "row hit"], &rows));

    // 3. Section 7 future work and related work vs the static optimum.
    println!("--- future-work & related-work mechanisms\n");
    let mut rows = Vec::new();
    for mechanism in [
        Mechanism::BurstTh(52),
        Mechanism::BurstDyn,
        Mechanism::BurstCrit,
        Mechanism::AdaptiveHistory,
    ] {
        let mut row = vec![mechanism.name()];
        for b in &benches {
            let cfg = SystemConfig::baseline().with_mechanism(mechanism);
            let r = simulate(&cfg, b.workload(opts.seed), opts.run);
            row.push(format!("{}", r.cpu_cycles));
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["mechanism"];
    let names: Vec<String> = benches.iter().map(|b| b.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    println!("{}", render_table(&headers, &rows));
}
