//! Ablation studies beyond the paper's figures:
//!
//! 1. Address mapping x scheduling (paper Section 7: "studies of access
//!    reordering mechanisms working in conjunction with SDRAM address
//!    mapping are ongoing") — page interleaving vs permutation vs
//!    bit-reversal under BkInOrder and Burst_TH52.
//! 2. Row policy: open page vs close-page autoprecharge under BkInOrder.
//! 3. Dynamic threshold (Section 7 future work) vs the static optimum.
//!
//! Every grid runs under the sweep supervisor: a failing cell is retried,
//! then excluded from its aggregate (printed as `n/a` if the whole group
//! is lost) and the binary exits nonzero.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_dram::{AddressMapping, RowPolicy};
use burst_sim::report::render_table;
use burst_sim::{supervise, try_simulate, CellError, CellFailure, CellOutcome};
use burst_workloads::SpecBenchmark;

/// Averages the completed cells of one aggregation group; `n/a` when every
/// cell in the group failed.
fn avg_or_na(group: &[CellOutcome<u64>]) -> String {
    let done: Vec<u64> = group.iter().filter_map(|o| o.clone().value()).collect();
    if done.is_empty() {
        "n/a".to_string()
    } else {
        format!("{}", done.iter().sum::<u64>() / done.len() as u64)
    }
}

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(40_000);
    println!(
        "{}",
        banner("ablation", "design-space studies beyond the paper", &opts)
    );
    let benches: Vec<SpecBenchmark> = if opts.benchmarks.len() > 6 {
        vec![
            SpecBenchmark::Swim,
            SpecBenchmark::Gcc,
            SpecBenchmark::Mcf,
            SpecBenchmark::Lucas,
            SpecBenchmark::Art,
        ]
    } else {
        opts.benchmarks.clone()
    };
    let base = opts.system_config();
    let sup = opts.supervisor_config();
    let (seed, run) = (opts.seed, opts.run);
    let mut ledger = FailureLedger::new();

    // 1. Address mapping x mechanism: every (mapping, mechanism, benchmark)
    // cell is an independent simulation — run the whole grid supervised in
    // parallel and aggregate afterwards.
    println!(
        "--- address mapping x mechanism (avg cpu cycles over {} benchmarks)\n",
        benches.len()
    );
    let mappings = [
        AddressMapping::PageInterleaving,
        AddressMapping::CacheLineInterleaving,
        AddressMapping::Permutation,
        AddressMapping::BitReversal,
    ];
    let mechanisms = [Mechanism::BkInOrder, Mechanism::BurstTh(52)];
    let mut grid = Vec::new();
    for mapping in mappings {
        for mechanism in mechanisms {
            for &b in &benches {
                grid.push((mapping, mechanism, b));
            }
        }
    }
    let outcomes = supervise(
        &grid,
        opts.jobs,
        &sup,
        move |_, &(mapping, mechanism, b), _| {
            let cfg = base.with_mechanism(mechanism).with_mapping(mapping);
            try_simulate(&cfg, b.workload(seed), run)
                .map(|r| r.cpu_cycles)
                .map_err(CellError::from)
        },
    );
    for (&(_, mechanism, b), o) in grid.iter().zip(&outcomes) {
        if let CellOutcome::Failed {
            kind,
            attempts,
            payload,
        } = o
        {
            ledger.note(CellFailure {
                scope: "ablation-mapping".into(),
                benchmark: b,
                mechanism,
                kind: *kind,
                attempts: *attempts,
                payload: payload.clone(),
                quarantined: false,
            });
        }
    }
    let mut rows = Vec::new();
    let mut cell = outcomes.chunks_exact(benches.len());
    for mapping in mappings {
        let mut row = vec![format!("{mapping:?}")];
        for _mechanism in mechanisms {
            row.push(avg_or_na(cell.next().expect("full grid")));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["mapping", "BkInOrder", "Burst_TH52"], &rows)
    );

    // 2. Row policy under the baseline mechanism.
    println!("--- row policy (BkInOrder)\n");
    let policies = [RowPolicy::OpenPage, RowPolicy::ClosePageAutoprecharge];
    let mut grid = Vec::new();
    for policy in policies {
        for &b in &benches {
            grid.push((policy, b));
        }
    }
    let outcomes = supervise(&grid, opts.jobs, &sup, move |_, &(policy, b), _| {
        let mut cfg = base;
        cfg.ctrl.row_policy = policy;
        try_simulate(&cfg, b.workload(seed), run)
            .map(|r| (r.cpu_cycles, r.ctrl.row_hit_rate()))
            .map_err(CellError::from)
    });
    for (&(_, b), o) in grid.iter().zip(&outcomes) {
        if let CellOutcome::Failed {
            kind,
            attempts,
            payload,
        } = o
        {
            ledger.note(CellFailure {
                scope: "ablation-policy".into(),
                benchmark: b,
                mechanism: base.mechanism,
                kind: *kind,
                attempts: *attempts,
                payload: payload.clone(),
                quarantined: false,
            });
        }
    }
    let mut rows = Vec::new();
    for (policy, chunk) in policies.iter().zip(outcomes.chunks_exact(benches.len())) {
        let done: Vec<(u64, f64)> = chunk.iter().filter_map(|o| o.clone().value()).collect();
        let (cycles, hits) = if done.is_empty() {
            ("n/a".to_string(), "n/a".to_string())
        } else {
            let total: u64 = done.iter().map(|&(c, _)| c).sum();
            let hit_sum: f64 = done.iter().map(|&(_, h)| h).sum();
            (
                format!("{}", total / done.len() as u64),
                format!("{:.1}%", hit_sum / done.len() as f64 * 100.0),
            )
        };
        rows.push(vec![policy.to_string(), cycles, hits]);
    }
    println!(
        "{}",
        render_table(&["policy", "avg cpu cycles", "row hit"], &rows)
    );

    // 3. Section 7 future work and related work vs the static optimum.
    println!("--- future-work & related-work mechanisms\n");
    let future = [
        Mechanism::BurstTh(52),
        Mechanism::BurstDyn,
        Mechanism::BurstCrit,
        Mechanism::AdaptiveHistory,
    ];
    let mut grid = Vec::new();
    for mechanism in future {
        for &b in &benches {
            grid.push((mechanism, b));
        }
    }
    let outcomes = supervise(&grid, opts.jobs, &sup, move |_, &(mechanism, b), _| {
        let cfg = base.with_mechanism(mechanism);
        try_simulate(&cfg, b.workload(seed), run)
            .map(|r| r.cpu_cycles)
            .map_err(CellError::from)
    });
    for (&(mechanism, b), o) in grid.iter().zip(&outcomes) {
        if let CellOutcome::Failed {
            kind,
            attempts,
            payload,
        } = o
        {
            ledger.note(CellFailure {
                scope: "ablation-future".into(),
                benchmark: b,
                mechanism,
                kind: *kind,
                attempts: *attempts,
                payload: payload.clone(),
                quarantined: false,
            });
        }
    }
    let mut rows = Vec::new();
    for (mechanism, chunk) in future.iter().zip(outcomes.chunks_exact(benches.len())) {
        let mut row = vec![mechanism.name()];
        row.extend(chunk.iter().map(|o| match o.clone().value() {
            Some(c) => format!("{c}"),
            None => "n/a".to_string(),
        }));
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["mechanism"];
    let names: Vec<String> = benches.iter().map(|b| b.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    println!("{}", render_table(&headers, &rows));
    ledger.finish()
}
