//! Regenerates Figure 1: the motivating example — four accesses on a 2-2-2
//! burst-length-4 device, scheduled in order without interleaving (paper:
//! 28 cycles) versus out of order with interleaving (paper: 16 cycles).

use burst_sim::experiments::fig1;

fn main() {
    println!("=== Figure 1: memory access scheduling example (2-2-2 device, burst length 4)\n");
    let (in_order, out_of_order) = fig1();
    println!("In order, no interleaving (Fig 1a): {in_order} memory cycles (paper: 28)");
    println!("Out of order, interleaved  (Fig 1b): {out_of_order} memory cycles (paper: 16)");
    let speedup = in_order as f64 / out_of_order as f64;
    println!("Speedup from reordering + interleaving: {speedup:.2}x (paper: 1.75x)");
}
