//! Runs every table/figure regenerator in sequence — the full evaluation.
//!
//! Cells run under the sweep supervisor: a panicking, stalling or wedged
//! `(benchmark, mechanism)` cell is retried, then recorded in the failure
//! taxonomy instead of aborting the run, and the exit status is nonzero
//! whenever any cell stayed unrecovered. With `--journal FILE` every
//! completed cell is fsynced to an append-only journal; after a crash,
//! `--resume FILE` restores the completed cells and produces byte-identical
//! CSVs to an uninterrupted run.
//!
//! ```text
//! cargo run --release -p burst-bench --bin all -- --instructions 120000 --jobs 8
//! cargo run --release -p burst-bench --bin all -- --csv out --journal run.journal
//! cargo run --release -p burst-bench --bin all -- --csv out --resume run.journal
//! ```

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_dram::TimingParams;
use burst_sim::experiments::{
    fig1, fig12_mechanisms, fig12_supervised, fig8_mechanisms, outstanding_supervised, table1,
    Sweep,
};
use burst_sim::export;
use burst_sim::report::{
    render_fig10, render_fig12, render_fig7, render_fig9, render_outstanding, render_table1,
};
use burst_workloads::SpecBenchmark;

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(120_000);
    let base = opts.system_config();
    let sup = opts.supervisor_config();
    if let Some(code) = opts.oracle_gate(&Mechanism::all_paper()) {
        return code;
    }
    let journal = opts.open_journal();
    let ckpt = opts.checkpoint_plan();
    let mut ledger = FailureLedger::new();

    println!("=== Table 1: possible SDRAM access latencies (DDR2 PC2-6400)\n");
    println!("{}", render_table1(&table1(&TimingParams::ddr2_pc2_6400())));

    println!("=== Figure 1: scheduling example");
    let (in_order, ooo) = fig1();
    println!("in-order non-interleaved: {in_order} cycles (paper 28); out-of-order: {ooo} cycles (paper 16)\n");

    // One shared sweep powers Figures 7, 9 and 10.
    println!(
        "{}",
        banner("Sweep", "all benchmarks x all mechanisms", &opts)
    );
    let sweep = ledger.absorb(Sweep::run_supervised(
        "sweep",
        &base,
        &opts.benchmarks,
        &Mechanism::all_paper(),
        opts.run,
        opts.seed,
        opts.jobs,
        &sup,
        journal.as_ref(),
        ckpt.as_ref(),
    ));

    println!("=== Figure 7: access latency (memory cycles)\n");
    println!("{}", render_fig7(&sweep.fig7_rows()));
    opts.dump_csv("fig7.csv", &export::fig7_to_csv(&sweep.fig7_rows()));

    println!("=== Figure 9: row states and bus utilisation\n");
    println!("{}", render_fig9(&sweep.fig9_rows()));
    opts.dump_csv("fig9.csv", &export::fig9_to_csv(&sweep.fig9_rows()));

    println!("=== Figure 10: normalised execution time\n");
    match render_fig10(&sweep.fig10_rows(), &sweep.fig10_average()) {
        Ok(table) => println!("{table}"),
        Err(e) => eprintln!("warning: {e}"),
    }
    match export::fig10_to_csv(&sweep.fig10_rows()) {
        Ok(content) => opts.dump_csv("fig10.csv", &content),
        Err(e) => eprintln!("warning: {e}"),
    }
    opts.dump_csv("sweep.csv", &export::sweep_to_csv(&sweep));

    println!("=== Figure 8: outstanding accesses, swim\n");
    let f8 = ledger.absorb(outstanding_supervised(
        "fig8",
        &base,
        SpecBenchmark::Swim,
        &fig8_mechanisms(),
        opts.run,
        opts.seed,
        opts.jobs,
        &sup,
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_outstanding(&f8));
    opts.dump_csv("fig8.csv", &export::outstanding_to_csv(&f8));

    println!("=== Figure 11: outstanding accesses vs threshold, swim\n");
    let f11 = ledger.absorb(outstanding_supervised(
        "fig11",
        &base,
        SpecBenchmark::Swim,
        &fig12_mechanisms(),
        opts.run,
        opts.seed,
        opts.jobs,
        &sup,
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_outstanding(&f11));
    opts.dump_csv("fig11.csv", &export::outstanding_to_csv(&f11));

    println!("=== Figure 12: threshold sweep\n");
    let f12 = ledger.absorb(fig12_supervised(
        &base,
        &opts.benchmarks,
        opts.run,
        opts.seed,
        opts.jobs,
        &sup,
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    println!("{}", render_fig12(&f12));
    opts.dump_csv("fig12.csv", &export::fig12_to_csv(&f12));

    // The salvage account of the whole run: every main-sweep cell that
    // completed plus every failure from any grid, machine-readable.
    opts.dump_csv(
        "salvage.csv",
        &export::salvage_to_csv(&sweep, ledger.failures()),
    );

    if let Some(dir) = &opts.csv {
        println!("CSV results written to {}", dir.display());
    }
    ledger.finish()
}
