//! Regenerates Figure 10: execution time of each benchmark under each
//! access reordering mechanism, normalised to BkInOrder.

use std::process::ExitCode;

use burst_bench::{banner, FailureLedger, HarnessOptions};
use burst_core::Mechanism;
use burst_sim::experiments::Sweep;
use burst_sim::report::render_fig10;

fn main() -> ExitCode {
    let opts = HarnessOptions::from_args(120_000);
    println!(
        "{}",
        banner("Figure 10", "normalized execution time", &opts)
    );
    if let Some(code) = opts.oracle_gate(&Mechanism::all_paper()) {
        return code;
    }
    let journal = opts.open_journal();
    let ckpt = opts.checkpoint_plan();
    let mut ledger = FailureLedger::new();
    let sweep = ledger.absorb(Sweep::run_supervised(
        "sweep",
        &opts.system_config(),
        &opts.benchmarks,
        &Mechanism::all_paper(),
        opts.run,
        opts.seed,
        opts.jobs,
        &opts.supervisor_config(),
        journal.as_ref(),
        ckpt.as_ref(),
    ));
    match render_fig10(&sweep.fig10_rows(), &sweep.fig10_average()) {
        Ok(table) => println!("{table}"),
        Err(e) => eprintln!("warning: {e}"),
    }
    println!(
        "Paper averages: RowHit 0.83, Intel 0.88, Intel_RP 0.85, Burst 0.86,\n\
         Burst_WP 0.81, Burst_TH52 0.79 (21% reduction; 6% over RowHit, 11% over Intel)."
    );
    ledger.finish()
}
