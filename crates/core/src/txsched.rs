//! Transaction selection strategies, including the paper's Table 2
//! priority table.
//!
//! Every cycle, each mechanism picks at most one unblocked transaction per
//! channel from the banks' ongoing accesses. Burst scheduling uses the
//! static priority table (Table 2); BkInOrder and RowHit use inter-bank
//! round-robin; Intel's scheduler finishes started accesses first.

use crate::engine::Candidate;
use burst_dram::Command;

/// Priority classes of the paper's Table 2 (1 = highest, 8 = lowest).
///
/// Column accesses in the rank last used keep the data bus streaming
/// (priorities 1–4, reads before writes); precharges and activates overlap
/// with data transfers (5–6); column accesses that would switch ranks pay
/// the rank-to-rank turnaround and come last (7–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PriorityTable;

impl PriorityTable {
    /// The Table 2 priority of a candidate transaction given the bank and
    /// rank of the last scheduled access. Lower is more urgent.
    pub fn priority(cand: &Candidate, last_bank: Option<usize>, last_rank: Option<u8>) -> u8 {
        let same_bank = last_bank == Some(cand.bank);
        // With no history yet, treat the first transaction as same-rank:
        // there is no turnaround to avoid.
        let same_rank = match last_rank {
            Some(r) => r == cand.loc.rank,
            None => true,
        };
        let is_read = cand.kind.is_read();
        match cand.cmd {
            Command::Column { .. } => match (is_read, same_bank, same_rank) {
                (true, true, _) => 1,
                (true, false, true) => 2,
                (false, true, _) => 3,
                (false, false, true) => 4,
                (true, false, false) => 7,
                (false, false, false) => 8,
            },
            Command::Activate(_) | Command::Precharge(_) => {
                if is_read {
                    5
                } else {
                    6
                }
            }
            Command::RefreshAll { .. } => 0,
        }
    }
}

/// Burst scheduling's transaction scheduler (paper Figure 6): select the
/// unblocked transaction with the best Table 2 priority, breaking ties
/// oldest-first.
pub fn select_table2(
    cands: &[Candidate],
    last_bank: Option<usize>,
    last_rank: Option<u8>,
) -> Option<Candidate> {
    // Watchdog-escalated accesses outrank the whole table: bounded worst
    // case beats streaming preference once an access is already starved.
    cands
        .iter()
        .min_by_key(|c| {
            (
                !c.escalated,
                PriorityTable::priority(c, last_bank, last_rank),
                c.arrival,
                c.id,
            )
        })
        .copied()
}

/// Round-robin selection across banks (BkInOrder and RowHit): chooses the
/// first candidate at or after `*next_bank` in cyclic bank order within
/// `bank_range`, then advances the pointer past it.
pub fn select_round_robin(
    cands: &[Candidate],
    next_bank: &mut usize,
    bank_range: core::ops::Range<usize>,
) -> Option<Candidate> {
    select_round_robin_limited(cands, next_bank, bank_range, usize::MAX)
}

/// Round-robin selection with limited lookahead, as conventional
/// controllers implement it: scan at most `lookahead` banks holding
/// candidates (in cyclic order from the pointer) and issue the first
/// unblocked one. If every inspected candidate is blocked, the cycle is
/// wasted — the "bubble cycles" the paper attributes to schedulers that
/// ignore SDRAM timing constraints. Pass `cands` including blocked
/// candidates (see [`crate::engine::Core::fill_all_candidates`]).
pub fn select_round_robin_limited(
    cands: &[Candidate],
    next_bank: &mut usize,
    bank_range: core::ops::Range<usize>,
    lookahead: usize,
) -> Option<Candidate> {
    if cands.is_empty() {
        return None;
    }
    let len = bank_range.end - bank_range.start;
    let start = bank_range.start;
    let pointer = (*next_bank).clamp(start, bank_range.end - 1);
    let key = |bank: usize| (bank + len - pointer) % len;
    let mut ordered: Vec<&Candidate> = cands.iter().collect();
    ordered.sort_by_key(|c| (!c.escalated, key(c.bank), c.arrival, c.id));
    let chosen = ordered
        .into_iter()
        .take(lookahead.max(1))
        .find(|c| c.unblocked)
        .copied();
    if let Some(c) = &chosen {
        *next_bank = if c.bank + 1 >= bank_range.end {
            start
        } else {
            c.bank + 1
        };
    }
    chosen
}

/// Intel's selection: started accesses get the highest priority so they
/// finish as quickly as possible (reducing the degree of reordering);
/// otherwise oldest first, reads before writes on ties.
pub fn select_intel(cands: &[Candidate]) -> Option<Candidate> {
    select_intel_limited(cands, usize::MAX)
}

/// Intel's selection with limited lookahead: only the first `lookahead`
/// accesses in priority order are considered; if all of them are blocked
/// the cycle bubbles.
pub fn select_intel_limited(cands: &[Candidate], lookahead: usize) -> Option<Candidate> {
    let mut ordered: Vec<&Candidate> = cands.iter().collect();
    ordered.sort_by_key(|c| (!c.escalated, !c.started, c.arrival, !c.kind.is_read(), c.id));
    ordered
        .into_iter()
        .take(lookahead.max(1))
        .find(|c| c.unblocked)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessId, AccessKind};
    use burst_dram::{Cycle, Loc};

    fn cand(
        bank: usize,
        rank: u8,
        kind: AccessKind,
        cmd: Command,
        arrival: Cycle,
        id: u64,
        started: bool,
    ) -> Candidate {
        let loc = Loc::new(0, rank, bank as u8, 0, 0);
        Candidate {
            bank,
            cmd,
            loc,
            kind,
            arrival,
            id: AccessId::new(id),
            started,
            unblocked: true,
            escalated: false,
        }
    }

    fn col(loc_rank: u8, bank: usize) -> Command {
        Command::read(Loc::new(0, loc_rank, bank as u8, 0, 0))
    }

    #[test]
    fn table2_read_column_same_bank_wins() {
        let read_same_bank = cand(3, 0, AccessKind::Read, col(0, 3), 10, 1, true);
        let read_same_rank = cand(4, 0, AccessKind::Read, col(0, 4), 1, 2, true);
        let picked = select_table2(&[read_same_rank, read_same_bank], Some(3), Some(0)).unwrap();
        assert_eq!(
            picked.bank, 3,
            "same-bank column beats older same-rank column"
        );
    }

    #[test]
    fn table2_read_column_beats_write_column() {
        let w = cand(
            1,
            0,
            AccessKind::Write,
            Command::write(Loc::new(0, 0, 1, 0, 0)),
            0,
            1,
            true,
        );
        let r = cand(2, 0, AccessKind::Read, col(0, 2), 5, 2, true);
        let picked = select_table2(&[w, r], None, Some(0)).unwrap();
        assert_eq!(picked.bank, 2);
    }

    #[test]
    fn table2_pre_act_beats_other_rank_column() {
        let other_rank_col = cand(8, 1, AccessKind::Read, col(1, 8), 0, 1, true);
        let act = cand(
            2,
            0,
            AccessKind::Read,
            Command::Activate(Loc::new(0, 0, 2, 0, 0)),
            5,
            2,
            false,
        );
        let picked = select_table2(&[other_rank_col, act], Some(1), Some(0)).unwrap();
        assert_eq!(
            picked.bank, 2,
            "activate (5) beats other-rank read column (7)"
        );
    }

    #[test]
    fn table2_other_rank_column_still_selectable() {
        let other_rank_col = cand(8, 1, AccessKind::Read, col(1, 8), 0, 1, true);
        let picked = select_table2(&[other_rank_col], Some(1), Some(0)).unwrap();
        assert_eq!(picked.bank, 8);
    }

    #[test]
    fn table2_oldest_breaks_ties() {
        let a = cand(1, 0, AccessKind::Read, col(0, 1), 10, 10, true);
        let b = cand(2, 0, AccessKind::Read, col(0, 2), 5, 11, true);
        let picked = select_table2(&[a, b], None, Some(0)).unwrap();
        assert_eq!(picked.bank, 2, "same priority: older access first");
    }

    #[test]
    fn table2_priorities_match_paper() {
        let lb = Some(1usize);
        let lr = Some(0u8);
        let rc_same_bank = cand(1, 0, AccessKind::Read, col(0, 1), 0, 1, true);
        let rc_same_rank = cand(2, 0, AccessKind::Read, col(0, 2), 0, 2, true);
        let wc_same_bank = cand(
            1,
            0,
            AccessKind::Write,
            Command::write(Loc::new(0, 0, 1, 0, 0)),
            0,
            3,
            true,
        );
        let wc_same_rank = cand(
            2,
            0,
            AccessKind::Write,
            Command::write(Loc::new(0, 0, 2, 0, 0)),
            0,
            4,
            true,
        );
        let r_act = cand(
            2,
            0,
            AccessKind::Read,
            Command::Activate(Loc::new(0, 0, 2, 0, 0)),
            0,
            5,
            false,
        );
        let w_pre = cand(
            2,
            0,
            AccessKind::Write,
            Command::Precharge(Loc::new(0, 0, 2, 0, 0)),
            0,
            6,
            false,
        );
        let rc_other = cand(8, 1, AccessKind::Read, col(1, 8), 0, 7, true);
        let wc_other = cand(
            8,
            1,
            AccessKind::Write,
            Command::write(Loc::new(0, 1, 0, 0, 0)),
            0,
            8,
            true,
        );
        let prios: Vec<u8> = [
            rc_same_bank,
            rc_same_rank,
            wc_same_bank,
            wc_same_rank,
            r_act,
            w_pre,
            rc_other,
            wc_other,
        ]
        .iter()
        .map(|c| PriorityTable::priority(c, lb, lr))
        .collect();
        assert_eq!(prios, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn round_robin_cycles_through_banks() {
        let mk = |bank: usize, id: u64| cand(bank, 0, AccessKind::Read, col(0, bank), 0, id, true);
        let cands = [mk(0, 1), mk(2, 2), mk(3, 3)];
        let mut ptr = 0usize;
        let first = select_round_robin(&cands, &mut ptr, 0..4).unwrap();
        assert_eq!(first.bank, 0);
        assert_eq!(ptr, 1);
        let second = select_round_robin(&cands, &mut ptr, 0..4).unwrap();
        assert_eq!(second.bank, 2, "pointer at 1: next available bank is 2");
        let third = select_round_robin(&cands, &mut ptr, 0..4).unwrap();
        assert_eq!(third.bank, 3);
        // Wraps around.
        let fourth = select_round_robin(&cands, &mut ptr, 0..4).unwrap();
        assert_eq!(fourth.bank, 0);
    }

    #[test]
    fn round_robin_empty_is_none() {
        let mut ptr = 0usize;
        assert!(select_round_robin(&[], &mut ptr, 0..4).is_none());
    }

    #[test]
    fn escalated_candidate_outranks_the_whole_table() {
        // Lowest Table 2 priority (other-rank write column, 8) but
        // escalated: it must beat the same-bank read column (priority 1).
        let best = cand(1, 0, AccessKind::Read, col(0, 1), 0, 1, true);
        let mut starved = cand(
            8,
            1,
            AccessKind::Write,
            Command::write(Loc::new(0, 1, 0, 0, 0)),
            0,
            2,
            true,
        );
        starved.escalated = true;
        let picked = select_table2(&[best, starved], Some(1), Some(0)).unwrap();
        assert_eq!(picked.bank, 8, "escalated access gets top priority");
        let intel_picked = select_intel(&[best, starved]).unwrap();
        assert_eq!(intel_picked.bank, 8);
        let mut ptr = 0usize;
        let rr = select_round_robin(&[best, starved], &mut ptr, 0..16).unwrap();
        assert_eq!(rr.bank, 8, "round robin also serves escalated first");
    }

    #[test]
    fn intel_prefers_started_then_oldest() {
        let started_new = cand(0, 0, AccessKind::Read, col(0, 0), 100, 3, true);
        let unstarted_old = cand(1, 0, AccessKind::Read, col(0, 1), 1, 1, false);
        let picked = select_intel(&[unstarted_old, started_new]).unwrap();
        assert_eq!(picked.bank, 0, "started access finishes first");
        let picked2 = select_intel(&[unstarted_old]).unwrap();
        assert_eq!(picked2.bank, 1);
    }
}
