//! # burst-core
//!
//! Memory-access reordering mechanisms from *"A Burst Scheduling Access
//! Reordering Mechanism"* (Shao & Davis, HPCA 2007): the proposed burst
//! scheduler with read preemption, write piggybacking and the static
//! threshold, plus the three mechanisms it is compared against
//! (`BkInOrder`, `RowHit`, Intel's patented out-of-order scheduler).
//!
//! A scheduler owns the controller-side queues (access pool, per-bank read
//! and write queues, bursts) and drives a [`burst_dram::Dram`] device one
//! transaction per channel per cycle.
//!
//! ## Example
//!
//! ```
//! use burst_core::{Access, AccessId, AccessKind, AccessScheduler, CtrlConfig, Mechanism};
//! use burst_dram::{AddressMapping, Dram, DramConfig, PhysAddr};
//!
//! let cfg = DramConfig::baseline();
//! let mut dram = Dram::new(cfg, AddressMapping::PageInterleaving);
//! let mut sched = Mechanism::BurstTh(52).build(CtrlConfig::default(), cfg.geometry);
//!
//! let mut done = Vec::new();
//! for i in 0..8u64 {
//!     let addr = PhysAddr::new(i * 64);
//!     let a = Access::new(AccessId::new(i), AccessKind::Read, addr, dram.decode(addr), 0);
//!     sched.enqueue(a, 0, &mut done);
//! }
//! for now in 0..300 {
//!     sched.tick(&mut dram, now, &mut done);
//! }
//! assert_eq!(done.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod engine;
mod faults;
mod mechanisms;
mod stats;
pub mod txsched;
mod watchdog;

pub use access::{Access, AccessId, AccessKind, Completion, EnqueueOutcome, Outstanding};
pub use faults::{splitmix64, FaultConfig, TransientFaultPlan};
pub use mechanisms::{
    AccessScheduler, AdaptiveHistoryScheduler, BkInOrderScheduler, BurstOptions, BurstScheduler,
    IntelScheduler, Mechanism, RowHitScheduler,
};
pub use stats::{CtrlStats, LatencyHistogram, OccupancyHistogram};
pub use watchdog::{StallDiagnostic, WatchdogConfig};

use burst_dram::RowPolicy;

/// Memory-controller configuration (paper Table 3: a 256-entry access pool
/// holding at most 64 writes, open-page row policy), plus the robustness
/// layer's knobs (watchdog thresholds, optional fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtrlConfig {
    /// Total outstanding accesses the controller holds (reads + writes).
    pub pool_capacity: usize,
    /// Maximum queued writes (the write queue / write data pool size).
    pub write_capacity: usize,
    /// Static row-management policy.
    pub row_policy: RowPolicy,
    /// Starvation-watchdog thresholds (defaults are paper-neutral).
    pub watchdog: WatchdogConfig,
    /// Deterministic fault injection; `None` disables it (the default).
    pub faults: Option<FaultConfig>,
    /// Occupancy-sampling interval in memory cycles. 1 (the default)
    /// samples every cycle, exactly reproducing the paper's Figure 8/11
    /// distributions; larger intervals trade histogram resolution for
    /// simulation speed (the cycle counter itself always advances every
    /// tick). 0 is treated as 1.
    pub sample_interval: u32,
}

impl CtrlConfig {
    /// The paper's baseline: pool of 256 with at most 64 writes, open page,
    /// watchdog at its paper-neutral defaults, no fault injection.
    pub fn baseline() -> Self {
        CtrlConfig {
            pool_capacity: 256,
            write_capacity: 64,
            row_policy: RowPolicy::OpenPage,
            watchdog: WatchdogConfig::baseline(),
            faults: None,
            sample_interval: 1,
        }
    }

    /// Sets the occupancy-sampling interval (see
    /// [`CtrlConfig::sample_interval`]).
    pub fn with_sample_interval(mut self, interval: u32) -> Self {
        self.sample_interval = interval;
        self
    }
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_matches_table3() {
        let c = CtrlConfig::baseline();
        assert_eq!(c.pool_capacity, 256);
        assert_eq!(c.write_capacity, 64);
        assert_eq!(c.row_policy, RowPolicy::OpenPage);
        assert_eq!(c.watchdog, WatchdogConfig::baseline());
        assert_eq!(c.faults, None, "fault injection is opt-in");
        assert_eq!(
            c.sample_interval, 1,
            "per-cycle sampling reproduces the paper"
        );
        assert_eq!(CtrlConfig::default(), c);
    }
}
