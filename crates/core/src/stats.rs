//! Controller-side statistics: latencies, row-state mix, occupancy
//! distributions and write-queue saturation (paper Figures 7, 8, 9a, 11).

use burst_dram::{Cycle, RowState};

/// Histogram of "how often were exactly N accesses outstanding", sampled
/// once per memory cycle — the quantity Figures 8 and 11 plot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyHistogram {
    counts: Vec<u64>,
    samples: u64,
}

impl OccupancyHistogram {
    /// Creates a histogram able to count occupancies `0..=max`.
    pub fn new(max: usize) -> Self {
        OccupancyHistogram {
            counts: vec![0; max + 1],
            samples: 0,
        }
    }

    /// Records one cycle with `n` accesses outstanding (saturating at the
    /// histogram's maximum bucket).
    pub fn record(&mut self, n: usize) {
        let idx = n.min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.samples += 1;
    }

    /// Records `k` cycles with `n` accesses outstanding in one step —
    /// exactly equivalent to calling [`OccupancyHistogram::record`] `k`
    /// times, used by the cycle-skipping batch advance.
    pub fn record_n(&mut self, n: usize, k: u64) {
        let idx = n.min(self.counts.len() - 1);
        self.counts[idx] += k;
        self.samples += k;
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Fraction of time exactly `n` accesses were outstanding.
    pub fn fraction(&self, n: usize) -> f64 {
        if self.samples == 0 || n >= self.counts.len() {
            0.0
        } else {
            self.counts[n] as f64 / self.samples as f64
        }
    }

    /// Fraction of time at least `n` accesses were outstanding.
    pub fn fraction_at_least(&self, n: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let total: u64 = self.counts[n.min(self.counts.len() - 1)..].iter().sum();
        total as f64 / self.samples as f64
    }

    /// Mean occupancy.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        sum as f64 / self.samples as f64
    }

    /// The occupancy with the most samples (mode).
    pub fn peak(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Raw per-occupancy fractions, index = occupancy.
    pub fn fractions(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.fraction(i)).collect()
    }

    /// Raw per-occupancy sample counts, index = occupancy.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from raw parts, exactly inverting
    /// [`OccupancyHistogram::counts`] and [`OccupancyHistogram::samples`].
    /// Used by the sweep journal to round-trip completed cells losslessly.
    pub fn from_raw(counts: Vec<u64>, samples: u64) -> Self {
        OccupancyHistogram { counts, samples }
    }

    /// Serialises the histogram for a checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        w.usize(self.counts.len());
        for &c in &self.counts {
            w.u64(c);
        }
        w.u64(self.samples);
    }

    /// Restores state written by [`OccupancyHistogram::save_snap`] into a
    /// histogram of the same bucket count (set by the pool capacity).
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        if r.seq_len(8)? != self.counts.len() {
            return Err(burst_snap::SnapError::Corrupt(
                "occupancy bucket count mismatch",
            ));
        }
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        self.samples = r.u64()?;
        Ok(())
    }
}

/// Log-scaled latency histogram with percentile queries.
///
/// Buckets are powers of two (0, 1, 2-3, 4-7, ...), which keeps the
/// structure tiny while resolving percentiles to within a factor of two —
/// enough to compare scheduling mechanisms' tails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
    max: Cycle,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; 32],
            count: 0,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycle) {
        let idx = if latency == 0 {
            0
        } else {
            (64 - latency.leading_zeros()) as usize
        };
        self.buckets[idx.min(31)] += 1;
        self.count += 1;
        self.max = self.max.max(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> Cycle {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i == 0 {
                    0
                } else {
                    (1u64 << i).saturating_sub(1).min(self.max)
                };
            }
        }
        self.max
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> Cycle {
        self.quantile(0.50)
    }

    /// 95th-percentile latency (bucket upper bound).
    pub fn p95(&self) -> Cycle {
        self.quantile(0.95)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99(&self) -> Cycle {
        self.quantile(0.99)
    }

    /// Raw power-of-two bucket counts.
    pub fn buckets(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw parts, exactly inverting
    /// [`LatencyHistogram::buckets`], [`LatencyHistogram::count`] and
    /// [`LatencyHistogram::max`]. Used by the sweep journal to round-trip
    /// completed cells losslessly.
    pub fn from_raw(buckets: [u64; 32], count: u64, max: Cycle) -> Self {
        LatencyHistogram {
            buckets,
            count,
            max,
        }
    }

    /// Serialises the histogram for a checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.count);
        w.u64(self.max);
    }

    /// Restores state written by [`LatencyHistogram::save_snap`].
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        for b in &mut self.buckets {
            *b = r.u64()?;
        }
        self.count = r.u64()?;
        self.max = r.u64()?;
        Ok(())
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Aggregate controller statistics for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlStats {
    /// Reads completed (including forwarded).
    pub reads_done: u64,
    /// Writes drained to the device.
    pub writes_done: u64,
    /// Reads satisfied by write-queue forwarding.
    pub forwards: u64,
    /// Sum of read latencies (arrival to data end), memory cycles.
    pub read_latency_sum: u64,
    /// Sum of write latencies (arrival to data end), memory cycles.
    pub write_latency_sum: u64,
    /// Accesses that started as row hits.
    pub row_hits: u64,
    /// Accesses that started as row empties.
    pub row_empties: u64,
    /// Accesses that started as row conflicts.
    pub row_conflicts: u64,
    /// Cycles sampled.
    pub cycles: u64,
    /// Cycles on which the write queue was saturated (at capacity).
    pub write_saturated_cycles: u64,
    /// Reads preempting ongoing writes (burst/Intel RP variants).
    pub preemptions: u64,
    /// Writes piggybacked onto burst ends (burst WP/TH variants).
    pub piggybacks: u64,
    /// Faults injected by the deterministic fault injector.
    pub faults_injected: u64,
    /// Accesses re-executed after an injected fault.
    pub retries: u64,
    /// Accesses escalated by the starvation watchdog (served oldest-first
    /// after exceeding the escalation age).
    pub escalations: u64,
    /// Forward-progress stalls latched by the watchdog.
    pub watchdog_trips: u64,
    /// Largest observed access age (arrival to completion, or to the
    /// current cycle for still-outstanding accesses), in memory cycles.
    pub max_access_age: u64,
    /// Distribution of outstanding reads (Figures 8a / 11a).
    pub outstanding_reads: OccupancyHistogram,
    /// Distribution of outstanding writes (Figures 8b / 11b).
    pub outstanding_writes: OccupancyHistogram,
    /// Read-latency distribution (tail analysis beyond the paper's means).
    pub read_latencies: LatencyHistogram,
    /// Write-latency distribution.
    pub write_latencies: LatencyHistogram,
}

impl CtrlStats {
    /// Creates zeroed statistics; histograms sized for `pool_capacity`.
    pub fn new(pool_capacity: usize) -> Self {
        CtrlStats {
            reads_done: 0,
            writes_done: 0,
            forwards: 0,
            read_latency_sum: 0,
            write_latency_sum: 0,
            row_hits: 0,
            row_empties: 0,
            row_conflicts: 0,
            cycles: 0,
            write_saturated_cycles: 0,
            preemptions: 0,
            piggybacks: 0,
            faults_injected: 0,
            retries: 0,
            escalations: 0,
            watchdog_trips: 0,
            max_access_age: 0,
            outstanding_reads: OccupancyHistogram::new(pool_capacity),
            outstanding_writes: OccupancyHistogram::new(pool_capacity),
            read_latencies: LatencyHistogram::new(),
            write_latencies: LatencyHistogram::new(),
        }
    }

    /// Records the row-state classification of an access that just became
    /// ongoing.
    pub fn classify(&mut self, state: RowState) {
        match state {
            RowState::Hit => self.row_hits += 1,
            RowState::Empty => self.row_empties += 1,
            RowState::Conflict => self.row_conflicts += 1,
        }
    }

    /// Records a completed read of latency `lat`.
    pub fn read_done(&mut self, lat: Cycle) {
        self.reads_done += 1;
        self.read_latency_sum += lat;
        self.read_latencies.record(lat);
    }

    /// Records a drained write of latency `lat`.
    pub fn write_done(&mut self, lat: Cycle) {
        self.writes_done += 1;
        self.write_latency_sum += lat;
        self.write_latencies.record(lat);
    }

    /// Samples per-cycle occupancy (advances the cycle counter and records
    /// one occupancy sample — the every-cycle special case of
    /// interval-based sampling).
    pub fn sample(&mut self, reads: usize, writes: usize, write_capacity: usize) {
        self.cycles += 1;
        self.record_occupancy(reads, writes, write_capacity);
    }

    /// Records one occupancy sample without advancing the cycle counter.
    /// With interval-based sampling (see `CtrlConfig::sample_interval`) the
    /// cycle counter advances every tick while occupancy is recorded only
    /// on sampled ticks; saturation is judged against the sampled
    /// population, so its rate stays a fraction of observed cycles.
    pub fn record_occupancy(&mut self, reads: usize, writes: usize, write_capacity: usize) {
        self.outstanding_reads.record(reads);
        self.outstanding_writes.record(writes);
        if writes >= write_capacity {
            self.write_saturated_cycles += 1;
        }
    }

    /// Records `k` identical occupancy samples in one step — equivalent to
    /// `k` calls to [`CtrlStats::record_occupancy`] with the same
    /// arguments. Used by the cycle-skipping batch advance, where every
    /// skipped cycle would have sampled the same (unchanging) occupancy.
    pub fn record_occupancy_n(
        &mut self,
        reads: usize,
        writes: usize,
        write_capacity: usize,
        k: u64,
    ) {
        self.outstanding_reads.record_n(reads, k);
        self.outstanding_writes.record_n(writes, k);
        if writes >= write_capacity {
            self.write_saturated_cycles += k;
        }
    }

    /// Average read latency in memory cycles (Figure 7a).
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_done as f64
        }
    }

    /// Average write latency in memory cycles (Figure 7b).
    pub fn avg_write_latency(&self) -> f64 {
        if self.writes_done == 0 {
            0.0
        } else {
            self.write_latency_sum as f64 / self.writes_done as f64
        }
    }

    /// Total accesses classified against a bank.
    pub fn classified(&self) -> u64 {
        self.row_hits + self.row_empties + self.row_conflicts
    }

    /// Row-hit fraction of all classified accesses (Figure 9a).
    pub fn row_hit_rate(&self) -> f64 {
        let n = self.classified();
        if n == 0 {
            0.0
        } else {
            self.row_hits as f64 / n as f64
        }
    }

    /// Row-conflict fraction (Figure 9a).
    pub fn row_conflict_rate(&self) -> f64 {
        let n = self.classified();
        if n == 0 {
            0.0
        } else {
            self.row_conflicts as f64 / n as f64
        }
    }

    /// Row-empty fraction (Figure 9a).
    pub fn row_empty_rate(&self) -> f64 {
        let n = self.classified();
        if n == 0 {
            0.0
        } else {
            self.row_empties as f64 / n as f64
        }
    }

    /// Serialises every counter and histogram for a checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        for v in [
            self.reads_done,
            self.writes_done,
            self.forwards,
            self.read_latency_sum,
            self.write_latency_sum,
            self.row_hits,
            self.row_empties,
            self.row_conflicts,
            self.cycles,
            self.write_saturated_cycles,
            self.preemptions,
            self.piggybacks,
            self.faults_injected,
            self.retries,
            self.escalations,
            self.watchdog_trips,
            self.max_access_age,
        ] {
            w.u64(v);
        }
        self.outstanding_reads.save_snap(w);
        self.outstanding_writes.save_snap(w);
        self.read_latencies.save_snap(w);
        self.write_latencies.save_snap(w);
    }

    /// Restores state written by [`CtrlStats::save_snap`] into statistics
    /// built for the same pool capacity.
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        for v in [
            &mut self.reads_done,
            &mut self.writes_done,
            &mut self.forwards,
            &mut self.read_latency_sum,
            &mut self.write_latency_sum,
            &mut self.row_hits,
            &mut self.row_empties,
            &mut self.row_conflicts,
            &mut self.cycles,
            &mut self.write_saturated_cycles,
            &mut self.preemptions,
            &mut self.piggybacks,
            &mut self.faults_injected,
            &mut self.retries,
            &mut self.escalations,
            &mut self.watchdog_trips,
            &mut self.max_access_age,
        ] {
            *v = r.u64()?;
        }
        self.outstanding_reads.load_snap(r)?;
        self.outstanding_writes.load_snap(r)?;
        self.read_latencies.load_snap(r)?;
        self.write_latencies.load_snap(r)?;
        Ok(())
    }

    /// Fraction of sampled cycles the write queue was saturated
    /// (Section 5.1). The denominator is the sampled population, which
    /// equals `cycles` at the default every-cycle sampling interval.
    pub fn write_saturation_rate(&self) -> f64 {
        let samples = self.outstanding_writes.samples();
        if samples == 0 {
            0.0
        } else {
            self.write_saturated_cycles as f64 / samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut h = OccupancyHistogram::new(10);
        for n in [0usize, 1, 1, 2, 5, 10, 15] {
            h.record(n);
        }
        let total: f64 = h.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(h.samples(), 7);
        // 15 saturates into the top bucket.
        assert!(h.fraction(10) > 0.0);
    }

    #[test]
    fn histogram_mean_and_peak() {
        let mut h = OccupancyHistogram::new(10);
        for _ in 0..3 {
            h.record(4);
        }
        h.record(2);
        assert_eq!(h.peak(), 4);
        assert!((h.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_least() {
        let mut h = OccupancyHistogram::new(4);
        h.record(0);
        h.record(2);
        h.record(4);
        h.record(4);
        assert!((h.fraction_at_least(2) - 0.75).abs() < 1e-12);
        assert!((h.fraction_at_least(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_averages() {
        let mut s = CtrlStats::new(16);
        s.read_done(10);
        s.read_done(30);
        s.write_done(100);
        assert!((s.avg_read_latency() - 20.0).abs() < 1e-12);
        assert!((s.avg_write_latency() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn stats_row_rates() {
        let mut s = CtrlStats::new(16);
        s.classify(RowState::Hit);
        s.classify(RowState::Hit);
        s.classify(RowState::Conflict);
        s.classify(RowState::Empty);
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.row_conflict_rate() - 0.25).abs() < 1e-12);
        assert!((s.row_empty_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturation_rate() {
        let mut s = CtrlStats::new(64);
        s.sample(1, 64, 64);
        s.sample(1, 10, 64);
        s.sample(1, 64, 64);
        s.sample(1, 0, 64);
        assert!((s.write_saturation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CtrlStats::new(4);
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.write_saturation_rate(), 0.0);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 100);
        // 100 lands in the 64..127 bucket; the reported bound is capped at
        // the observed max.
        assert_eq!(h.p50(), 100);
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn quantiles_order_monotonically() {
        let mut h = LatencyHistogram::new();
        for lat in [5u64, 10, 10, 20, 40, 80, 160, 320, 640, 1280] {
            h.record(lat);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn tail_separates_from_median() {
        let mut h = LatencyHistogram::new();
        for _ in 0..95 {
            h.record(10);
        }
        for _ in 0..5 {
            h.record(1000);
        }
        assert!(h.p50() < 32, "median bucket covers 10: {}", h.p50());
        assert!(h.p99() >= 512, "p99 must reach the tail: {}", h.p99());
    }

    #[test]
    fn zero_latency_forwarded_reads() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn ctrl_stats_populates_latency_histograms() {
        let mut s = CtrlStats::new(8);
        s.read_done(12);
        s.read_done(300);
        s.write_done(900);
        assert_eq!(s.read_latencies.count(), 2);
        assert_eq!(s.write_latencies.count(), 1);
        assert_eq!(s.read_latencies.max(), 300);
        assert_eq!(s.write_latencies.max(), 900);
    }
}
