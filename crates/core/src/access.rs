//! Memory accesses as seen by the controller.
//!
//! Throughout the paper (and this crate) an *access* is a read or write of
//! one cache line issued by the lowest-level cache; executing it may require
//! several SDRAM transactions depending on device state.

use burst_dram::{Cycle, Loc, PhysAddr};

/// Unique, monotonically increasing identifier of an access.
///
/// Ordering follows issue order, so comparing ids implements the paper's
/// "oldest first" tie-breaks deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AccessId(u64);

impl AccessId {
    /// Wraps a raw id.
    pub fn new(id: u64) -> Self {
        AccessId(id)
    }

    /// The raw id value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for AccessId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Whether an access reads or writes main memory.
///
/// The derived order (`Read < Write`) only serves as a deterministic
/// tie-break when selecting among equally old accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A cache-line fill; the CPU blocks dependants until data returns.
    Read,
    /// A dirty writeback; posted — the CPU never waits for it.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// The data-bus direction this access uses.
    pub fn dir(self) -> burst_dram::Dir {
        match self {
            AccessKind::Read => burst_dram::Dir::Read,
            AccessKind::Write => burst_dram::Dir::Write,
        }
    }
}

impl core::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// One outstanding main-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Unique id, monotone in arrival order.
    pub id: AccessId,
    /// Read or write.
    pub kind: AccessKind,
    /// Cache-line-aligned physical address.
    pub addr: PhysAddr,
    /// Decoded device location.
    pub loc: Loc,
    /// Memory cycle the access entered the controller.
    pub arrival: Cycle,
    /// Criticality hint from the CPU (paper Section 7: with an integrated
    /// controller, "more instruction level information, such as the number
    /// of dependent instructions, is available"). Demand loads with
    /// blocked dependants are critical; store-allocate fills are not.
    /// Only [`crate::Mechanism::BurstCrit`] consults it.
    pub critical: bool,
}

impl Access {
    /// Creates an access record (non-critical by default).
    pub fn new(id: AccessId, kind: AccessKind, addr: PhysAddr, loc: Loc, arrival: Cycle) -> Self {
        Access {
            id,
            kind,
            addr,
            loc,
            arrival,
            critical: false,
        }
    }

    /// Marks the access as latency-critical.
    pub fn with_critical(mut self, critical: bool) -> Self {
        self.critical = critical;
        self
    }

    /// Serialises the access for a checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        w.u64(self.id.value());
        w.u8(match self.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
        w.u64(self.addr.value());
        w.u8(self.loc.channel);
        w.u8(self.loc.rank);
        w.u8(self.loc.bank);
        w.u32(self.loc.row);
        w.u32(self.loc.col);
        w.u64(self.arrival);
        w.bool(self.critical);
    }

    /// Reconstructs an access written by [`Access::save_snap`].
    pub fn load_snap(r: &mut burst_snap::SnapReader) -> Result<Self, burst_snap::SnapError> {
        let id = AccessId::new(r.u64()?);
        let kind = match r.u8()? {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return Err(burst_snap::SnapError::Corrupt("bad access kind")),
        };
        let addr = PhysAddr::new(r.u64()?);
        let loc = Loc::new(r.u8()?, r.u8()?, r.u8()?, r.u32()?, r.u32()?);
        let arrival = r.u64()?;
        let critical = r.bool()?;
        Ok(Access::new(id, kind, addr, loc, arrival).with_critical(critical))
    }
}

/// Result of offering an access to a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnqueueOutcome {
    /// The access was queued and will complete later.
    Queued,
    /// A read hit in the write queue; the latest write's data was forwarded
    /// and the read completes immediately (paper Figure 4, lines 2–4).
    Forwarded,
    /// The controller refused the access: the access pool is full or the
    /// write queue is saturated (the caller ignored
    /// [`crate::AccessScheduler::can_accept`]). The access was *not*
    /// recorded; the caller must hold it and retry later.
    Rejected,
}

/// A finished access reported by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Completion {
    /// The access that finished.
    pub id: AccessId,
    /// Its kind.
    pub kind: AccessKind,
    /// Cycle its data transfer ends (reads: when data is available to the
    /// CPU; writes: when the write has drained to the device).
    pub done_at: Cycle,
    /// Latency in memory cycles from controller arrival to `done_at`.
    pub latency: Cycle,
    /// Whether the read was satisfied by write-queue forwarding.
    pub forwarded: bool,
}

/// Counts of outstanding accesses inside a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Outstanding {
    /// Reads queued or ongoing.
    pub reads: usize,
    /// Writes queued or ongoing.
    pub writes: usize,
}

impl Outstanding {
    /// Total outstanding accesses.
    pub fn total(&self) -> usize {
        self.reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_id_orders_by_issue() {
        assert!(AccessId::new(1) < AccessId::new(2));
        assert_eq!(AccessId::new(7).value(), 7);
        assert_eq!(AccessId::new(7).to_string(), "#7");
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
        assert!(AccessKind::Read.dir().is_read());
        assert!(!AccessKind::Write.dir().is_read());
    }

    #[test]
    fn outstanding_total() {
        let o = Outstanding {
            reads: 3,
            writes: 4,
        };
        assert_eq!(o.total(), 7);
    }
}
