//! Starvation watchdog: per-access ageing, escalation, and forward-progress
//! stall detection.
//!
//! Access reordering mechanisms trade fairness for throughput — writes in
//! particular can wait behind an unbounded read stream (paper Section 5.1).
//! The watchdog bounds that wait: once an access's age exceeds
//! [`WatchdogConfig::escalate_age`] the bank arbiter serves it oldest-first,
//! bypassing row-hit/burst preference, and the transaction scheduler gives
//! its transactions top priority. Independently, if the controller holds
//! outstanding accesses but issues *nothing* for
//! [`WatchdogConfig::stall_limit`] cycles, a structured
//! [`StallDiagnostic`] is latched instead of hanging the simulation.

use crate::AccessId;
use burst_dram::Cycle;

/// Watchdog thresholds, in memory cycles.
///
/// The defaults are far above any latency the paper's mechanisms produce,
/// so paper-fidelity behaviour is unchanged unless a run actually starves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WatchdogConfig {
    /// An access older than this is *escalated*: served oldest-first by the
    /// bank arbiter and prioritised by the transaction scheduler.
    pub escalate_age: Cycle,
    /// With outstanding accesses but no transaction issued (and no arrival)
    /// for this many cycles, the controller latches a [`StallDiagnostic`].
    pub stall_limit: Cycle,
}

impl WatchdogConfig {
    /// Paper-neutral defaults: escalate after 100k cycles, declare a stall
    /// after 1M cycles without progress.
    pub fn baseline() -> Self {
        WatchdogConfig {
            escalate_age: 100_000,
            stall_limit: 1_000_000,
        }
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::baseline()
    }
}

/// A latched forward-progress failure: the controller held outstanding
/// accesses yet issued no transaction for longer than the stall limit.
///
/// Carried as a structured error (not a panic) so harnesses can report the
/// stuck state — which access is oldest, how long nothing has moved — and
/// fail the run cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StallDiagnostic {
    /// Cycle of the last forward progress (issue or arrival).
    pub since: Cycle,
    /// Cycle at which the stall was detected.
    pub at: Cycle,
    /// Outstanding reads at detection time.
    pub reads: usize,
    /// Outstanding writes at detection time.
    pub writes: usize,
    /// The oldest outstanding access, if known.
    pub oldest_id: Option<AccessId>,
    /// Age of the oldest outstanding access at detection time.
    pub oldest_age: Cycle,
    /// FNV-1a digest of the full simulation state at detection time,
    /// stamped by the system layer so stall reports can be correlated with
    /// checkpoints and oracle epochs. Zero when the latching layer has no
    /// hash available (e.g. the bare controller engine).
    pub state_hash: u64,
}

impl StallDiagnostic {
    /// A one-token machine-readable classification of the stuck state,
    /// used by the sweep supervisor's failure taxonomy: `"write-drain"`
    /// when only writes are outstanding, `"read-starve"` when only reads
    /// are, `"mixed"` when both, `"empty"` when neither (a watchdog
    /// misfire, which the taxonomy should make visible rather than hide).
    pub fn stall_class(&self) -> &'static str {
        match (self.reads > 0, self.writes > 0) {
            (true, true) => "mixed",
            (true, false) => "read-starve",
            (false, true) => "write-drain",
            (false, false) => "empty",
        }
    }

    /// Cycles without forward progress when the stall was declared.
    pub fn stuck_for(&self) -> Cycle {
        self.at.saturating_sub(self.since)
    }

    /// Serialises the diagnostic for a checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        w.u64(self.since);
        w.u64(self.at);
        w.usize(self.reads);
        w.usize(self.writes);
        w.opt_u64(self.oldest_id.map(AccessId::value));
        w.u64(self.oldest_age);
        w.u64(self.state_hash);
    }

    /// Reconstructs a diagnostic written by [`StallDiagnostic::save_snap`].
    pub fn load_snap(r: &mut burst_snap::SnapReader) -> Result<Self, burst_snap::SnapError> {
        Ok(StallDiagnostic {
            since: r.u64()?,
            at: r.u64()?,
            reads: r.usize()?,
            writes: r.usize()?,
            oldest_id: r.opt_u64()?.map(AccessId::new),
            oldest_age: r.u64()?,
            state_hash: r.u64()?,
        })
    }
}

impl core::fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "no forward progress since cycle {} (detected at {}): {} reads + {} writes outstanding",
            self.since, self.at, self.reads, self.writes
        )?;
        if let Some(id) = self.oldest_id {
            write!(f, ", oldest access {id} aged {} cycles", self.oldest_age)?;
        }
        if self.state_hash != 0 {
            write!(f, ", state hash {:#018x}", self.state_hash)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_thresholds_are_paper_neutral() {
        let w = WatchdogConfig::baseline();
        assert!(w.escalate_age >= 100_000);
        assert!(w.stall_limit > w.escalate_age);
        assert_eq!(WatchdogConfig::default(), w);
    }

    #[test]
    fn diagnostic_display_names_the_oldest_access() {
        let d = StallDiagnostic {
            since: 10,
            at: 1_000_010,
            reads: 3,
            writes: 1,
            oldest_id: Some(AccessId::new(42)),
            oldest_age: 999_990,
            state_hash: 0xdead_beef_0000_0001,
        };
        let s = d.to_string();
        assert!(s.contains("since cycle 10"), "{s}");
        assert!(s.contains("#42"), "{s}");
        assert!(s.contains("3 reads"), "{s}");
        assert!(s.contains("state hash 0xdeadbeef00000001"), "{s}");
        assert_eq!(d.stall_class(), "mixed");
        assert_eq!(d.stuck_for(), 1_000_000);

        let mut w = burst_snap::SnapWriter::new();
        d.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = burst_snap::SnapReader::new(&bytes);
        let back = StallDiagnostic::load_snap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn stall_class_partitions_by_outstanding_mix() {
        let base = StallDiagnostic {
            since: 0,
            at: 100,
            reads: 0,
            writes: 0,
            oldest_id: None,
            oldest_age: 0,
            state_hash: 0,
        };
        assert_eq!(base.stall_class(), "empty");
        assert_eq!(
            StallDiagnostic { reads: 2, ..base }.stall_class(),
            "read-starve"
        );
        assert_eq!(
            StallDiagnostic { writes: 5, ..base }.stall_class(),
            "write-drain"
        );
    }
}
