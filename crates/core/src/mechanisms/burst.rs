//! Burst scheduling — the paper's proposed mechanism (Section 3).
//!
//! Outstanding reads are clustered into *bursts*: groups of accesses to the
//! same row of the same bank whose data transfers run back to back on the
//! data bus. Each bank's arbiter (Figure 5) selects the ongoing access,
//! prioritising reads, optionally letting reads *preempt* ongoing writes and
//! optionally *piggybacking* row-hit writes at the end of bursts — switched
//! dynamically by a static write-queue-occupancy threshold. The transaction
//! scheduler (Figure 6) issues one transaction per channel per cycle
//! following the static priority table (Table 2).

use std::collections::VecDeque;

use crate::engine::{Candidate, Core};
use crate::txsched::select_table2;
use crate::{
    Access, AccessKind, AccessScheduler, Completion, CtrlConfig, CtrlStats, EnqueueOutcome,
    Mechanism, Outstanding,
};
use burst_dram::{Cycle, Dram, Geometry};

/// Tuning knobs distinguishing the four burst variants of Table 4 plus the
/// dynamic-threshold extension from the paper's future work (Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstOptions {
    /// Read preemption is enabled while global write-queue occupancy is
    /// *below* this value. `0` disables preemption; the write-queue
    /// capacity enables it whenever the queue is not full (`Burst_RP`).
    pub preempt_below: u32,
    /// Write piggybacking is enabled while occupancy is *above* this value.
    /// `None` disables piggybacking; `Some(0)` always allows it
    /// (`Burst_WP`); `Some(t)` is the thresholded `Burst_TH`.
    pub piggyback_above: Option<u32>,
    /// Which Table 4 label these options implement (for reporting).
    pub mechanism: Mechanism,
    /// When set, the threshold is recomputed every this many cycles from
    /// the observed read/write arrival mix (Section 7: "a dynamical
    /// threshold, calculated on the fly based on ... read write ratios").
    /// Write-heavy phases lower the threshold (earlier piggybacking);
    /// read-heavy phases raise it (more preemption headroom).
    pub dynamic_period: Option<burst_dram::Cycle>,
    /// Intra-burst critical-first ordering (Section 7 future work):
    /// critical reads (demand loads with blocked dependants) are placed
    /// ahead of non-critical reads (store-allocate fills) *within* their
    /// burst. The burst's total time is unchanged; critical data returns
    /// sooner.
    pub critical_first: bool,
}

impl BurstOptions {
    /// Options for a static-threshold variant (the four Table 4 entries).
    pub fn static_threshold(
        preempt_below: u32,
        piggyback_above: Option<u32>,
        mechanism: Mechanism,
    ) -> Self {
        BurstOptions {
            preempt_below,
            piggyback_above,
            mechanism,
            dynamic_period: None,
            critical_first: false,
        }
    }
}

/// A burst: accesses to the same row of the same bank, served back to back.
///
/// Bursts within a bank are sorted by the arrival time of their first
/// access, preventing starvation of small bursts (Section 3).
#[derive(Debug, Clone)]
struct Burst {
    row: u32,
    accesses: VecDeque<Access>,
}

/// Per-bank queues: the read queue is a list of bursts; the write queue a
/// FIFO sharing the global pool.
#[derive(Debug, Clone, Default)]
struct BankQueues {
    bursts: VecDeque<Burst>,
    writes: VecDeque<Access>,
    /// True just after a burst's last access issued its column access while
    /// the row is still open — the moment write piggybacking may append
    /// qualified writes.
    at_burst_end: bool,
}

impl BankQueues {
    fn has_reads(&self) -> bool {
        self.bursts.iter().any(|b| !b.accesses.is_empty())
    }
}

/// The burst scheduling access reordering mechanism.
///
/// # Examples
///
/// ```
/// use burst_core::{Access, AccessId, AccessKind, AccessScheduler, CtrlConfig, Mechanism};
/// use burst_dram::{AddressMapping, Dram, DramConfig, PhysAddr};
///
/// let dram_cfg = DramConfig::baseline();
/// let mut dram = Dram::new(dram_cfg, AddressMapping::PageInterleaving);
/// let mut sched = Mechanism::BurstTh(52).build(CtrlConfig::default(), dram_cfg.geometry);
///
/// let addr = PhysAddr::new(0x1000);
/// let access = Access::new(AccessId::new(0), AccessKind::Read, addr, dram.decode(addr), 0);
/// let mut done = Vec::new();
/// sched.enqueue(access, 0, &mut done);
/// for now in 0..100 {
///     sched.tick(&mut dram, now, &mut done);
/// }
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Debug)]
pub struct BurstScheduler {
    core: Core,
    banks: Vec<BankQueues>,
    opts: BurstOptions,
    /// Read/write arrivals in the current adaptation window (dynamic
    /// threshold only).
    window_reads: u64,
    window_writes: u64,
    next_adapt: burst_dram::Cycle,
    /// Bank-arbiter attention bitmap, one bit per global bank: set iff the
    /// arbiter could possibly change the bank's state — the slot is free
    /// and work is queued, or an ongoing write has reads behind it
    /// (preemption). Every global condition the arbiter consults (queue
    /// saturation, no-reads-anywhere, piggyback qualification, escalation
    /// age) still requires that local precondition, so a clear bit proves
    /// the arbiter call is a no-op and the per-cycle loop skips it.
    /// Derived state: rebuilt wholesale after a checkpoint restore.
    // snap: derived(attention bitmap; load_state rebuilds it from the queues)
    attention: Vec<u64>,
    /// Tick-walk subset of `attention`: set iff the arbiter call could
    /// mutate state *under the current global gates* ([`Self::gates`]).
    /// `attention` keeps the gate-free superset the horizon fold needs;
    /// this map additionally folds in the conditions that depend on
    /// global counters — write saturation, no-reads-anywhere, piggyback
    /// qualification, preemption threshold — plus the starvation
    /// deadline, so a bank full of writes stops being visited every tick
    /// while reads elsewhere keep it unservable. Clear-bit proof: every
    /// term that could flip a skipped bank back to actionable either
    /// changes the gate byte (rebuilding the map), arrives with an
    /// enqueue/issue (which re-marks or refreshes the bank), or is the
    /// starvation clock (guarded by `next_escal`).
    // snap: derived(gate-scoped attention; rebuilt lazily after restore)
    act_now: Vec<u64>,
    /// The gate byte every `act_now` bit currently assumes; a mismatch
    /// with the live [`Self::gates`] value triggers a rebuild.
    // snap: derived(act_now cache key; STALE after restore)
    gate_cache: u8,
    /// Earliest cycle a gate-blocked idle write could escalate: rebuild
    /// `act_now` no later than this. Conservative-early (min-folded).
    // snap: derived(act_now rebuild deadline; reset after restore)
    next_escal: Cycle,
    /// Reusable candidate buffer for the per-channel transaction scan.
    // snap: derived(per-tick candidate scratch buffer, cleared before each use)
    scratch: Vec<Candidate>,
}

/// Sentinel `gate_cache` value (never produced by [`BurstScheduler::gates`],
/// which uses only the low four bits): forces an `act_now` rebuild.
const GATES_STALE: u8 = 0xFF;

impl BurstScheduler {
    /// Creates a burst scheduler for a device of the given geometry.
    pub fn new(cfg: CtrlConfig, geom: Geometry, opts: BurstOptions) -> Self {
        let core = Core::new(cfg, geom);
        let nbanks = core.bank_count();
        let next_adapt = opts.dynamic_period.unwrap_or(0);
        BurstScheduler {
            core,
            banks: vec![BankQueues::default(); nbanks],
            opts,
            window_reads: 0,
            window_writes: 0,
            next_adapt,
            attention: vec![0; nbanks.div_ceil(64)],
            act_now: vec![0; nbanks.div_ceil(64)],
            gate_cache: GATES_STALE,
            next_escal: 0,
            scratch: Vec::new(),
        }
    }

    /// The global predicates the bank arbiter consults beyond per-bank
    /// state, packed into one comparable byte: write-queue saturation,
    /// no-reads-anywhere, piggyback qualification and preemption headroom.
    /// `act_now` bits are valid only for the byte they were computed
    /// under.
    fn gates(&self) -> u8 {
        let wg = self.core.writes_outstanding() as u32;
        let mut g = 0u8;
        if wg >= self.core.cfg().write_capacity as u32 {
            g |= 1;
        }
        if self.core.reads_outstanding() == 0 {
            g |= 2;
        }
        if self.opts.piggyback_above.is_some_and(|th| wg > th) {
            g |= 4;
        }
        if wg < self.opts.preempt_below {
            g |= 8;
        }
        g
    }

    /// Recomputes `bank_idx`'s `act_now` bit under the `gate_cache`
    /// assumption. Time-dependent terms are evaluated at `now`; the ones
    /// that can only drift towards "no action" (an eligible preemption
    /// target ageing into escalation immunity) are left conservative-set,
    /// while the one that drifts towards "action" (an idle write crossing
    /// the starvation age) min-folds its firing cycle into `next_escal`.
    fn refresh_act(&mut self, bank_idx: usize, dram: &Dram, now: Cycle) {
        let gates = self.gate_cache;
        let escalate_age = self.core.cfg().watchdog.escalate_age;
        let need = match self.core.ongoing(bank_idx) {
            // Preemption is the only arm that can touch a busy slot.
            Some(og) => {
                og.access.kind == AccessKind::Write
                    && gates & 8 != 0
                    && now.saturating_sub(og.access.arrival) < escalate_age
                    && self.banks[bank_idx].has_reads()
            }
            None => {
                let b = &self.banks[bank_idx];
                if b.has_reads() {
                    // An idle bank with reads always picks one.
                    true
                } else if b.writes.is_empty() {
                    false
                } else if gates & (1 | 2) != 0 {
                    // Saturation drain or no-reads drain.
                    true
                } else if gates & 4 != 0 && b.at_burst_end && {
                    // Piggyback window: acts only when a queued write hits
                    // the open row. Safe to test here rather than keep the
                    // bit conservative-set: an idle bank's open row cannot
                    // drift towards a new match (no ongoing access means no
                    // activates; refresh only closes rows), and a freshly
                    // arrived write re-marks the bank on enqueue.
                    let (ch, rank, bk) = self.core.bank_coords(bank_idx);
                    dram.channel(usize::from(ch))
                        .bank(rank, bk)
                        .open_row()
                        .is_some_and(|row| b.writes.iter().any(|w| w.loc.row == row))
                } {
                    true
                } else {
                    // Writes present but every gate is shut: only the
                    // starvation watchdog can free them, at a known cycle.
                    let esc_at = b.writes.front().expect("non-empty").arrival + escalate_age;
                    if esc_at <= now {
                        true
                    } else {
                        self.next_escal = self.next_escal.min(esc_at);
                        false
                    }
                }
            }
        };
        let (word, mask) = (bank_idx >> 6, 1u64 << (bank_idx & 63));
        if need {
            self.act_now[word] |= mask;
        } else {
            self.act_now[word] &= !mask;
        }
    }

    /// Rebuilds every `act_now` bit for the current `gate_cache` byte and
    /// recomputes the escalation deadline from scratch.
    fn rebuild_act(&mut self, dram: &Dram, now: Cycle) {
        self.next_escal = Cycle::MAX;
        for b in 0..self.banks.len() {
            self.refresh_act(b, dram, now);
        }
    }

    /// Flags `bank_idx` for arbitration (new work arrived).
    fn mark_attention(&mut self, bank_idx: usize) {
        self.attention[bank_idx >> 6] |= 1 << (bank_idx & 63);
        // Conservative: the next visit (or rebuild) recomputes the bit.
        self.act_now[bank_idx >> 6] |= 1 << (bank_idx & 63);
    }

    /// Recomputes `bank_idx`'s attention bit from its slot and queues.
    fn refresh_attention(&mut self, bank_idx: usize) {
        let need = match self.core.ongoing(bank_idx) {
            None => {
                let b = &self.banks[bank_idx];
                b.has_reads() || !b.writes.is_empty()
            }
            Some(og) => og.access.kind == AccessKind::Write && self.banks[bank_idx].has_reads(),
        };
        let (word, mask) = (bank_idx >> 6, 1u64 << (bank_idx & 63));
        if need {
            self.attention[word] |= mask;
        } else {
            self.attention[word] &= !mask;
        }
    }

    /// The threshold currently in effect (static configurations report
    /// their `preempt_below`).
    pub fn current_threshold(&self) -> u32 {
        self.opts.preempt_below
    }

    /// Dynamic-threshold adaptation (Section 7 future work): pick the
    /// threshold proportional to the write share of recent arrivals. A
    /// write-heavy window pulls the threshold down so piggybacking starts
    /// early; a read-heavy window pushes it up so reads may preempt.
    fn adapt_threshold(&mut self, now: burst_dram::Cycle) {
        let Some(period) = self.opts.dynamic_period else {
            return;
        };
        if now < self.next_adapt {
            return;
        }
        self.next_adapt = now + period;
        let total = self.window_reads + self.window_writes;
        if total >= 16 {
            // write_share 0 -> near capacity (all preemption); write_share
            // 0.5+ -> low threshold (aggressive piggybacking).
            //
            // Integer form of `cap * (1 - 1.6 * writes/total)` clamped to
            // `[cap/8, cap - 4]`: scale by the denominator `10 * total`
            // so the arithmetic is exact — no float may feed a scheduling
            // decision. `1.6` is exactly 16/10 here, where the f64 it
            // replaced carried the nearest-double approximation.
            let cap = self.core.cfg().write_capacity as i128;
            let num = cap * (10 * i128::from(total) - 16 * i128::from(self.window_writes));
            let den = 10 * i128::from(total);
            let th = num.div_euclid(den).clamp(cap / 8, cap - 4).max(0) as u32;
            self.opts.preempt_below = th;
            self.opts.piggyback_above = Some(th);
        }
        self.window_reads = 0;
        self.window_writes = 0;
    }

    /// The variant options in effect.
    pub fn options(&self) -> &BurstOptions {
        &self.opts
    }

    /// Pops the first read of the next burst (Figure 5 line 8), discarding
    /// any exhausted bursts at the head of the queue.
    fn pop_next_read(bank: &mut BankQueues) -> Option<Access> {
        while let Some(front) = bank.bursts.front() {
            if front.accesses.is_empty() {
                bank.bursts.pop_front();
            } else {
                break;
            }
        }
        bank.bursts.front_mut()?.accesses.pop_front()
    }

    /// Removes the oldest write in the bank's write queue.
    fn pop_oldest_write(bank: &mut BankQueues) -> Option<Access> {
        bank.writes.pop_front()
    }

    /// Removes the oldest write directed at `row` (qualified for
    /// piggybacking), if any.
    fn pop_row_hit_write(bank: &mut BankQueues, row: u32) -> Option<Access> {
        let idx = bank
            .writes
            .iter()
            .enumerate()
            .filter(|(_, w)| w.loc.row == row)
            .min_by_key(|(_, w)| w.id)
            .map(|(i, _)| i)?;
        bank.writes.remove(idx)
    }

    /// Re-enqueues a faulted access at the very front of its queue: a
    /// retry is the oldest work its bank has.
    fn requeue_front(&mut self, access: Access) {
        let bank_idx = self.core.global_bank(access.loc);
        self.mark_attention(bank_idx);
        let bank = &mut self.banks[bank_idx];
        match access.kind {
            AccessKind::Read => {
                if let Some(front) = bank.bursts.front_mut() {
                    if front.row == access.loc.row {
                        front.accesses.push_front(access);
                        return;
                    }
                }
                bank.bursts.push_front(Burst {
                    row: access.loc.row,
                    accesses: VecDeque::from([access]),
                });
            }
            AccessKind::Write => bank.writes.push_front(access),
        }
    }

    /// The bank arbiter subroutine (Figure 5), run per bank per cycle.
    /// Returns `true` iff it changed any bank or slot state (installed,
    /// preempted or escalated an access); `false` visits leave the queues,
    /// the slot and `at_burst_end` exactly as found.
    fn bank_arbiter(&mut self, bank_idx: usize, dram: &Dram, now: Cycle) -> bool {
        let writes_global = self.core.writes_outstanding() as u32;
        let write_cap = self.core.cfg().write_capacity as u32;

        if let Some(og) = self.core.ongoing(bank_idx) {
            // Figure 5 lines 9-11: read preemption — a waiting read
            // interrupts an ongoing write while occupancy is below the
            // threshold. The preempted write restarts later.
            // An escalated (starvation-aged) write is immune: preempting it
            // would hand the bank straight back to the read stream that
            // starved it, re-starving it indefinitely.
            let preemptable = og.access.kind == AccessKind::Write
                && writes_global < self.opts.preempt_below
                && now.saturating_sub(og.access.arrival) < self.core.cfg().watchdog.escalate_age
                && self.banks[bank_idx].has_reads();
            if preemptable {
                let write = self.core.clear_ongoing(bank_idx).expect("ongoing write");
                self.banks[bank_idx].writes.push_front(write);
                let read = Self::pop_next_read(&mut self.banks[bank_idx]).expect("has_reads");
                self.banks[bank_idx].at_burst_end = false;
                self.core
                    .set_ongoing(bank_idx, read)
                    .expect("slot was just cleared for preemption");
                self.core.stats_mut().preemptions += 1;
            }
            return preemptable;
        }

        // Starvation watchdog: an access past the escalation age bypasses
        // burst formation and piggyback qualification and is served
        // oldest-first — a write starved behind an endless read stream is
        // the canonical case (Section 5.1's pile-up, bounded).
        let escalate_age = self.core.cfg().watchdog.escalate_age;
        {
            let bank = &mut self.banks[bank_idx];
            let oldest_read = bank
                .bursts
                .front()
                .and_then(|b| b.accesses.front())
                .map(|a| (a.arrival, a.kind));
            let oldest_write = bank.writes.front().map(|a| (a.arrival, a.kind));
            if let Some((arrival, kind)) = [oldest_read, oldest_write].into_iter().flatten().min() {
                if now.saturating_sub(arrival) >= escalate_age {
                    let access = match kind {
                        AccessKind::Read => Self::pop_next_read(bank).expect("front read exists"),
                        AccessKind::Write => {
                            Self::pop_oldest_write(bank).expect("front write exists")
                        }
                    };
                    bank.at_burst_end = false;
                    self.core
                        .set_ongoing(bank_idx, access)
                        .expect("bank verified idle before escalation");
                    return true;
                }
            }
        }

        let open_row = {
            let (ch, rank, bk) = self.core.bank_coords(bank_idx);
            dram.channel(usize::from(ch)).bank(rank, bk).open_row()
        };
        let bank = &mut self.banks[bank_idx];

        // Reads are prioritised over writes globally: plain writes drain
        // only when no reads are outstanding anywhere, or when the write
        // queue saturates — which is why Intel and Burst pile up writes
        // (paper Section 5.1) and why write piggybacking exists.
        let no_reads_anywhere = self.core.reads_outstanding() == 0;

        // Figure 5 lines 1-8.
        let mut piggybacked = false;
        let pick: Option<Access> = if writes_global >= write_cap && !bank.writes.is_empty() {
            // Line 2-3: write queue full — drain the oldest write.
            Self::pop_oldest_write(bank)
        } else if let (Some(th), true, Some(row)) =
            (self.opts.piggyback_above, bank.at_burst_end, open_row)
        {
            // Line 4-5: write piggybacking at the end of a burst.
            let qualified = writes_global > th;
            let picked = if qualified {
                Self::pop_row_hit_write(bank, row)
            } else {
                None
            };
            match picked {
                Some(w) => {
                    piggybacked = true;
                    Some(w)
                }
                None => Self::fallthrough_pick(bank, no_reads_anywhere),
            }
        } else {
            Self::fallthrough_pick(bank, no_reads_anywhere)
        };

        if let Some(access) = pick {
            if piggybacked {
                self.core.stats_mut().piggybacks += 1;
            } else {
                // Any non-piggyback pick leaves the burst-end window.
                self.banks[bank_idx].at_burst_end = false;
            }
            self.core
                .set_ongoing(bank_idx, access)
                .expect("bank verified idle at arbiter entry");
            true
        } else {
            false
        }
    }

    /// Figure 5 lines 6-8: the first read of the next burst; the oldest
    /// write only when no reads are outstanding at all.
    fn fallthrough_pick(bank: &mut BankQueues, no_reads_anywhere: bool) -> Option<Access> {
        if bank.has_reads() {
            Self::pop_next_read(bank)
        } else if no_reads_anywhere && !bank.writes.is_empty() {
            Self::pop_oldest_write(bank)
        } else {
            None
        }
    }
}

impl AccessScheduler for BurstScheduler {
    fn mechanism(&self) -> Mechanism {
        self.opts.mechanism
    }

    fn can_accept(&self, kind: AccessKind) -> bool {
        self.core.can_accept(kind)
    }

    fn enqueue(
        &mut self,
        access: Access,
        _now: Cycle,
        completions: &mut Vec<Completion>,
    ) -> EnqueueOutcome {
        if !self.can_accept(access.kind) {
            return EnqueueOutcome::Rejected;
        }
        let bank_idx = self.core.global_bank(access.loc);
        match access.kind {
            AccessKind::Read => {
                // Figure 4 lines 2-4: search the write queue (including an
                // ongoing, not-yet-issued write) for the latest write to the
                // same line and forward its data.
                let queued_hit = self.banks[bank_idx]
                    .writes
                    .iter()
                    .filter(|w| w.addr == access.addr)
                    .max_by_key(|w| w.id)
                    .is_some();
                let ongoing_hit = self
                    .core
                    .ongoing(bank_idx)
                    .map(|o| o.access.kind == AccessKind::Write && o.access.addr == access.addr)
                    .unwrap_or(false);
                if queued_hit || ongoing_hit {
                    self.core.note_forward(&access, _now, completions);
                    return EnqueueOutcome::Forwarded;
                }
                // Figure 4 lines 5-8: join an existing burst or append a new
                // single-access burst at the end of the read queue.
                self.core.note_arrival(&access);
                self.window_reads += 1;
                self.mark_attention(bank_idx);
                let bank = &mut self.banks[bank_idx];
                if let Some(burst) = bank.bursts.iter_mut().find(|b| b.row == access.loc.row) {
                    if self.opts.critical_first && access.critical {
                        // Insert after the last critical read, before any
                        // non-critical fills (stable within each class).
                        let pos = burst
                            .accesses
                            .iter()
                            .position(|a| !a.critical)
                            .unwrap_or(burst.accesses.len());
                        burst.accesses.insert(pos, access);
                    } else {
                        burst.accesses.push_back(access);
                    }
                } else {
                    bank.bursts.push_back(Burst {
                        row: access.loc.row,
                        accesses: VecDeque::from([access]),
                    });
                }
                EnqueueOutcome::Queued
            }
            AccessKind::Write => {
                // Figure 4 lines 9-10: writes enter the write queue in order
                // and complete immediately from the CPU's view.
                self.core.note_arrival(&access);
                self.window_writes += 1;
                self.mark_attention(bank_idx);
                self.banks[bank_idx].writes.push_back(access);
                EnqueueOutcome::Queued
            }
        }
    }

    fn tick(&mut self, dram: &mut Dram, now: Cycle, completions: &mut Vec<Completion>) {
        dram.tick(now);
        self.core.sample();
        self.core.watchdog_tick(now);
        for access in self.core.take_retries() {
            self.requeue_front(access);
        }
        self.adapt_threshold(now);
        for channel in 0..self.core.channel_count() {
            // Gate check per channel, not per tick: an issue on an earlier
            // channel can move the global counters, and this channel's
            // walk must see bits consistent with the counters its arbiter
            // will read. (Picks inside a walk never move them — counters
            // change only on enqueue, issue and completion.)
            let gates = self.gates();
            if gates != self.gate_cache || now >= self.next_escal {
                self.gate_cache = gates;
                self.rebuild_act(dram, now);
            }
            // Visit only actionable banks: a clear `act_now` bit proves
            // the arbiter call would mutate nothing this tick (see the
            // field's invariant).
            let range = self.core.bank_range(channel);
            let mut bank_idx = range.start;
            while bank_idx < range.end {
                let shifted = self.act_now[bank_idx >> 6] >> (bank_idx & 63);
                if shifted == 0 {
                    bank_idx = (bank_idx | 63) + 1;
                    continue;
                }
                bank_idx += shifted.trailing_zeros() as usize;
                if bank_idx >= range.end {
                    break;
                }
                // A mutating visit invalidates both bitmaps; a futile one
                // left the bank state untouched, so only the gate-scoped
                // bit needs recomputing (clearing it is what stops the
                // futile visit from repeating every tick).
                if self.bank_arbiter(bank_idx, dram, now) {
                    self.refresh_attention(bank_idx);
                }
                self.refresh_act(bank_idx, dram, now);
                bank_idx += 1;
            }
            if self.core.candidates_barren(dram, channel, now) {
                // Figure 6 lines 14-15 fire every barren cycle; the write
                // is idempotent while the ongoing set is unchanged.
                self.core.steer_to_oldest(channel);
                continue;
            }
            let mut cands = std::mem::take(&mut self.scratch);
            self.core.fill_candidates(dram, channel, now, &mut cands);
            let (last_bank, last_rank) = self.core.last_target(channel);
            match select_table2(&cands, last_bank, last_rank) {
                Some(cand) => {
                    let col_issued = self.core.issue_candidate(dram, now, &cand, completions);
                    if col_issued {
                        match cand.kind {
                            AccessKind::Read => {
                                // A read burst ends when its last read's
                                // column access has been scheduled and no
                                // new read joined.
                                let bank = &mut self.banks[cand.bank];
                                if let Some(front) = bank.bursts.front() {
                                    if front.row == cand.loc.row && front.accesses.is_empty() {
                                        bank.bursts.pop_front();
                                        bank.at_burst_end = true;
                                    }
                                }
                            }
                            AccessKind::Write => {
                                // A completed write leaves its row open:
                                // qualified (same-row) writes may be
                                // appended behind it, draining whole
                                // row-clusters of writebacks — "exploits
                                // the locality of row hits from writes"
                                // (Section 3.2).
                                self.banks[cand.bank].at_burst_end = true;
                            }
                        }
                        // The column freed the bank's slot (or parked a
                        // faulted access for retry): recompute its bits.
                        self.refresh_attention(cand.bank);
                        self.refresh_act(cand.bank, dram, now);
                    }
                }
                None => {
                    // Figure 6 lines 14-15: steer toward the oldest access.
                    self.core.steer_to_oldest(channel);
                }
            }
            self.scratch = cands;
        }
    }

    fn stats(&self) -> &CtrlStats {
        self.core.stats()
    }

    fn outstanding(&self) -> Outstanding {
        Outstanding {
            reads: self.core.reads_outstanding(),
            writes: self.core.writes_outstanding(),
        }
    }

    fn stall_diagnostic(&self) -> Option<crate::StallDiagnostic> {
        self.core.stall()
    }

    fn quiescent(&self) -> bool {
        self.core.quiescent()
    }

    fn advance_quiescent(&mut self, from: Cycle, n: u64) {
        self.core.advance_quiescent(from, n);
        // Replay the adaptation timer over the skipped window. The first
        // fire must run for real — arrival-window counters accumulated
        // before quiescence may still cross the adaptation minimum — and
        // it zeroes the windows, so every later fire in the window is a
        // pure re-arm. `end - f0` stays exact: f0 <= end by the guard.
        if let Some(period) = self.opts.dynamic_period {
            let end = from + n - 1;
            if self.next_adapt <= end {
                let f0 = self.next_adapt.max(from);
                self.adapt_threshold(f0);
                self.next_adapt = match (end - f0).checked_div(period) {
                    Some(intervals) => f0 + (intervals + 1) * period,
                    None => end, // period == 0: re-arm at the window edge
                };
            }
        }
    }

    fn enqueue_may_advance_horizon(&self, access: &Access) -> bool {
        // Mirrors `next_busy_event`'s veto arms. An arrival can create an
        // *earlier* observable tick only through those arms; everything
        // else it touches — watchdog progress, adaptation arrival
        // windows, attention bits — moves the horizon later or not at
        // all, which the conservative-early contract already permits.
        let Some(og) = self.core.ongoing(self.core.global_bank(access.loc)) else {
            // Idle slot: the bank arbiter may install this access on the
            // very next tick (and escalation/write-drain arms apply).
            return true;
        };
        match access.kind {
            // A read behind an ongoing write arms preemption. Behind an
            // ongoing read the slot stays pinned through any valid
            // horizon (its completion bounds `busy_event_base`), the
            // idle-bank arms cannot see the bank, and a read trips no
            // global threshold — `no_reads_anywhere` can only flip
            // towards *disabling* the write-drain arm elsewhere.
            AccessKind::Read => og.access.kind == AccessKind::Write,
            // A write behind a busy slot of either kind cannot be chosen
            // locally before the horizon, but the global write count it
            // bumps feeds the saturation and piggyback arms at *other*
            // banks — preserve only while the incremented count stays
            // strictly clear of both thresholds. (`preempt_below` needs
            // no check: a larger count only disables preemption.)
            AccessKind::Write => {
                let writes_after = self.core.writes_outstanding() as u32 + 1;
                writes_after >= self.core.cfg().write_capacity as u32
                    || self
                        .opts
                        .piggyback_above
                        .is_some_and(|th| writes_after > th)
            }
        }
    }

    fn next_busy_event(&self, dram: &Dram, last: Cycle) -> Option<Cycle> {
        let mut event = self.core.busy_event_base(dram, last)?;
        let t = last + 1;
        if self.opts.dynamic_period.is_some() {
            // The adaptation timer rewrites the thresholds and zeroes the
            // arrival windows when it fires; that tick must be stepped.
            if self.next_adapt <= t {
                return None;
            }
            event = event.min(self.next_adapt);
        }
        let escalate_age = self.core.cfg().watchdog.escalate_age;
        let writes_global = self.core.writes_outstanding() as u32;
        let write_cap = self.core.cfg().write_capacity as u32;
        let no_reads_anywhere = self.core.reads_outstanding() == 0;
        // Only attention-flagged banks can veto or bound the horizon: a
        // clear bit means the bank is either slot-busy with a read, a
        // write with no reads behind it, or idle and empty — and every
        // arm below contributes nothing for those. (Bits can be stale-set
        // after an enqueue behind a busy slot; a visit then just scores
        // nothing, exactly like the full scan did.)
        for (w, &word0) in self.attention.iter().enumerate() {
            let mut word = word0;
            while word != 0 {
                let bank_idx = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                let bank = &self.banks[bank_idx];
                if let Some(og) = self.core.ongoing(bank_idx) {
                    // Preemption's terms are static over a no-op stretch
                    // except the age guard, which can only turn an eligible
                    // write immune — so eligibility at the next tick decides.
                    if og.access.kind == AccessKind::Write
                        && writes_global < self.opts.preempt_below
                        && t.saturating_sub(og.access.arrival) < escalate_age
                        && bank.has_reads()
                    {
                        return None;
                    }
                    continue;
                }
                // Idle bank: replicate the Figure 5 decision at tick `t`.
                // Escalation first, replicating pop order exactly —
                // including its blindness to exhausted front bursts.
                let oldest_read = bank
                    .bursts
                    .front()
                    .and_then(|b| b.accesses.front())
                    .map(|a| a.arrival);
                let oldest_write = bank.writes.front().map(|a| a.arrival);
                if let Some(arrival) = [oldest_read, oldest_write].into_iter().flatten().min() {
                    let esc_at = arrival + escalate_age;
                    if esc_at <= t {
                        return None;
                    }
                    event = event.min(esc_at);
                }
                if writes_global >= write_cap && !bank.writes.is_empty() {
                    return None;
                }
                let open_row = {
                    let (ch, rank, bk) = self.core.bank_coords(bank_idx);
                    dram.channel(usize::from(ch)).bank(rank, bk).open_row()
                };
                if let (Some(th), true, Some(row)) =
                    (self.opts.piggyback_above, bank.at_burst_end, open_row)
                {
                    if writes_global > th && bank.writes.iter().any(|w| w.loc.row == row) {
                        return None;
                    }
                }
                if bank.has_reads() || (no_reads_anywhere && !bank.writes.is_empty()) {
                    return None;
                }
            }
        }
        Some(event)
    }

    fn advance_blocked(&mut self, from: Cycle, n: u64) {
        if let Some(_period) = self.opts.dynamic_period {
            debug_assert!(
                from + n - 1 < self.next_adapt,
                "adaptation timer would fire inside a skipped busy stretch"
            );
        }
        self.core.advance_blocked(from, n);
    }

    fn save_state(&self, w: &mut burst_snap::SnapWriter) -> Result<(), burst_snap::SnapError> {
        self.core.save_snap(w);
        w.usize(self.banks.len());
        for bank in &self.banks {
            w.usize(bank.bursts.len());
            for burst in &bank.bursts {
                w.u32(burst.row);
                w.usize(burst.accesses.len());
                for a in &burst.accesses {
                    a.save_snap(w);
                }
            }
            w.usize(bank.writes.len());
            for a in &bank.writes {
                a.save_snap(w);
            }
            w.bool(bank.at_burst_end);
        }
        // Runtime-mutable option fields (the dynamic threshold rewrites
        // preempt_below / piggyback_above on the fly).
        w.u32(self.opts.preempt_below);
        w.opt_u32(self.opts.piggyback_above);
        w.u64(self.window_reads);
        w.u64(self.window_writes);
        w.u64(self.next_adapt);
        Ok(())
    }

    fn load_state(&mut self, r: &mut burst_snap::SnapReader) -> Result<(), burst_snap::SnapError> {
        use burst_snap::SnapError;
        self.core.load_snap(r)?;
        if r.seq_len(3)? != self.banks.len() {
            return Err(SnapError::Corrupt("bank queue count mismatch"));
        }
        for bank in &mut self.banks {
            let n_bursts = r.seq_len(6)?;
            bank.bursts.clear();
            for _ in 0..n_bursts {
                let row = r.u32()?;
                let n_acc = r.seq_len(24)?;
                let mut accesses = VecDeque::with_capacity(n_acc);
                for _ in 0..n_acc {
                    accesses.push_back(Access::load_snap(r)?);
                }
                bank.bursts.push_back(Burst { row, accesses });
            }
            let n_writes = r.seq_len(24)?;
            bank.writes.clear();
            for _ in 0..n_writes {
                bank.writes.push_back(Access::load_snap(r)?);
            }
            bank.at_burst_end = r.bool()?;
        }
        self.opts.preempt_below = r.u32()?;
        self.opts.piggyback_above = r.opt_u32()?;
        self.window_reads = r.u64()?;
        self.window_writes = r.u64()?;
        self.next_adapt = r.u64()?;
        // The attention bitmap is derived state: rebuild it from the
        // restored slots and queues. The gate-scoped `act_now` map is
        // invalidated instead — the first tick rebuilds it lazily.
        for b in 0..self.banks.len() {
            self.refresh_attention(b);
        }
        self.gate_cache = GATES_STALE;
        self.next_escal = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessId;
    use burst_dram::{AddressMapping, DramConfig, Loc, PhysAddr};

    fn setup(opts: BurstOptions) -> (BurstScheduler, Dram) {
        let cfg = DramConfig::baseline();
        (
            BurstScheduler::new(CtrlConfig::default(), cfg.geometry, opts),
            Dram::new(cfg, AddressMapping::PageInterleaving),
        )
    }

    fn th(t: u32) -> BurstOptions {
        BurstOptions::static_threshold(t, Some(t), Mechanism::BurstTh(t))
    }

    fn access(id: u64, kind: AccessKind, loc: Loc) -> Access {
        Access::new(AccessId::new(id), kind, PhysAddr::new(id * 64), loc, 0)
    }

    fn read(id: u64, bank: u8, row: u32, col: u32) -> Access {
        access(id, AccessKind::Read, Loc::new(0, 0, bank, row, col))
    }

    fn write(id: u64, bank: u8, row: u32, col: u32) -> Access {
        access(id, AccessKind::Write, Loc::new(0, 0, bank, row, col))
    }

    #[test]
    fn same_row_reads_join_one_burst() {
        let (mut s, _dram) = setup(th(52));
        let mut done = Vec::new();
        s.enqueue(read(0, 0, 5, 0), 0, &mut done);
        s.enqueue(read(1, 0, 5, 8), 0, &mut done);
        s.enqueue(read(2, 0, 6, 0), 0, &mut done);
        s.enqueue(read(3, 0, 5, 16), 0, &mut done);
        let bank = &s.banks[s.core.global_bank(Loc::new(0, 0, 0, 0, 0))];
        assert_eq!(bank.bursts.len(), 2, "rows 5 and 6");
        assert_eq!(
            bank.bursts[0].accesses.len(),
            3,
            "row-5 burst holds three reads"
        );
        assert_eq!(bank.bursts[1].accesses.len(), 1);
    }

    #[test]
    fn bursts_served_in_first_arrival_order() {
        let (mut s, mut dram) = setup(th(52));
        let mut done = Vec::new();
        // Row 6 burst arrives first, then a row 5 burst.
        s.enqueue(read(0, 0, 6, 0), 0, &mut done);
        s.enqueue(read(1, 0, 5, 0), 0, &mut done);
        s.enqueue(read(2, 0, 5, 8), 0, &mut done);
        for now in 0..200 {
            s.tick(&mut dram, now, &mut done);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done[0].id, AccessId::new(0), "older burst must go first");
    }

    #[test]
    fn preemption_respects_threshold_boundary() {
        // Threshold 1: preemption requires global writes < 1, i.e. zero
        // queued writes besides the ongoing one.
        let (mut s, mut dram) = setup(th(1));
        let mut done = Vec::new();
        s.enqueue(write(0, 0, 5, 0), 0, &mut done);
        s.tick(&mut dram, 0, &mut done); // write becomes ongoing
                                         // A second queued write raises occupancy to 1 (ongoing counts);
                                         // preemption (needs < 1) is disabled.
        s.enqueue(write(1, 0, 7, 0), 1, &mut done);
        s.enqueue(read(2, 0, 9, 0), 1, &mut done);
        s.tick(&mut dram, 1, &mut done);
        assert_eq!(
            s.stats().preemptions,
            0,
            "occupancy at threshold: no preemption"
        );
    }

    #[test]
    fn preemption_fires_below_threshold() {
        let (mut s, mut dram) = setup(th(64));
        let mut done = Vec::new();
        s.enqueue(write(0, 0, 5, 0), 0, &mut done);
        s.tick(&mut dram, 0, &mut done);
        s.enqueue(read(1, 0, 9, 0), 1, &mut done);
        s.tick(&mut dram, 1, &mut done);
        assert_eq!(s.stats().preemptions, 1);
        // The read becomes ongoing; the write returns to its queue.
        let bank = &s.banks[s.core.global_bank(Loc::new(0, 0, 0, 0, 0))];
        assert_eq!(bank.writes.len(), 1);
    }

    #[test]
    fn piggyback_takes_oldest_qualified_write() {
        let (mut s, mut dram) = setup(th(0)); // WP semantics: piggyback whenever occupancy > 0
        let mut done = Vec::new();
        // A read burst to row 5 and writes to rows 5 (two) and 7 (one).
        s.enqueue(read(0, 0, 5, 0), 0, &mut done);
        s.enqueue(write(1, 0, 7, 0), 0, &mut done);
        s.enqueue(write(2, 0, 5, 8), 0, &mut done);
        s.enqueue(write(3, 0, 5, 16), 0, &mut done);
        let mut now = 0;
        while done.len() < 4 && now < 2000 {
            s.tick(&mut dram, now, &mut done);
            now += 1;
        }
        assert_eq!(done.len(), 4);
        assert!(s.stats().piggybacks >= 2, "both row-5 writes piggyback");
        // The row-5 writes complete before the row-7 write despite id order.
        let pos = |id: u64| {
            done.iter()
                .position(|c| c.id == AccessId::new(id))
                .expect("completed")
        };
        assert!(pos(2) < pos(1), "row-hit write 2 beats row-miss write 1");
        assert!(pos(3) < pos(1), "row-hit write 3 beats row-miss write 1");
    }

    #[test]
    fn no_piggyback_when_disabled() {
        let (mut s, mut dram) = setup(BurstOptions::static_threshold(0, None, Mechanism::Burst));
        let mut done = Vec::new();
        s.enqueue(read(0, 0, 5, 0), 0, &mut done);
        s.enqueue(write(1, 0, 5, 8), 0, &mut done);
        let mut now = 0;
        while done.len() < 2 && now < 5000 {
            s.tick(&mut dram, now, &mut done);
            now += 1;
        }
        assert_eq!(s.stats().piggybacks, 0);
        assert_eq!(done.len(), 2, "write drains via the no-reads path");
    }

    #[test]
    fn new_read_joins_active_burst_mid_drain() {
        let (mut s, mut dram) = setup(th(52));
        let mut done = Vec::new();
        s.enqueue(read(0, 0, 5, 0), 0, &mut done);
        // Let the burst start (activate issued).
        s.tick(&mut dram, 0, &mut done);
        s.tick(&mut dram, 1, &mut done);
        // A same-row read arrives while the burst is being scheduled.
        s.enqueue(read(1, 0, 5, 8), 2, &mut done);
        let mut now = 2;
        while done.len() < 2 && now < 500 {
            s.tick(&mut dram, now, &mut done);
            now += 1;
        }
        assert_eq!(done.len(), 2);
        // Both were row-locality wins: 1 empty (first) + 1 hit (joiner).
        assert_eq!(s.stats().row_hits, 1);
        assert_eq!(s.stats().row_empties, 1);
    }

    #[test]
    fn dynamic_threshold_adapts_to_write_share() {
        let opts = BurstOptions {
            dynamic_period: Some(64),
            ..BurstOptions::static_threshold(52, Some(52), Mechanism::BurstDyn)
        };
        let (mut s, mut dram) = setup(opts);
        let mut done = Vec::new();
        // Write-heavy phase: threshold should fall.
        let mut id = 0;
        for now in 0..256u64 {
            if s.can_accept(AccessKind::Write) {
                s.enqueue(
                    write(id, (id % 4) as u8, (id % 8) as u32, 0),
                    now,
                    &mut done,
                );
                id += 1;
            }
            s.tick(&mut dram, now, &mut done);
        }
        assert!(
            s.current_threshold() < 52,
            "write flood should lower the threshold, got {}",
            s.current_threshold()
        );
        // Read-heavy phase: threshold should rise again.
        for now in 256..1024u64 {
            if s.can_accept(AccessKind::Read) && id < 400 {
                s.enqueue(read(id, (id % 4) as u8, (id % 8) as u32, 8), now, &mut done);
                id += 1;
            }
            s.tick(&mut dram, now, &mut done);
        }
        assert!(
            s.current_threshold() > 16,
            "read flood should raise the threshold, got {}",
            s.current_threshold()
        );
    }

    #[test]
    fn starved_write_escalates_and_completes() {
        // A lone write to row 7 behind an endless read stream to row 5
        // starves under plain Burst_TH (no piggyback qualifies, reads are
        // never exhausted). A small escalation age promotes it.
        let cfg = DramConfig::baseline();
        let ctrl = CtrlConfig {
            watchdog: crate::WatchdogConfig {
                escalate_age: 400,
                stall_limit: 1_000_000,
            },
            ..CtrlConfig::default()
        };
        let mut s = BurstScheduler::new(ctrl, cfg.geometry, th(52));
        let mut dram = Dram::new(cfg, AddressMapping::PageInterleaving);
        let mut done = Vec::new();
        s.enqueue(write(0, 0, 7, 0), 0, &mut done);
        let mut id = 1u64;
        for now in 0..4000u64 {
            if now % 8 == 0 && s.can_accept(AccessKind::Read) {
                let a = Access::new(
                    AccessId::new(id),
                    AccessKind::Read,
                    PhysAddr::new(id * 64),
                    Loc::new(0, 0, 0, 5, ((id * 8) % 512) as u32),
                    now,
                );
                s.enqueue(a, now, &mut done);
                id += 1;
            }
            s.tick(&mut dram, now, &mut done);
            if done.iter().any(|c| c.id == AccessId::new(0)) {
                break;
            }
        }
        assert!(
            done.iter().any(|c| c.id == AccessId::new(0)),
            "escalated write must complete despite the read stream"
        );
        assert!(
            s.stats().escalations >= 1,
            "the watchdog must have escalated it"
        );
        assert!(
            s.stall_diagnostic().is_none(),
            "progress was continuous: no stall"
        );
    }

    #[test]
    fn rejected_when_pool_full() {
        let cfg = DramConfig::baseline();
        let ctrl = CtrlConfig {
            pool_capacity: 2,
            write_capacity: 2,
            ..CtrlConfig::default()
        };
        let mut s = BurstScheduler::new(ctrl, cfg.geometry, th(52));
        let mut done = Vec::new();
        assert_eq!(
            s.enqueue(read(0, 0, 5, 0), 0, &mut done),
            EnqueueOutcome::Queued
        );
        assert_eq!(
            s.enqueue(read(1, 0, 5, 8), 0, &mut done),
            EnqueueOutcome::Queued
        );
        // Pool full: the access is refused, not silently dropped or
        // miscounted (previously a debug-only assertion).
        assert_eq!(
            s.enqueue(read(2, 0, 5, 16), 0, &mut done),
            EnqueueOutcome::Rejected
        );
        assert_eq!(
            s.outstanding().total(),
            2,
            "rejected access was not recorded"
        );
    }

    #[test]
    fn write_queue_full_forces_drain() {
        let cfg = DramConfig::baseline();
        let ctrl = CtrlConfig {
            pool_capacity: 16,
            write_capacity: 4,
            ..CtrlConfig::default()
        };
        let mut s = BurstScheduler::new(ctrl, cfg.geometry, th(52));
        let mut dram = Dram::new(cfg, AddressMapping::PageInterleaving);
        let mut done = Vec::new();
        for i in 0..4 {
            assert!(s.can_accept(AccessKind::Write));
            s.enqueue(write(i, (i % 2) as u8, 3, 0), 0, &mut done);
        }
        assert!(
            !s.can_accept(AccessKind::Read),
            "full write queue blocks everything"
        );
        let mut now = 0;
        while s.outstanding().writes == 4 && now < 100 {
            s.tick(&mut dram, now, &mut done);
            now += 1;
        }
        assert!(s.outstanding().writes < 4, "full-queue drain must engage");
    }
}

#[cfg(test)]
mod critical_tests {
    use super::*;
    use crate::AccessId;
    use burst_dram::{AddressMapping, DramConfig, Loc, PhysAddr};

    fn crit_opts() -> BurstOptions {
        BurstOptions {
            critical_first: true,
            ..BurstOptions::static_threshold(52, Some(52), Mechanism::BurstCrit)
        }
    }

    fn read(id: u64, row: u32, col: u32, critical: bool) -> Access {
        Access::new(
            AccessId::new(id),
            AccessKind::Read,
            PhysAddr::new(id * 64),
            Loc::new(0, 0, 0, row, col),
            0,
        )
        .with_critical(critical)
    }

    #[test]
    fn critical_reads_jump_fills_within_a_burst() {
        let cfg = DramConfig::baseline();
        let mut s = BurstScheduler::new(CtrlConfig::default(), cfg.geometry, crit_opts());
        let mut dram = Dram::new(cfg, AddressMapping::PageInterleaving);
        let mut done = Vec::new();
        // Three non-critical fills arrive first, then a critical demand load
        // to the same row.
        s.enqueue(read(0, 5, 0, false), 0, &mut done);
        s.enqueue(read(1, 5, 8, false), 0, &mut done);
        s.enqueue(read(2, 5, 16, false), 0, &mut done);
        s.enqueue(read(3, 5, 24, true), 0, &mut done);
        let mut now = 0;
        while done.len() < 4 && now < 1000 {
            s.tick(&mut dram, now, &mut done);
            now += 1;
        }
        let order: Vec<u64> = done.iter().map(|c| c.id.value()).collect();
        // Access 0 leads the burst (already ongoing by the time 3 arrives or
        // simply first in line); the critical access must beat fills 1 and 2.
        let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(3) < pos(1), "critical load must jump fill 1: {order:?}");
        assert!(pos(3) < pos(2), "critical load must jump fill 2: {order:?}");
    }

    #[test]
    fn without_flag_order_is_arrival() {
        let cfg = DramConfig::baseline();
        let mut s = BurstScheduler::new(
            CtrlConfig::default(),
            cfg.geometry,
            BurstOptions::static_threshold(52, Some(52), Mechanism::BurstTh(52)),
        );
        let mut dram = Dram::new(cfg, AddressMapping::PageInterleaving);
        let mut done = Vec::new();
        s.enqueue(read(0, 5, 0, false), 0, &mut done);
        s.enqueue(read(1, 5, 8, false), 0, &mut done);
        s.enqueue(read(2, 5, 16, true), 0, &mut done);
        let mut now = 0;
        while done.len() < 3 && now < 1000 {
            s.tick(&mut dram, now, &mut done);
            now += 1;
        }
        let order: Vec<u64> = done.iter().map(|c| c.id.value()).collect();
        assert_eq!(
            order,
            vec![0, 1, 2],
            "arrival order preserved inside bursts"
        );
    }

    #[test]
    fn criticality_never_loses_accesses() {
        let cfg = DramConfig::baseline();
        let mut s = BurstScheduler::new(CtrlConfig::default(), cfg.geometry, crit_opts());
        let mut dram = Dram::new(cfg, AddressMapping::PageInterleaving);
        let mut done = Vec::new();
        for i in 0..60u64 {
            let r = read(i, (i % 6) as u32, ((i * 8) % 64) as u32, i % 3 == 0);
            if s.can_accept(AccessKind::Read) {
                s.enqueue(r, 0, &mut done);
            }
        }
        let mut now = 0;
        while s.outstanding().total() > 0 && now < 100_000 {
            s.tick(&mut dram, now, &mut done);
            now += 1;
        }
        assert_eq!(done.len(), 60);
    }
}
