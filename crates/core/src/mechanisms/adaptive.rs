//! Adaptive history-based scheduling (Hur & Lin, MICRO 2004) — one of the
//! related-work mechanisms the paper discusses (Section 2.2): "tracks the
//! access pattern of recently scheduled accesses and selects memory
//! accesses matching the program's mixture of reads and writes."
//!
//! This simplified implementation keeps per-bank read and write queues and
//! an exponentially weighted history of the *arriving* read/write mix; each
//! bank arbiter then schedules whichever kind its *issued* mix lags behind,
//! preferring row hits within the chosen kind. Provided as an extension
//! baseline beyond the paper's Table 4.

use std::collections::VecDeque;

use crate::engine::{Candidate, Core};
use crate::txsched::select_intel_limited;
use crate::{
    Access, AccessKind, AccessScheduler, Completion, CtrlConfig, CtrlStats, EnqueueOutcome,
    Mechanism, Outstanding,
};
use burst_dram::{Cycle, Dram, Geometry};

/// Transaction-selection lookahead, matching the other conventional
/// schedulers' limited scheduling logic.
const LOOKAHEAD: usize = 3;

/// The adaptive history-based scheduler.
///
/// # Examples
///
/// ```
/// use burst_core::{CtrlConfig, Mechanism};
/// use burst_dram::Geometry;
///
/// let sched = Mechanism::AdaptiveHistory.build(CtrlConfig::default(), Geometry::baseline());
/// assert_eq!(sched.mechanism(), Mechanism::AdaptiveHistory);
/// ```
#[derive(Debug)]
pub struct AdaptiveHistoryScheduler {
    core: Core,
    read_queues: Vec<VecDeque<Access>>,
    write_queues: Vec<VecDeque<Access>>,
    /// EWMA of the arriving read share, in 1/1024 units.
    arrival_read_share: u32,
    /// Reads and writes issued (made ongoing) so far in the current
    /// balancing window.
    issued_reads: u64,
    issued_writes: u64,
    // snap: derived(per-tick candidate scratch buffer, cleared before each use)
    scratch: Vec<Candidate>,
}

impl AdaptiveHistoryScheduler {
    /// Creates the scheduler for a device of the given geometry.
    pub fn new(cfg: CtrlConfig, geom: Geometry) -> Self {
        let core = Core::new(cfg, geom);
        let nbanks = core.bank_count();
        AdaptiveHistoryScheduler {
            core,
            read_queues: vec![VecDeque::new(); nbanks],
            write_queues: vec![VecDeque::new(); nbanks],
            arrival_read_share: 768, // start read-leaning (3/4)
            issued_reads: 0,
            issued_writes: 0,
            scratch: Vec::new(),
        }
    }

    /// The read share the history currently targets, in `[0, 1]`.
    /// Report-only: scheduling decisions use the integer form in
    /// [`Self::wants_read`].
    // audit: allow(float): report-only accessor, never feeds scheduling
    pub fn target_read_share(&self) -> f64 {
        // audit: allow(float): report-only accessor, never feeds scheduling
        f64::from(self.arrival_read_share) / 1024.0
    }

    fn note_history(&mut self, kind: AccessKind) {
        // EWMA with a 1/64 step.
        let sample: u32 = if kind.is_read() { 1024 } else { 0 };
        self.arrival_read_share = (self.arrival_read_share * 63 + sample) / 64;
    }

    /// Whether the issued mix lags the arrival mix on the read side.
    ///
    /// Exact integer form of `issued_reads / issued <= share / 1024`:
    /// cross-multiplying by the positive denominators gives
    /// `issued_reads * 1024 <= share * issued`, which cannot overflow
    /// u128 and has no rounding at all. The former f64 comparison agreed
    /// with this for every reachable operand (the gap between distinct
    /// rationals with denominators this small dwarfs f64 quotient
    /// rounding), so behaviour is unchanged — the proof is just local now.
    fn wants_read(&self) -> bool {
        let issued = self.issued_reads + self.issued_writes;
        if issued == 0 {
            return true;
        }
        u128::from(self.issued_reads) * 1024
            <= u128::from(self.arrival_read_share) * u128::from(issued)
    }

    /// Picks the oldest row-hit access of `queue` against the open row,
    /// else the oldest.
    fn pick(queue: &mut VecDeque<Access>, open_row: Option<u32>) -> Option<Access> {
        if queue.is_empty() {
            return None;
        }
        let idx = open_row
            .and_then(|row| {
                queue
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.loc.row == row)
                    .min_by_key(|(_, a)| a.id)
                    .map(|(i, _)| i)
            })
            .unwrap_or(0);
        queue.remove(idx)
    }

    fn arbiter(&mut self, bank_idx: usize, dram: &Dram, now: Cycle) {
        if self.core.ongoing(bank_idx).is_some() {
            return;
        }
        let (ch, rank, bk) = self.core.bank_coords(bank_idx);
        let open_row = dram.channel(usize::from(ch)).bank(rank, bk).open_row();
        // Starvation watchdog: an access past the escalation age overrides
        // history matching and row-hit preference — serve it oldest-first.
        let escalate_age = self.core.cfg().watchdog.escalate_age;
        let oldest_read = self.read_queues[bank_idx]
            .front()
            .map(|a| (a.arrival, a.kind));
        let oldest_write = self.write_queues[bank_idx]
            .front()
            .map(|a| (a.arrival, a.kind));
        if let Some((arrival, kind)) = [oldest_read, oldest_write].into_iter().flatten().min() {
            if now.saturating_sub(arrival) >= escalate_age {
                let access = match kind {
                    AccessKind::Read => self.read_queues[bank_idx].pop_front(),
                    AccessKind::Write => self.write_queues[bank_idx].pop_front(),
                }
                .expect("front exists");
                match access.kind {
                    AccessKind::Read => self.issued_reads += 1,
                    AccessKind::Write => self.issued_writes += 1,
                }
                self.core
                    .set_ongoing(bank_idx, access)
                    .expect("bank verified idle before escalation");
                return;
            }
        }
        // A saturated write queue overrides history matching.
        let full = self.core.writes_outstanding() >= self.core.cfg().write_capacity;
        let prefer_read = !full && self.wants_read();
        let (first, second) = if prefer_read {
            (
                &mut self.read_queues[bank_idx],
                &mut self.write_queues[bank_idx],
            )
        } else {
            (
                &mut self.write_queues[bank_idx],
                &mut self.read_queues[bank_idx],
            )
        };
        let access = Self::pick(first, open_row).or_else(|| Self::pick(second, open_row));
        if let Some(access) = access {
            match access.kind {
                AccessKind::Read => self.issued_reads += 1,
                AccessKind::Write => self.issued_writes += 1,
            }
            // Keep the balancing window short so phase changes register.
            if self.issued_reads + self.issued_writes >= 256 {
                self.issued_reads /= 2;
                self.issued_writes /= 2;
            }
            self.core
                .set_ongoing(bank_idx, access)
                .expect("bank verified idle at arbiter entry");
        }
    }
}

impl AccessScheduler for AdaptiveHistoryScheduler {
    fn mechanism(&self) -> Mechanism {
        Mechanism::AdaptiveHistory
    }

    fn can_accept(&self, kind: AccessKind) -> bool {
        self.core.can_accept(kind)
    }

    fn enqueue(
        &mut self,
        access: Access,
        now: Cycle,
        completions: &mut Vec<Completion>,
    ) -> EnqueueOutcome {
        if !self.can_accept(access.kind) {
            return EnqueueOutcome::Rejected;
        }
        let bank_idx = self.core.global_bank(access.loc);
        self.note_history(access.kind);
        match access.kind {
            AccessKind::Read => {
                let hit = self.write_queues[bank_idx]
                    .iter()
                    .any(|w| w.addr == access.addr)
                    || self
                        .core
                        .ongoing(bank_idx)
                        .map(|o| o.access.kind == AccessKind::Write && o.access.addr == access.addr)
                        .unwrap_or(false);
                if hit {
                    self.core.note_forward(&access, now, completions);
                    return EnqueueOutcome::Forwarded;
                }
                self.core.note_arrival(&access);
                self.read_queues[bank_idx].push_back(access);
            }
            AccessKind::Write => {
                self.core.note_arrival(&access);
                self.write_queues[bank_idx].push_back(access);
            }
        }
        EnqueueOutcome::Queued
    }

    fn tick(&mut self, dram: &mut Dram, now: Cycle, completions: &mut Vec<Completion>) {
        dram.tick(now);
        self.core.sample();
        self.core.watchdog_tick(now);
        for access in self.core.take_retries() {
            let bank = self.core.global_bank(access.loc);
            match access.kind {
                AccessKind::Read => self.read_queues[bank].push_front(access),
                AccessKind::Write => self.write_queues[bank].push_front(access),
            }
        }
        for channel in 0..self.core.channel_count() {
            for bank in self.core.bank_range(channel) {
                self.arbiter(bank, dram, now);
            }
            let mut cands = std::mem::take(&mut self.scratch);
            self.core
                .fill_all_candidates(dram, channel, now, &mut cands);
            match select_intel_limited(&cands, LOOKAHEAD) {
                Some(cand) => {
                    self.core.issue_candidate(dram, now, &cand, completions);
                }
                None => self.core.steer_to_oldest(channel),
            }
            self.scratch = cands;
        }
    }

    fn stats(&self) -> &CtrlStats {
        self.core.stats()
    }

    fn outstanding(&self) -> Outstanding {
        Outstanding {
            reads: self.core.reads_outstanding(),
            writes: self.core.writes_outstanding(),
        }
    }

    fn stall_diagnostic(&self) -> Option<crate::StallDiagnostic> {
        self.core.stall()
    }

    fn quiescent(&self) -> bool {
        self.core.quiescent()
    }

    fn advance_quiescent(&mut self, from: Cycle, n: u64) {
        self.core.advance_quiescent(from, n);
    }

    fn next_busy_event(&self, dram: &Dram, last: Cycle) -> Option<Cycle> {
        // `pick` installs whenever either queue of an idle bank is
        // non-empty (history only steers which kind goes first), so an
        // idle bank with any work makes the next tick a real one. With
        // every work-holding bank busy, escalation is unreachable and the
        // history counters are untouched.
        for bank in 0..self.core.bank_count() {
            if self.core.ongoing(bank).is_none()
                && (!self.read_queues[bank].is_empty() || !self.write_queues[bank].is_empty())
            {
                return None;
            }
        }
        self.core.busy_event_base(dram, last)
    }

    fn enqueue_may_advance_horizon(&self, _access: &Access) -> bool {
        // Conservative: any arrival may land on an idle bank and turn the
        // next tick into a real one (see `next_busy_event`), so every
        // enqueue invalidates a computed horizon.
        true
    }

    fn advance_blocked(&mut self, from: Cycle, n: u64) {
        self.core.advance_blocked(from, n);
    }

    fn save_state(&self, w: &mut burst_snap::SnapWriter) -> Result<(), burst_snap::SnapError> {
        self.core.save_snap(w);
        super::save_queue_set(&self.read_queues, w);
        super::save_queue_set(&self.write_queues, w);
        w.u32(self.arrival_read_share);
        w.u64(self.issued_reads);
        w.u64(self.issued_writes);
        Ok(())
    }

    fn load_state(&mut self, r: &mut burst_snap::SnapReader) -> Result<(), burst_snap::SnapError> {
        self.core.load_snap(r)?;
        super::load_queue_set(&mut self.read_queues, r)?;
        super::load_queue_set(&mut self.write_queues, r)?;
        self.arrival_read_share = r.u32()?;
        self.issued_reads = r.u64()?;
        self.issued_writes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessId;
    use burst_dram::{AddressMapping, DramConfig, Loc, PhysAddr};

    fn setup() -> (AdaptiveHistoryScheduler, Dram) {
        let cfg = DramConfig::baseline();
        (
            AdaptiveHistoryScheduler::new(CtrlConfig::default(), cfg.geometry),
            Dram::new(cfg, AddressMapping::PageInterleaving),
        )
    }

    fn access(id: u64, kind: AccessKind, bank: u8, row: u32) -> Access {
        Access::new(
            AccessId::new(id),
            kind,
            PhysAddr::new(id * 64),
            Loc::new(0, 0, bank, row, 0),
            0,
        )
    }

    #[test]
    fn history_tracks_arrival_mix() {
        let (mut s, _d) = setup();
        let mut done = Vec::new();
        for i in 0..200u64 {
            let kind = if i % 2 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            if s.can_accept(kind) {
                s.enqueue(access(i, kind, (i % 4) as u8, (i % 8) as u32), 0, &mut done);
            }
        }
        let share = s.target_read_share();
        assert!(
            (0.3..0.7).contains(&share),
            "50/50 arrivals -> share {share:.2}"
        );
    }

    #[test]
    fn write_heavy_history_schedules_writes_promptly() {
        let (mut s, mut dram) = setup();
        let mut done = Vec::new();
        // 80% writes.
        for i in 0..100u64 {
            let kind = if i % 5 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            if s.can_accept(kind) {
                s.enqueue(access(i, kind, (i % 4) as u8, (i % 4) as u32), 0, &mut done);
            }
        }
        for now in 0..20_000 {
            s.tick(&mut dram, now, &mut done);
            if s.outstanding().total() == 0 {
                break;
            }
        }
        assert_eq!(s.outstanding().total(), 0, "drains a write-heavy mix");
        // Writes were not starved: write latency stays within an order of
        // magnitude of read latency.
        let st = s.stats();
        assert!(
            st.avg_write_latency() < st.avg_read_latency() * 20.0 + 1000.0,
            "writes starved: {} vs {}",
            st.avg_write_latency(),
            st.avg_read_latency()
        );
    }

    #[test]
    fn completes_mixed_stream_exactly_once() {
        let (mut s, mut dram) = setup();
        let mut done = Vec::new();
        let mut queued = 0;
        for i in 0..150u64 {
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if s.can_accept(kind)
                && s.enqueue(
                    access(i, kind, (i % 8) as u8, (i % 16) as u32),
                    0,
                    &mut done,
                ) == EnqueueOutcome::Queued
            {
                queued += 1;
            }
        }
        let forwarded = done.len();
        for now in 0..100_000 {
            s.tick(&mut dram, now, &mut done);
            if s.outstanding().total() == 0 {
                break;
            }
        }
        assert_eq!(done.len(), queued + forwarded);
    }
}
