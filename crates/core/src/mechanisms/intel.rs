//! Intel's patented out-of-order memory scheduling (US patent 7,127,574),
//! as described by the paper: unique read queues per bank and a single
//! write queue for all banks. Reads are prioritised over writes to minimise
//! read latency; once an access is started it receives the highest priority
//! so it finishes as quickly as possible, reducing the degree of
//! reordering. The `Intel_RP` variant (not in the patent) additionally lets
//! reads preempt ongoing writes.

use std::collections::VecDeque;

use crate::engine::{Candidate, Core};
use crate::txsched::select_intel_limited;
use crate::{
    Access, AccessKind, AccessScheduler, Completion, CtrlConfig, CtrlStats, EnqueueOutcome,
    Mechanism, Outstanding,
};
use burst_dram::{Cycle, Dram, Geometry};

/// Accesses the scheduler can examine per cycle in priority order; if all
/// are blocked the cycle bubbles (timing-naive "best effort" scheduling).
const LOOKAHEAD: usize = 3;

/// The `Intel` / `Intel_RP` scheduler.
///
/// # Examples
///
/// ```
/// use burst_core::{CtrlConfig, Mechanism};
/// use burst_dram::Geometry;
///
/// let sched = Mechanism::IntelRp.build(CtrlConfig::default(), Geometry::baseline());
/// assert_eq!(sched.mechanism(), Mechanism::IntelRp);
/// ```
#[derive(Debug)]
pub struct IntelScheduler {
    core: Core,
    read_queues: Vec<VecDeque<Access>>,
    write_queue: VecDeque<Access>,
    read_preemption: bool,
    /// Write-buffer flush mode: entered at the high-water mark (3/4 of
    /// capacity), left at the low-water mark (1/2). While draining, idle
    /// banks prefer writes so the buffer empties in bursts, as the
    /// patent's flush logic does.
    draining: bool,
    // snap: derived(per-tick candidate scratch buffer, cleared before each use)
    scratch: Vec<Candidate>,
}

impl IntelScheduler {
    /// How many oldest entries of a bank's read queue the row-hit search
    /// may reorder across.
    pub const REORDER_WINDOW: usize = 4;

    /// Creates the scheduler; `read_preemption` selects the `Intel_RP`
    /// variant.
    pub fn new(cfg: CtrlConfig, geom: Geometry, read_preemption: bool) -> Self {
        let core = Core::new(cfg, geom);
        let nbanks = core.bank_count();
        IntelScheduler {
            core,
            read_queues: vec![VecDeque::new(); nbanks],
            write_queue: VecDeque::new(),
            read_preemption,
            draining: false,
            scratch: Vec::new(),
        }
    }

    /// Removes the oldest write targeting `bank_idx` from the global write
    /// queue.
    fn pop_write_for_bank(&mut self, bank_idx: usize) -> Option<Access> {
        let idx = self
            .write_queue
            .iter()
            .enumerate()
            .filter(|(_, w)| self.core.global_bank(w.loc) == bank_idx)
            .min_by_key(|(_, w)| w.id)
            .map(|(i, _)| i)?;
        self.write_queue.remove(idx)
    }

    /// Re-inserts a preempted write keeping the queue sorted by age.
    fn reinsert_write(&mut self, write: Access) {
        let pos = self.write_queue.partition_point(|w| w.id < write.id);
        self.write_queue.insert(pos, write);
    }

    fn arbiter(&mut self, bank_idx: usize, dram: &Dram, now: Cycle) {
        if let Some(og) = self.core.ongoing(bank_idx) {
            // Intel_RP: a waiting read interrupts an ongoing write —
            // except during a forced write-buffer flush, where preempting
            // would keep the buffer saturated and stall the front side bus.
            if self.read_preemption
                && og.access.kind == AccessKind::Write
                && !self.read_queues[bank_idx].is_empty()
            {
                let write = self.core.clear_ongoing(bank_idx).expect("ongoing write");
                self.reinsert_write(write);
                let read = self
                    .pick_read(bank_idx, dram, now)
                    .expect("read queue non-empty");
                self.core
                    .set_ongoing(bank_idx, read)
                    .expect("slot was just cleared for preemption");
                self.core.stats_mut().preemptions += 1;
            }
            return;
        }
        // Starvation watchdog: the oldest write sits at the queue front
        // (FIFO plus age-sorted reinsertion). Once it exceeds the
        // escalation age, drain it even while reads are outstanding —
        // without this a single write behind an endless read stream never
        // drains (the queue never fills, reads never reach zero).
        let escalate_age = self.core.cfg().watchdog.escalate_age;
        if let Some(front) = self.write_queue.front() {
            if now.saturating_sub(front.arrival) >= escalate_age
                && self.core.global_bank(front.loc) == bank_idx
            {
                let write = self.write_queue.pop_front().expect("front exists");
                self.core
                    .set_ongoing(bank_idx, write)
                    .expect("bank verified idle before escalation");
                return;
            }
        }
        // While the write buffer flushes, idle banks prefer writes so the
        // buffer empties in bursts. Reads keep priority in banks that have
        // them (outside drain mode), which is why Intel still accumulates
        // outstanding writes (paper Figure 8b) without saturating as often
        // as Burst.
        if self.draining || self.core.reads_outstanding() == 0 {
            if let Some(write) = self.pop_write_for_bank(bank_idx) {
                self.core
                    .set_ongoing(bank_idx, write)
                    .expect("bank verified idle at arbiter entry");
                return;
            }
        }
        if !self.read_queues[bank_idx].is_empty() {
            let read = self.pick_read(bank_idx, dram, now).expect("non-empty");
            self.core
                .set_ongoing(bank_idx, read)
                .expect("bank verified idle at arbiter entry");
        }
    }

    /// Row-hit read against the open row from the oldest
    /// [`Self::REORDER_WINDOW`] queue entries, else the oldest read. The
    /// patent deliberately limits the degree of reordering so started
    /// accesses finish fast; an unbounded row-hit scan would overstate it.
    /// A front read past the watchdog's escalation age is always taken
    /// first, bypassing the row-hit preference.
    fn pick_read(&mut self, bank_idx: usize, dram: &Dram, now: Cycle) -> Option<Access> {
        let escalate_age = self.core.cfg().watchdog.escalate_age;
        let (ch, rank, bk) = self.core.bank_coords(bank_idx);
        let open_row = dram.channel(usize::from(ch)).bank(rank, bk).open_row();
        if self.read_queues[bank_idx].is_empty() {
            return None;
        }
        let front_escalated = self.read_queues[bank_idx]
            .front()
            .map(|a| now.saturating_sub(a.arrival) >= escalate_age)
            .unwrap_or(false);
        if front_escalated {
            return self.read_queues[bank_idx].pop_front();
        }
        let queue = &mut self.read_queues[bank_idx];
        let idx = open_row
            .and_then(|row| {
                queue
                    .iter()
                    .take(Self::REORDER_WINDOW)
                    .enumerate()
                    .filter(|(_, a)| a.loc.row == row)
                    .min_by_key(|(_, a)| a.id)
                    .map(|(i, _)| i)
            })
            .unwrap_or(0);
        queue.remove(idx)
    }

    /// Re-enqueues a faulted access at the front of its queue.
    fn requeue_front(&mut self, access: Access) {
        match access.kind {
            AccessKind::Read => {
                let bank_idx = self.core.global_bank(access.loc);
                self.read_queues[bank_idx].push_front(access);
            }
            // Age-sorted reinsertion puts the (old) retry near the front.
            AccessKind::Write => self.reinsert_write(access),
        }
    }
}

impl AccessScheduler for IntelScheduler {
    fn mechanism(&self) -> Mechanism {
        if self.read_preemption {
            Mechanism::IntelRp
        } else {
            Mechanism::Intel
        }
    }

    fn can_accept(&self, kind: AccessKind) -> bool {
        self.core.can_accept(kind)
    }

    fn enqueue(
        &mut self,
        access: Access,
        now: Cycle,
        completions: &mut Vec<Completion>,
    ) -> EnqueueOutcome {
        if !self.can_accept(access.kind) {
            return EnqueueOutcome::Rejected;
        }
        let bank_idx = self.core.global_bank(access.loc);
        match access.kind {
            AccessKind::Read => {
                // Reads search the write queue; a hit forwards the latest
                // write's data.
                let queued_hit = self.write_queue.iter().any(|w| w.addr == access.addr);
                let ongoing_hit = self
                    .core
                    .ongoing(bank_idx)
                    .map(|o| o.access.kind == AccessKind::Write && o.access.addr == access.addr)
                    .unwrap_or(false);
                if queued_hit || ongoing_hit {
                    self.core.note_forward(&access, now, completions);
                    return EnqueueOutcome::Forwarded;
                }
                self.core.note_arrival(&access);
                self.read_queues[bank_idx].push_back(access);
                EnqueueOutcome::Queued
            }
            AccessKind::Write => {
                self.core.note_arrival(&access);
                self.write_queue.push_back(access);
                EnqueueOutcome::Queued
            }
        }
    }

    fn tick(&mut self, dram: &mut Dram, now: Cycle, completions: &mut Vec<Completion>) {
        dram.tick(now);
        self.core.sample();
        self.core.watchdog_tick(now);
        for access in self.core.take_retries() {
            self.requeue_front(access);
        }
        // The paper's description: writes are selected when the write
        // queue is full (drain until just below capacity) or when no reads
        // are outstanding. This weak write management is what burst
        // scheduling's piggybacking improves on.
        let occupancy = self.core.writes_outstanding();
        self.draining = occupancy >= self.core.cfg().write_capacity;
        for channel in 0..self.core.channel_count() {
            for bank in self.core.bank_range(channel) {
                self.arbiter(bank, dram, now);
            }
            let mut cands = std::mem::take(&mut self.scratch);
            self.core
                .fill_all_candidates(dram, channel, now, &mut cands);
            match select_intel_limited(&cands, LOOKAHEAD) {
                Some(cand) => {
                    self.core.issue_candidate(dram, now, &cand, completions);
                }
                None => self.core.steer_to_oldest(channel),
            }
            self.scratch = cands;
        }
    }

    fn stats(&self) -> &CtrlStats {
        self.core.stats()
    }

    fn outstanding(&self) -> Outstanding {
        Outstanding {
            reads: self.core.reads_outstanding(),
            writes: self.core.writes_outstanding(),
        }
    }

    fn stall_diagnostic(&self) -> Option<crate::StallDiagnostic> {
        self.core.stall()
    }

    // `draining` may go stale across a skip, but it is recomputed from live
    // occupancy at the top of every tick before any use, so quiescent ticks
    // never observe it.
    fn quiescent(&self) -> bool {
        self.core.quiescent()
    }

    fn advance_quiescent(&mut self, from: Cycle, n: u64) {
        self.core.advance_quiescent(from, n);
    }

    fn next_busy_event(&self, dram: &Dram, last: Cycle) -> Option<Cycle> {
        let mut event = self.core.busy_event_base(dram, last)?;
        let t = last + 1;
        // Recompute the drain decision exactly as the tick top does; the
        // occupancy it reads is static across a no-op stretch.
        let draining = self.core.writes_outstanding() >= self.core.cfg().write_capacity;
        for bank in 0..self.core.bank_count() {
            match self.core.ongoing(bank) {
                Some(og) => {
                    if self.read_preemption
                        && og.access.kind == AccessKind::Write
                        && !self.read_queues[bank].is_empty()
                    {
                        // Read preemption fires on the next tick.
                        return None;
                    }
                }
                None => {
                    if !self.read_queues[bank].is_empty() {
                        // An idle bank with reads always installs one.
                        return None;
                    }
                }
            }
        }
        if let Some(front) = self.write_queue.front() {
            let bank = self.core.global_bank(front.loc);
            if self.core.ongoing(bank).is_none() {
                // Only the front write ever escalates, and only once its
                // target bank is idle — idleness is static mid-stretch.
                let esc_at = front.arrival + self.core.cfg().watchdog.escalate_age;
                if esc_at <= t {
                    return None;
                }
                event = event.min(esc_at);
            }
            if (draining || self.core.reads_outstanding() == 0)
                && self
                    .write_queue
                    .iter()
                    .any(|w| self.core.ongoing(self.core.global_bank(w.loc)).is_none())
            {
                // Drain mode installs any write whose bank is idle.
                return None;
            }
        }
        Some(event)
    }

    fn enqueue_may_advance_horizon(&self, _access: &Access) -> bool {
        // Conservative: an arriving read can trigger preemption or land on
        // an idle bank, and an arriving write changes the escalation front
        // (see `next_busy_event`), so every enqueue invalidates a computed
        // horizon.
        true
    }

    fn advance_blocked(&mut self, from: Cycle, n: u64) {
        self.core.advance_blocked(from, n);
    }

    fn save_state(&self, w: &mut burst_snap::SnapWriter) -> Result<(), burst_snap::SnapError> {
        self.core.save_snap(w);
        super::save_queue_set(&self.read_queues, w);
        w.usize(self.write_queue.len());
        for a in &self.write_queue {
            a.save_snap(w);
        }
        w.bool(self.read_preemption);
        w.bool(self.draining);
        Ok(())
    }

    fn load_state(&mut self, r: &mut burst_snap::SnapReader) -> Result<(), burst_snap::SnapError> {
        self.core.load_snap(r)?;
        super::load_queue_set(&mut self.read_queues, r)?;
        let n = r.seq_len(24)?;
        self.write_queue.clear();
        for _ in 0..n {
            self.write_queue.push_back(Access::load_snap(r)?);
        }
        if r.bool()? != self.read_preemption {
            return Err(burst_snap::SnapError::Corrupt("variant mismatch"));
        }
        self.draining = r.bool()?;
        Ok(())
    }
}
