//! The access reordering mechanisms evaluated by the paper (Table 4).
//!
//! | Name | Description |
//! |---|---|
//! | `BkInOrder` | In order intra bank, round robin inter banks (baseline) |
//! | `RowHit` | Row hit first intra bank, round robin inter banks (Rixner et al.) |
//! | `Intel` | Intel's patented out-of-order scheduling |
//! | `Intel_RP` | Intel's scheduling with read preemption |
//! | `Burst` | Burst scheduling |
//! | `Burst_RP` | Burst scheduling with read preemption |
//! | `Burst_WP` | Burst scheduling with write piggybacking |
//! | `Burst_TH` | Burst scheduling with a static threshold (52 is the paper's best) |
//!
//! Plus three extensions beyond Table 4: `Burst_DYN` (Section 7 dynamic
//! threshold), `Burst_CRIT` (Section 7 intra-burst critical-first) and
//! `AdaptHist` (Hur & Lin's adaptive history scheduler from Section 2.2).

mod adaptive;
mod bk_in_order;
mod burst;
mod intel;
mod row_hit;

pub use adaptive::AdaptiveHistoryScheduler;
pub use bk_in_order::BkInOrderScheduler;
pub use burst::{BurstOptions, BurstScheduler};
pub use intel::IntelScheduler;
pub use row_hit::RowHitScheduler;

use crate::{
    Access, AccessKind, Completion, CtrlConfig, CtrlStats, EnqueueOutcome, Outstanding,
    StallDiagnostic,
};
use burst_dram::{Cycle, Dram, Geometry};

/// A memory controller scheduling policy: decides the order in which
/// outstanding accesses execute and which SDRAM transaction issues each
/// cycle.
///
/// Drive it by calling [`AccessScheduler::enqueue`] for each access the CPU
/// issues (after checking [`AccessScheduler::can_accept`]) and
/// [`AccessScheduler::tick`] once per memory cycle. Completions report when
/// each access's data transfer ends.
pub trait AccessScheduler: core::fmt::Debug {
    /// Which mechanism this scheduler implements.
    fn mechanism(&self) -> Mechanism;

    /// Whether a new access can enter: the access pool has space and the
    /// write queue is not saturated. When the write queue reaches capacity
    /// the main memory cannot accept any new access (paper Section 3.2),
    /// which is what stalls the CPU pipeline.
    fn can_accept(&self, kind: AccessKind) -> bool;

    /// Offers an access to the controller at cycle `now`.
    ///
    /// Reads that hit in the write queue are forwarded the latest write
    /// data and complete immediately: a [`Completion`] is pushed and
    /// [`EnqueueOutcome::Forwarded`] returned.
    ///
    /// Calling while [`AccessScheduler::can_accept`] is false returns
    /// [`EnqueueOutcome::Rejected`] in every build mode; the access is not
    /// recorded and the caller must hold it and retry.
    fn enqueue(
        &mut self,
        access: Access,
        now: Cycle,
        completions: &mut Vec<Completion>,
    ) -> EnqueueOutcome;

    /// Advances one memory cycle: refresh housekeeping, bank arbitration,
    /// and issuing at most one transaction per channel. Finished accesses
    /// are appended to `completions` (their `done_at` may lie a few cycles
    /// in the future — the end of the data transfer).
    fn tick(&mut self, dram: &mut Dram, now: Cycle, completions: &mut Vec<Completion>);

    /// Statistics accumulated so far.
    fn stats(&self) -> &CtrlStats;

    /// Outstanding access counts.
    fn outstanding(&self) -> Outstanding;

    /// The forward-progress failure latched by the starvation watchdog, if
    /// any. Harnesses should treat `Some` as a fatal diagnostic: the
    /// controller held outstanding accesses but issued nothing for longer
    /// than [`crate::WatchdogConfig::stall_limit`] cycles.
    fn stall_diagnostic(&self) -> Option<StallDiagnostic>;

    /// Whether the scheduler is *quiescent*: no outstanding or retrying
    /// accesses and no latched stall, so that — absent new enqueues — every
    /// future [`AccessScheduler::tick`] is a pure bookkeeping no-op that
    /// [`AccessScheduler::advance_quiescent`] can replay in one batch.
    ///
    /// The conservative default (`false`) keeps custom schedulers correct:
    /// the simulator simply never skips cycles for them.
    fn quiescent(&self) -> bool {
        false
    }

    /// Batch-advances per-tick bookkeeping (cycle counters, occupancy
    /// sampling, watchdog progress clock, adaptation timers) over the `n`
    /// quiescent ticks at cycles `from..from + n`, bit-identically to
    /// calling [`AccessScheduler::tick`] that many times while quiescent.
    /// Only called when [`AccessScheduler::quiescent`] returned `true`;
    /// the default pairs with the default `quiescent()` and is unreachable.
    fn advance_quiescent(&mut self, _from: Cycle, _n: u64) {
        unreachable!("advance_quiescent called on a scheduler that never reports quiescence");
    }

    /// The earliest cycle strictly after `last` at which a call to
    /// [`AccessScheduler::tick`] could differ from a pure bookkeeping
    /// no-op — a bank arbiter installing or preempting an ongoing access,
    /// a transaction becoming issuable, an escalation or adaptation timer
    /// firing, or the starvation watchdog latching — assuming no new
    /// accesses are enqueued in the interim. `None` means the next cycle
    /// must be stepped.
    ///
    /// Unlike [`AccessScheduler::quiescent`], this covers *busy* periods:
    /// outstanding accesses exist but every transaction is blocked on
    /// SDRAM timing. The event may be conservatively early (the stepped
    /// tick at the event simply turns out to be another no-op) but must
    /// never be late: skipping the ticks in `(last, event)` must be
    /// bit-identical to stepping them.
    ///
    /// The conservative default (`None`) keeps custom schedulers correct:
    /// the simulator simply never busy-skips for them.
    fn next_busy_event(&self, _dram: &Dram, _last: Cycle) -> Option<Cycle> {
        None
    }

    /// Whether enqueueing `access` could move the cycle reported by
    /// [`AccessScheduler::next_busy_event`] *earlier*. The simulator uses
    /// this to decide if a cached busy horizon must be discarded on
    /// arrival. Returning `true` is always safe (the cache is rebuilt);
    /// returning `false` asserts that the arrival cannot create an
    /// earlier observable tick — e.g. the access lands behind an ongoing
    /// transfer that already pins its bank busy through the horizon and
    /// cannot be preempted by this access kind. Arrivals may still move
    /// the event *later* (the watchdog's progress clock advances); a
    /// conservatively early horizon is allowed by the `next_busy_event`
    /// contract, so that direction needs no invalidation.
    ///
    /// The conservative default (`true`) keeps custom schedulers correct.
    fn enqueue_may_advance_horizon(&self, _access: &Access) -> bool {
        true
    }

    /// Batch-advances per-tick bookkeeping (cycle counters, occupancy
    /// sampling at the live outstanding counts, the watchdog's running
    /// max-age fold) over the `n` blocked ticks at cycles `from..from + n`,
    /// bit-identically to calling [`AccessScheduler::tick`] that many times
    /// while every transaction stays blocked. Only called for stretches
    /// validated by [`AccessScheduler::next_busy_event`]; the default pairs
    /// with the default (`None`) implementation and is unreachable.
    fn advance_blocked(&mut self, _from: Cycle, _n: u64) {
        unreachable!("advance_blocked called on a scheduler that never reports busy events");
    }

    /// Serialises the scheduler's full state (queues, adaptation timers,
    /// shared core bookkeeping and statistics) for a checkpoint. The
    /// default reports [`burst_snap::SnapError::Unsupported`] so custom
    /// schedulers outside this crate remain valid — the simulator refuses
    /// to checkpoint them instead of silently losing state.
    fn save_state(&self, _w: &mut burst_snap::SnapWriter) -> Result<(), burst_snap::SnapError> {
        Err(burst_snap::SnapError::Unsupported(
            "scheduler does not support checkpointing",
        ))
    }

    /// Restores state written by [`AccessScheduler::save_state`] into a
    /// scheduler freshly built from the same configuration, geometry and
    /// mechanism. Structural mismatches are rejected as corrupt.
    fn load_state(&mut self, _r: &mut burst_snap::SnapReader) -> Result<(), burst_snap::SnapError> {
        Err(burst_snap::SnapError::Unsupported(
            "scheduler does not support checkpointing",
        ))
    }
}

/// Serialises a set of per-bank (or per-channel) access queues.
pub(crate) fn save_queue_set(
    queues: &[std::collections::VecDeque<Access>],
    w: &mut burst_snap::SnapWriter,
) {
    w.usize(queues.len());
    for q in queues {
        w.usize(q.len());
        for a in q {
            a.save_snap(w);
        }
    }
}

/// Restores queues written by [`save_queue_set`] into a same-sized set.
pub(crate) fn load_queue_set(
    queues: &mut [std::collections::VecDeque<Access>],
    r: &mut burst_snap::SnapReader,
) -> Result<(), burst_snap::SnapError> {
    if r.seq_len(1)? != queues.len() {
        return Err(burst_snap::SnapError::Corrupt("queue count mismatch"));
    }
    for q in queues.iter_mut() {
        let n = r.seq_len(24)?;
        q.clear();
        for _ in 0..n {
            q.push_back(Access::load_snap(r)?);
        }
    }
    Ok(())
}

/// Serialises a set of round-robin cursors.
pub(crate) fn save_cursors(rr: &[usize], w: &mut burst_snap::SnapWriter) {
    w.usize(rr.len());
    for &c in rr {
        w.usize(c);
    }
}

/// Restores cursors written by [`save_cursors`] into a same-sized set.
pub(crate) fn load_cursors(
    rr: &mut [usize],
    r: &mut burst_snap::SnapReader,
) -> Result<(), burst_snap::SnapError> {
    if r.seq_len(8)? != rr.len() {
        return Err(burst_snap::SnapError::Corrupt("cursor count mismatch"));
    }
    for c in rr.iter_mut() {
        *c = r.usize()?;
    }
    Ok(())
}

/// The access reordering mechanisms of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// In order intra bank, round robin inter banks.
    BkInOrder,
    /// Row hit first intra bank, round robin inter banks.
    RowHit,
    /// Intel's out-of-order memory scheduling (US patent 7,127,574).
    Intel,
    /// Intel's scheduling with read preemption.
    IntelRp,
    /// Burst scheduling (no read preemption, no write piggybacking).
    Burst,
    /// Burst scheduling with read preemption.
    BurstRp,
    /// Burst scheduling with write piggybacking.
    BurstWp,
    /// Burst scheduling with a static threshold switching between read
    /// preemption (occupancy below) and write piggybacking (above). The
    /// paper's experiments select 52.
    BurstTh(u32),
    /// Extension (paper Section 7, future work): burst scheduling with a
    /// *dynamic* threshold recomputed on the fly from the read/write
    /// arrival ratio.
    BurstDyn,
    /// Extension (paper Section 7, future work): `Burst_TH52` plus
    /// intra-burst critical-first ordering using CPU criticality hints.
    BurstCrit,
    /// Extension (paper Section 2.2 related work): the adaptive
    /// history-based scheduler of Hur & Lin (MICRO 2004), which matches the
    /// scheduled read/write mix to the program's arrival mix.
    AdaptiveHistory,
}

impl Mechanism {
    /// The threshold the paper found best across its 16 benchmarks.
    pub const PAPER_THRESHOLD: u32 = 52;

    /// All eight mechanisms as simulated in the paper, with the published
    /// threshold of 52.
    pub fn all_paper() -> [Mechanism; 8] {
        [
            Mechanism::BkInOrder,
            Mechanism::RowHit,
            Mechanism::Intel,
            Mechanism::IntelRp,
            Mechanism::Burst,
            Mechanism::BurstRp,
            Mechanism::BurstWp,
            Mechanism::BurstTh(Self::PAPER_THRESHOLD),
        ]
    }

    /// The display name used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Mechanism::BkInOrder => "BkInOrder".to_string(),
            Mechanism::RowHit => "RowHit".to_string(),
            Mechanism::Intel => "Intel".to_string(),
            Mechanism::IntelRp => "Intel_RP".to_string(),
            Mechanism::Burst => "Burst".to_string(),
            Mechanism::BurstRp => "Burst_RP".to_string(),
            Mechanism::BurstWp => "Burst_WP".to_string(),
            Mechanism::BurstTh(t) => format!("Burst_TH{t}"),
            Mechanism::BurstDyn => "Burst_DYN".to_string(),
            Mechanism::BurstCrit => "Burst_CRIT".to_string(),
            Mechanism::AdaptiveHistory => "AdaptHist".to_string(),
        }
    }

    /// Parses a mechanism from its [`Mechanism::name`] display form —
    /// the exact inverse, so journal and CSV rows round-trip losslessly.
    ///
    /// # Examples
    ///
    /// ```
    /// use burst_core::Mechanism;
    ///
    /// assert_eq!(Mechanism::from_name("Burst_TH52"), Some(Mechanism::BurstTh(52)));
    /// assert_eq!(Mechanism::from_name("BkInOrder"), Some(Mechanism::BkInOrder));
    /// assert_eq!(Mechanism::from_name("nonsense"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Mechanism> {
        match name {
            "BkInOrder" => Some(Mechanism::BkInOrder),
            "RowHit" => Some(Mechanism::RowHit),
            "Intel" => Some(Mechanism::Intel),
            "Intel_RP" => Some(Mechanism::IntelRp),
            "Burst" => Some(Mechanism::Burst),
            "Burst_RP" => Some(Mechanism::BurstRp),
            "Burst_WP" => Some(Mechanism::BurstWp),
            "Burst_DYN" => Some(Mechanism::BurstDyn),
            "Burst_CRIT" => Some(Mechanism::BurstCrit),
            "AdaptHist" => Some(Mechanism::AdaptiveHistory),
            _ => name
                .strip_prefix("Burst_TH")
                .and_then(|t| t.parse().ok())
                .map(Mechanism::BurstTh),
        }
    }

    /// Builds a scheduler instance for a device of the given geometry.
    ///
    /// # Examples
    ///
    /// ```
    /// use burst_core::{CtrlConfig, Mechanism};
    /// use burst_dram::Geometry;
    ///
    /// let sched = Mechanism::BurstTh(52).build(CtrlConfig::default(), Geometry::baseline());
    /// assert_eq!(sched.mechanism(), Mechanism::BurstTh(52));
    /// ```
    pub fn build(&self, cfg: CtrlConfig, geom: Geometry) -> Box<dyn AccessScheduler> {
        let write_cap = cfg.write_capacity as u32;
        match *self {
            Mechanism::BkInOrder => Box::new(BkInOrderScheduler::new(cfg, geom)),
            Mechanism::RowHit => Box::new(RowHitScheduler::new(cfg, geom)),
            Mechanism::Intel => Box::new(IntelScheduler::new(cfg, geom, false)),
            Mechanism::IntelRp => Box::new(IntelScheduler::new(cfg, geom, true)),
            Mechanism::Burst => Box::new(BurstScheduler::new(
                cfg,
                geom,
                BurstOptions::static_threshold(0, None, *self),
            )),
            Mechanism::BurstRp => Box::new(BurstScheduler::new(
                cfg,
                geom,
                BurstOptions::static_threshold(write_cap, None, *self),
            )),
            Mechanism::BurstWp => Box::new(BurstScheduler::new(
                cfg,
                geom,
                BurstOptions::static_threshold(0, Some(0), *self),
            )),
            Mechanism::BurstTh(t) => Box::new(BurstScheduler::new(
                cfg,
                geom,
                BurstOptions::static_threshold(t, Some(t), *self),
            )),
            Mechanism::BurstCrit => Box::new(BurstScheduler::new(
                cfg,
                geom,
                BurstOptions {
                    critical_first: true,
                    ..BurstOptions::static_threshold(
                        Self::PAPER_THRESHOLD,
                        Some(Self::PAPER_THRESHOLD),
                        *self,
                    )
                },
            )),
            Mechanism::AdaptiveHistory => Box::new(AdaptiveHistoryScheduler::new(cfg, geom)),
            Mechanism::BurstDyn => Box::new(BurstScheduler::new(
                cfg,
                geom,
                BurstOptions {
                    // Start at the paper's static optimum; adapt every
                    // 1024 memory cycles from the read/write mix.
                    dynamic_period: Some(1024),
                    ..BurstOptions::static_threshold(
                        Self::PAPER_THRESHOLD,
                        Some(Self::PAPER_THRESHOLD),
                        *self,
                    )
                },
            )),
        }
    }
}

impl core::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_figures() {
        let names: Vec<String> = Mechanism::all_paper().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "BkInOrder",
                "RowHit",
                "Intel",
                "Intel_RP",
                "Burst",
                "Burst_RP",
                "Burst_WP",
                "Burst_TH52"
            ]
        );
    }

    #[test]
    fn build_constructs_each_mechanism() {
        for m in Mechanism::all_paper() {
            let s = m.build(CtrlConfig::default(), Geometry::baseline());
            assert_eq!(s.mechanism(), m);
            assert!(s.can_accept(AccessKind::Read));
            assert_eq!(s.outstanding().total(), 0);
        }
    }

    #[test]
    fn every_mechanism_snapshot_round_trips_in_lockstep() {
        use crate::{Access, AccessId};
        use burst_dram::{AddressMapping, Dram, DramConfig, PhysAddr};

        let mut mechs = Mechanism::all_paper().to_vec();
        mechs.extend([
            Mechanism::BurstDyn,
            Mechanism::BurstCrit,
            Mechanism::AdaptiveHistory,
        ]);
        for m in mechs {
            let dram_cfg = DramConfig::baseline();
            let ctrl = CtrlConfig::default();
            let mut dram = Dram::new(dram_cfg, AddressMapping::PageInterleaving);
            let mut sched = m.build(ctrl, dram_cfg.geometry);
            let mut done = Vec::new();
            // Drive a mixed stream so queues, bursts and history fill up,
            // then snapshot mid-flight.
            let mut id = 0u64;
            for now in 0..120u64 {
                if now % 3 != 2 && sched.can_accept(AccessKind::Read) {
                    let kind = if now % 9 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let addr = PhysAddr::new(id * 64 * 17);
                    let a = Access::new(AccessId::new(id), kind, addr, dram.decode(addr), now)
                        .with_critical(id.is_multiple_of(4));
                    sched.enqueue(a, now, &mut done);
                    id += 1;
                }
                sched.tick(&mut dram, now, &mut done);
            }
            let mut w = burst_snap::SnapWriter::new();
            sched
                .save_state(&mut w)
                .expect("built-ins support snapshots");
            let sched_bytes = w.into_bytes();
            let mut dw = burst_snap::SnapWriter::new();
            dram.save_snap(&mut dw);
            let dram_bytes = dw.into_bytes();

            let mut sched2 = m.build(ctrl, dram_cfg.geometry);
            let mut dram2 = Dram::new(dram_cfg, AddressMapping::PageInterleaving);
            let mut r = burst_snap::SnapReader::new(&sched_bytes);
            sched2.load_state(&mut r).unwrap();
            r.finish().unwrap();
            let mut dr = burst_snap::SnapReader::new(&dram_bytes);
            dram2.load_snap(&mut dr).unwrap();
            dr.finish().unwrap();

            // Re-serialisation is byte-identical...
            let mut w2 = burst_snap::SnapWriter::new();
            sched2.save_state(&mut w2).unwrap();
            assert_eq!(sched_bytes, w2.into_bytes(), "{m}: snapshot not stable");

            // ...and both copies evolve identically to drain.
            let mut done2 = done.clone();
            for now in 120..40_000u64 {
                sched.tick(&mut dram, now, &mut done);
                sched2.tick(&mut dram2, now, &mut done2);
                if sched.outstanding().total() == 0 && sched2.outstanding().total() == 0 {
                    break;
                }
            }
            assert_eq!(done, done2, "{m}: divergent completions after restore");
            assert_eq!(
                sched.stats().reads_done,
                sched2.stats().reads_done,
                "{m}: divergent read counts"
            );
            assert_eq!(
                sched.stats().cycles,
                sched2.stats().cycles,
                "{m}: divergent cycle counts"
            );
        }
    }

    #[test]
    fn burst_th_extremes_equal_rp_and_wp_options() {
        // Section 5.4: Burst_RP and Burst_WP are equivalent to Burst_TH64
        // and Burst_TH0 given the write queue size of 64. Occupancy can
        // never exceed the capacity, so TH(64)'s piggyback condition
        // (occupancy > 64) never fires — same behaviour as RP; TH(0)'s
        // preemption condition (occupancy < 0) never fires — same as WP.
        let cap = CtrlConfig::default().write_capacity as u32;
        let geom = Geometry::baseline();
        let th64 = BurstScheduler::new(
            CtrlConfig::default(),
            geom,
            BurstOptions::static_threshold(cap, Some(cap), Mechanism::BurstTh(cap)),
        );
        assert_eq!(th64.options().preempt_below, cap);
        // Piggyback requires occupancy > cap, impossible.
        assert!(th64.options().piggyback_above.unwrap() >= cap);
        let th0 = Mechanism::BurstTh(0);
        if let Mechanism::BurstTh(t) = th0 {
            // Preemption requires occupancy < 0, impossible.
            assert_eq!(t, 0);
        }
    }
}
