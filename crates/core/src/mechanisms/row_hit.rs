//! Row-hit-first scheduling (Rixner et al., ISCA 2000) as simulated by the
//! paper: a unified access queue per bank; the oldest access directed to
//! the same row as the last access to that bank is selected first, else the
//! oldest access overall; banks are served round robin.
//!
//! Reads and writes are treated equally, which is why RowHit achieves the
//! lowest write latency of all mechanisms in Figure 7(b).

use std::collections::VecDeque;

use crate::engine::{Candidate, Core};
use crate::txsched::select_round_robin_limited;
use crate::{
    Access, AccessKind, AccessScheduler, Completion, CtrlConfig, CtrlStats, EnqueueOutcome,
    Mechanism, Outstanding,
};
use burst_dram::{Cycle, Dram, Geometry};

/// Banks the controller can examine per cycle; a blocked pick wastes the
/// cycle (the paper's "best effort" bubble cycles).
const LOOKAHEAD: usize = 16;

/// The `RowHit` scheduler.
///
/// # Examples
///
/// ```
/// use burst_core::{CtrlConfig, Mechanism};
/// use burst_dram::Geometry;
///
/// let sched = Mechanism::RowHit.build(CtrlConfig::default(), Geometry::baseline());
/// assert_eq!(sched.mechanism(), Mechanism::RowHit);
/// ```
#[derive(Debug)]
pub struct RowHitScheduler {
    core: Core,
    queues: Vec<VecDeque<Access>>,
    rr: Vec<usize>,
    // snap: derived(per-tick candidate scratch buffer, cleared before each use)
    scratch: Vec<Candidate>,
}

impl RowHitScheduler {
    /// Creates a row-hit-first scheduler for a device of the given geometry.
    pub fn new(cfg: CtrlConfig, geom: Geometry) -> Self {
        let core = Core::new(cfg, geom);
        let nbanks = core.bank_count();
        let nch = core.channel_count();
        RowHitScheduler {
            core,
            queues: vec![VecDeque::new(); nbanks],
            rr: (0..nch).map(|c| c * nbanks / nch).collect(),
            scratch: Vec::new(),
        }
    }

    /// Selects the bank's next ongoing access: oldest row hit against the
    /// open row, else the oldest access. Same-row accesses keep arrival
    /// order, so same-address hazards cannot reorder. A front (oldest)
    /// access past the watchdog's escalation age bypasses the row-hit
    /// preference entirely.
    fn arbiter(&mut self, bank_idx: usize, dram: &Dram, now: Cycle) {
        if self.core.ongoing(bank_idx).is_some() || self.queues[bank_idx].is_empty() {
            return;
        }
        let escalate_age = self.core.cfg().watchdog.escalate_age;
        let front_escalated = self.queues[bank_idx]
            .front()
            .map(|a| now.saturating_sub(a.arrival) >= escalate_age)
            .unwrap_or(false);
        let (ch, rank, bk) = self.core.bank_coords(bank_idx);
        let open_row = dram.channel(usize::from(ch)).bank(rank, bk).open_row();
        let queue = &mut self.queues[bank_idx];
        let idx = if front_escalated {
            0
        } else {
            open_row
                .and_then(|row| {
                    queue
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.loc.row == row)
                        .min_by_key(|(_, a)| a.id)
                        .map(|(i, _)| i)
                })
                .unwrap_or(0)
        };
        let access = queue.remove(idx).expect("index in range");
        self.core
            .set_ongoing(bank_idx, access)
            .expect("bank verified idle at arbiter entry");
    }
}

impl AccessScheduler for RowHitScheduler {
    fn mechanism(&self) -> Mechanism {
        Mechanism::RowHit
    }

    fn can_accept(&self, kind: AccessKind) -> bool {
        self.core.can_accept(kind)
    }

    fn enqueue(
        &mut self,
        access: Access,
        _now: Cycle,
        _completions: &mut Vec<Completion>,
    ) -> EnqueueOutcome {
        if !self.can_accept(access.kind) {
            return EnqueueOutcome::Rejected;
        }
        self.core.note_arrival(&access);
        let bank = self.core.global_bank(access.loc);
        self.queues[bank].push_back(access);
        EnqueueOutcome::Queued
    }

    fn tick(&mut self, dram: &mut Dram, now: Cycle, completions: &mut Vec<Completion>) {
        dram.tick(now);
        self.core.sample();
        self.core.watchdog_tick(now);
        for access in self.core.take_retries() {
            let bank = self.core.global_bank(access.loc);
            self.queues[bank].push_front(access);
        }
        for channel in 0..self.core.channel_count() {
            for bank in self.core.bank_range(channel) {
                self.arbiter(bank, dram, now);
            }
            let mut cands = std::mem::take(&mut self.scratch);
            self.core
                .fill_all_candidates(dram, channel, now, &mut cands);
            let range = self.core.bank_range(channel);
            match select_round_robin_limited(&cands, &mut self.rr[channel], range, LOOKAHEAD) {
                Some(cand) => {
                    self.core.issue_candidate(dram, now, &cand, completions);
                }
                None => self.core.steer_to_oldest(channel),
            }
            self.scratch = cands;
        }
    }

    fn stats(&self) -> &CtrlStats {
        self.core.stats()
    }

    fn outstanding(&self) -> Outstanding {
        Outstanding {
            reads: self.core.reads_outstanding(),
            writes: self.core.writes_outstanding(),
        }
    }

    fn stall_diagnostic(&self) -> Option<crate::StallDiagnostic> {
        self.core.stall()
    }

    fn quiescent(&self) -> bool {
        self.core.quiescent()
    }

    fn advance_quiescent(&mut self, from: Cycle, n: u64) {
        self.core.advance_quiescent(from, n);
    }

    fn next_busy_event(&self, dram: &Dram, last: Cycle) -> Option<Cycle> {
        // The arbiter installs whenever a bank is idle with a non-empty
        // queue (the row-hit preference only changes *which* access, not
        // *whether* one installs), so such a tick is never a no-op.
        for (bank, q) in self.queues.iter().enumerate() {
            if !q.is_empty() && self.core.ongoing(bank).is_none() {
                return None;
            }
        }
        self.core.busy_event_base(dram, last)
    }

    fn enqueue_may_advance_horizon(&self, _access: &Access) -> bool {
        // Conservative: an arrival on an idle bank makes the next tick a
        // real one (see `next_busy_event`), so every enqueue invalidates
        // a computed horizon.
        true
    }

    fn advance_blocked(&mut self, from: Cycle, n: u64) {
        self.core.advance_blocked(from, n);
    }

    fn save_state(&self, w: &mut burst_snap::SnapWriter) -> Result<(), burst_snap::SnapError> {
        self.core.save_snap(w);
        super::save_queue_set(&self.queues, w);
        super::save_cursors(&self.rr, w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut burst_snap::SnapReader) -> Result<(), burst_snap::SnapError> {
        self.core.load_snap(r)?;
        super::load_queue_set(&mut self.queues, r)?;
        super::load_cursors(&mut self.rr, r)?;
        Ok(())
    }
}
