//! Bank-in-order scheduling — the paper's baseline (Table 3).
//!
//! Accesses within the same bank are scheduled in the same order as they
//! were issued; accesses from different banks are selected in a round robin
//! fashion. Transactions still interleave across banks (bank parallelism),
//! but no access ever bypasses an older access to the same bank.

use std::collections::VecDeque;

use crate::engine::{Candidate, Core};
use crate::txsched::select_round_robin_limited;
use crate::{
    Access, AccessKind, AccessScheduler, Completion, CtrlConfig, CtrlStats, EnqueueOutcome,
    Mechanism, Outstanding,
};
use burst_dram::{Cycle, Dram, Geometry};

/// Banks a conventional controller can examine per cycle before giving up
/// (limited scheduling logic; a blocked pick wastes the cycle).
const LOOKAHEAD: usize = 16;

/// The `BkInOrder` baseline scheduler.
///
/// # Examples
///
/// ```
/// use burst_core::{CtrlConfig, Mechanism};
/// use burst_dram::Geometry;
///
/// let sched = Mechanism::BkInOrder.build(CtrlConfig::default(), Geometry::baseline());
/// assert_eq!(sched.mechanism(), Mechanism::BkInOrder);
/// ```
#[derive(Debug)]
pub struct BkInOrderScheduler {
    core: Core,
    queues: Vec<VecDeque<Access>>,
    rr: Vec<usize>,
    // snap: derived(per-tick candidate scratch buffer, cleared before each use)
    scratch: Vec<Candidate>,
}

impl BkInOrderScheduler {
    /// Creates the baseline scheduler for a device of the given geometry.
    pub fn new(cfg: CtrlConfig, geom: Geometry) -> Self {
        let core = Core::new(cfg, geom);
        let nbanks = core.bank_count();
        let nch = core.channel_count();
        BkInOrderScheduler {
            core,
            queues: vec![VecDeque::new(); nbanks],
            rr: (0..nch).map(|c| c * nbanks / nch).collect(),
            scratch: Vec::new(),
        }
    }
}

impl AccessScheduler for BkInOrderScheduler {
    fn mechanism(&self) -> Mechanism {
        Mechanism::BkInOrder
    }

    fn can_accept(&self, kind: AccessKind) -> bool {
        self.core.can_accept(kind)
    }

    fn enqueue(
        &mut self,
        access: Access,
        _now: Cycle,
        _completions: &mut Vec<Completion>,
    ) -> EnqueueOutcome {
        if !self.can_accept(access.kind) {
            return EnqueueOutcome::Rejected;
        }
        self.core.note_arrival(&access);
        let bank = self.core.global_bank(access.loc);
        self.queues[bank].push_back(access);
        EnqueueOutcome::Queued
    }

    fn tick(&mut self, dram: &mut Dram, now: Cycle, completions: &mut Vec<Completion>) {
        dram.tick(now);
        self.core.sample();
        self.core.watchdog_tick(now);
        // Faulted accesses retry at the front: intra-bank order is
        // preserved because a retry is the bank's oldest access anyway.
        for access in self.core.take_retries() {
            let bank = self.core.global_bank(access.loc);
            self.queues[bank].push_front(access);
        }
        for channel in 0..self.core.channel_count() {
            // In order intra bank: each idle bank takes its queue head —
            // already oldest-first, so watchdog escalation needs no
            // intra-bank override here (candidates still carry the
            // escalated flag for the transaction scheduler).
            for bank in self.core.bank_range(channel) {
                if self.core.ongoing(bank).is_none() {
                    if let Some(access) = self.queues[bank].pop_front() {
                        self.core
                            .set_ongoing(bank, access)
                            .expect("bank verified idle before pop");
                    }
                }
            }
            let mut cands = std::mem::take(&mut self.scratch);
            self.core
                .fill_all_candidates(dram, channel, now, &mut cands);
            let range = self.core.bank_range(channel);
            match select_round_robin_limited(&cands, &mut self.rr[channel], range, LOOKAHEAD) {
                Some(cand) => {
                    self.core.issue_candidate(dram, now, &cand, completions);
                }
                None => self.core.steer_to_oldest(channel),
            }
            self.scratch = cands;
        }
    }

    fn stats(&self) -> &CtrlStats {
        self.core.stats()
    }

    fn outstanding(&self) -> Outstanding {
        Outstanding {
            reads: self.core.reads_outstanding(),
            writes: self.core.writes_outstanding(),
        }
    }

    fn stall_diagnostic(&self) -> Option<crate::StallDiagnostic> {
        self.core.stall()
    }

    fn quiescent(&self) -> bool {
        self.core.quiescent()
    }

    fn advance_quiescent(&mut self, from: Cycle, n: u64) {
        self.core.advance_quiescent(from, n);
    }

    fn next_busy_event(&self, dram: &Dram, last: Cycle) -> Option<Cycle> {
        // An idle bank with queued work installs a new ongoing access on
        // the very next tick, so the stretch cannot be skipped.
        for (bank, q) in self.queues.iter().enumerate() {
            if !q.is_empty() && self.core.ongoing(bank).is_none() {
                return None;
            }
        }
        // Otherwise every arbiter is a no-op and only SDRAM timing (or the
        // watchdog) can change a tick's outcome.
        self.core.busy_event_base(dram, last)
    }

    fn enqueue_may_advance_horizon(&self, _access: &Access) -> bool {
        // Conservative: an arrival on an idle bank makes the next tick a
        // real one (see `next_busy_event`), so every enqueue invalidates
        // a computed horizon.
        true
    }

    fn advance_blocked(&mut self, from: Cycle, n: u64) {
        self.core.advance_blocked(from, n);
    }

    fn save_state(&self, w: &mut burst_snap::SnapWriter) -> Result<(), burst_snap::SnapError> {
        self.core.save_snap(w);
        super::save_queue_set(&self.queues, w);
        super::save_cursors(&self.rr, w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut burst_snap::SnapReader) -> Result<(), burst_snap::SnapError> {
        self.core.load_snap(r)?;
        super::load_queue_set(&mut self.queues, r)?;
        super::load_cursors(&mut self.rr, r)?;
        Ok(())
    }
}
