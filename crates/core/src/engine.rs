//! Shared controller machinery used by every access reordering mechanism:
//! per-bank ongoing-access slots, transaction derivation, issue bookkeeping
//! and statistics sampling.
//!
//! Each bank has at most one *ongoing access* — "the access for which
//! transactions are currently being scheduled, but have not yet been
//! completed" (paper Section 3.2). Mechanisms differ in how the ongoing
//! access is chosen (the bank arbiter) and in which unblocked transaction is
//! issued each cycle (the transaction scheduler); everything else lives here.

use std::collections::{BTreeMap, VecDeque};

use crate::{Access, AccessId, AccessKind, Completion, CtrlConfig, CtrlStats, StallDiagnostic};
use burst_dram::{Command, Cycle, Dram, Geometry, Loc, RowState};

/// Arrival cycles of outstanding accesses, keyed by dense access id.
///
/// Ids are assigned monotonically, so a windowed slab (slot `id - base`)
/// replaces the former `BTreeMap<AccessId, Cycle>`: insertion and removal
/// are array writes and the oldest outstanding access — queried every tick
/// by the watchdog — is simply the window's front. Slots of completed (or
/// never-arrived, e.g. forwarded) ids hold a sentinel and are popped from
/// the front as they become oldest.
#[derive(Debug, Default)]
struct AgeWindow {
    /// Access id of `slots[0]`.
    base: u64,
    /// Arrival cycle per id, or [`AgeWindow::EMPTY`] for ids not currently
    /// outstanding. Invariant: the front slot, if any, is never empty.
    slots: VecDeque<u64>,
}

impl AgeWindow {
    /// Sentinel for "not outstanding". Arrival cycles never reach it.
    const EMPTY: u64 = u64::MAX;

    fn insert(&mut self, id: AccessId, arrival: Cycle) {
        debug_assert_ne!(arrival, Self::EMPTY, "sentinel collision");
        if self.slots.is_empty() {
            self.base = id.value();
        } else if id.value() < self.base {
            // Defensive: callers outside the simulator may enqueue ids out
            // of order; grow the window backwards to keep indexing dense.
            for _ in 0..self.base - id.value() {
                self.slots.push_front(Self::EMPTY);
            }
            self.base = id.value();
        }
        let idx = id.value() - self.base;
        while (self.slots.len() as u64) <= idx {
            self.slots.push_back(Self::EMPTY);
        }
        self.slots[idx as usize] = arrival;
    }

    fn remove(&mut self, id: AccessId) {
        let Some(idx) = id.value().checked_sub(self.base) else {
            return;
        };
        if idx >= self.slots.len() as u64 {
            return;
        }
        self.slots[idx as usize] = Self::EMPTY;
        while self.slots.front() == Some(&Self::EMPTY) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// The oldest outstanding access: `(id, arrival)`.
    fn oldest(&self) -> Option<(AccessId, Cycle)> {
        self.slots
            .front()
            .map(|&arrival| (AccessId::new(self.base), arrival))
    }

    fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        w.u64(self.base);
        w.usize(self.slots.len());
        for &arrival in &self.slots {
            w.u64(arrival);
        }
    }

    fn load_snap(&mut self, r: &mut burst_snap::SnapReader) -> Result<(), burst_snap::SnapError> {
        self.base = r.u64()?;
        let n = r.seq_len(8)?;
        self.slots.clear();
        for _ in 0..n {
            self.slots.push_back(r.u64()?);
        }
        Ok(())
    }
}

/// The access a bank is currently working on.
#[derive(Debug, Clone, Copy)]
pub struct Ongoing {
    /// The access being executed.
    pub access: Access,
    /// Whether any transaction has been issued for it yet. Accesses are
    /// classified (row hit/empty/conflict) when their first transaction
    /// issues; preempting an already-started write re-classifies it on
    /// restart, mirroring the extra device work the restart performs.
    pub started: bool,
}

/// A schedulable transaction: one bank's ongoing access whose next
/// transaction is unblocked at the current cycle.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Global bank index (see [`Core::global_bank`]).
    pub bank: usize,
    /// The transaction to issue.
    pub cmd: Command,
    /// Target location.
    pub loc: Loc,
    /// Read or write.
    pub kind: AccessKind,
    /// Arrival cycle of the access (for oldest-first tie-breaks).
    pub arrival: Cycle,
    /// Access id (stable tie-break).
    pub id: AccessId,
    /// Whether the access already started (Intel's finish-first rule).
    pub started: bool,
    /// Whether the transaction satisfies all timing constraints this
    /// cycle. Burst's Table 2 only considers unblocked transactions;
    /// conventional schedulers commit by policy order and may pick a
    /// blocked one, wasting the cycle (the paper's "bubble cycles").
    pub unblocked: bool,
    /// Whether the access exceeded the watchdog's escalation age; the
    /// transaction schedulers give escalated candidates top priority.
    pub escalated: bool,
}

/// Shared bookkeeping core embedded by each mechanism.
#[derive(Debug)]
pub struct Core {
    cfg: CtrlConfig, // snap: derived(construction input; restore re-supplies it)
    geom: Geometry,  // snap: derived(construction input; restore re-supplies it)
    ongoing: Vec<Option<Ongoing>>,
    last_bank: Vec<Option<usize>>,
    last_rank: Vec<Option<u8>>,
    stats: CtrlStats,
    reads_outstanding: usize,
    writes_outstanding: usize,
    /// Cached `(id, bank, rank)` of the oldest ongoing access per channel,
    /// recomputed lazily (see `ongoing_dirty`) by [`Core::steer_to_oldest`].
    // snap: derived(lazy steering cache; restore marks every channel dirty)
    oldest_ongoing: Vec<Option<(AccessId, usize, u8)>>,
    /// Whether a channel's ongoing set changed since its cache entry was
    /// computed. Set on every install/remove; most ticks change nothing,
    /// so the steering scan over all banks is skipped.
    // snap: derived(cache-invalidation flags; restore sets all true)
    ongoing_dirty: Vec<bool>,
    /// Occupied-slot bitmap, one bit per global bank: set iff the bank has
    /// an ongoing access. Mirrors `ongoing` exactly (derived state, absent
    /// from checkpoints) so the per-cycle candidate/steering/event scans
    /// touch only occupied slots instead of every bank.
    // snap: derived(bitmap mirror of `ongoing`; restore rebuilds it)
    ongoing_mask: Vec<u64>,
    /// Per-bank cached next transaction of the slot's ongoing access and a
    /// lower bound on the first cycle it could pass [`Channel::can_issue`]
    /// (derived state, absent from checkpoints). The command stays valid
    /// while the bank's device state is untouched — only a command issued
    /// *to this bank* or a refresh changes it, and both drop the entry.
    /// The bound stays a valid lower bound across *other* banks' issues
    /// because every cross-bank timing side effect is monotone: `*_ready_at`
    /// stamps and `data_busy_until` only grow, and a turnaround penalty the
    /// cached command no longer pays against the newest transfer was paid
    /// by that transfer itself (the per-attribute gap obeys a triangle
    /// inequality). So `now < bound` proves the slot contributes no
    /// unblocked candidate, with no timing query at all.
    // snap: derived(per-bank candidate cache; restore drops every entry)
    cand_cache: Vec<Option<(Command, Cycle)>>,
    /// `BusStats::refreshes` of each channel when its `cand_cache` entries
    /// were computed. A refresh rewrites bank rows without passing through
    /// [`Core::issue_candidate`], so a mismatch drops the whole channel's
    /// entries. `u64::MAX` forces the drop (fresh core or restored
    /// checkpoint).
    // snap: derived(refresh-epoch stamps; restore forces the drop via u64::MAX)
    cand_epoch: Vec<u64>,
    /// Per-channel aggregate of `cand_cache`: `Some(t)` proves no occupied
    /// slot of the channel yields an unblocked candidate before cycle `t`,
    /// valid while the slot set, the per-bank device states (refresh
    /// epoch) and the channel's issue history are unchanged — any of those
    /// clears it. Lets a barren stretch skip the candidate scan outright.
    // snap: derived(aggregate of `cand_cache`; restore clears it)
    chan_bound: Vec<Option<Cycle>>,
    /// Candidate-scan worklist, one bit per global bank: set iff the next
    /// [`Core::fill_candidates`] scan must examine the bank — its cached
    /// entry is gone (slot or device state changed) or its bound has come
    /// due. A clear bit carries a proof: the bank's cached bound lies in
    /// the future (see the monotonicity argument on `cand_cache`), and
    /// `next_due` is never later than any cleared bound, so the scan skips
    /// the bank with no per-slot work at all until it is promoted back.
    // snap: derived(scan worklist over `cand_cache` bounds; restore sets every bit)
    due_mask: Vec<u64>,
    /// Per-channel minimum cached bound over cleared-`due_mask` occupied
    /// banks (`Cycle::MAX` when none is cleared): once `now` reaches it,
    /// the scan first promotes newly due banks back into the worklist.
    // snap: derived(promotion clock for `due_mask`; restore resets to MAX)
    next_due: Vec<Cycle>,
    /// Arrival cycle of every outstanding access, keyed by id. Ids and
    /// arrivals are both monotone, so the first entry is the oldest access.
    ages: AgeWindow,
    /// Attempt counts of accesses that have faulted at least once.
    /// BTreeMap, not HashMap: iterated during snapshotting, and anything
    /// iterated in timing-observable code must have a deterministic order.
    attempts: BTreeMap<AccessId, u32>,
    /// Faulted accesses awaiting re-enqueue by the mechanism's tick.
    retry_pending: Vec<Access>,
    /// Cycle of the last forward progress (transaction issue or arrival).
    last_progress: Cycle,
    /// Latched forward-progress failure, if any.
    stall: Option<StallDiagnostic>,
    /// Ticks until the next occupancy sample (interval-based sampling).
    sample_countdown: u32,
}

impl Core {
    /// Creates the core for a device of the given geometry.
    pub fn new(cfg: CtrlConfig, geom: Geometry) -> Self {
        let nbanks = geom.total_banks() as usize;
        let nch = usize::from(geom.channels);
        Core {
            stats: CtrlStats::new(cfg.pool_capacity),
            cfg,
            geom,
            ongoing: vec![None; nbanks],
            last_bank: vec![None; nch],
            last_rank: vec![None; nch],
            oldest_ongoing: vec![None; nch],
            ongoing_dirty: vec![true; nch],
            ongoing_mask: vec![0; nbanks.div_ceil(64)],
            cand_cache: vec![None; nbanks],
            cand_epoch: vec![u64::MAX; nch],
            chan_bound: vec![None; nch],
            due_mask: vec![!0; nbanks.div_ceil(64)],
            next_due: vec![Cycle::MAX; nch],
            reads_outstanding: 0,
            writes_outstanding: 0,
            ages: AgeWindow::default(),
            attempts: BTreeMap::new(),
            retry_pending: Vec::new(),
            last_progress: 0,
            stall: None,
            sample_countdown: 1,
        }
    }

    /// Controller configuration.
    pub fn cfg(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Exclusive statistics access (for mechanism-specific counters).
    pub fn stats_mut(&mut self) -> &mut CtrlStats {
        &mut self.stats
    }

    /// Number of banks per channel.
    pub fn banks_per_channel(&self) -> usize {
        usize::from(self.geom.ranks_per_channel) * usize::from(self.geom.banks_per_rank)
    }

    /// Total banks across all channels.
    pub fn bank_count(&self) -> usize {
        self.ongoing.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.last_bank.len()
    }

    /// Banks per rank (geometry passthrough).
    pub fn banks_per_rank(&self) -> usize {
        usize::from(self.geom.banks_per_rank)
    }

    /// Reverse-maps a global bank index to `(channel, rank, bank)`.
    pub fn bank_coords(&self, bank_idx: usize) -> (u8, u8, u8) {
        let per_channel = self.banks_per_channel();
        let bpr = self.banks_per_rank();
        let channel = bank_idx / per_channel;
        let within = bank_idx % per_channel;
        (
            (channel as u8),
            ((within / bpr) as u8),
            ((within % bpr) as u8),
        )
    }

    /// Maps a location to its global bank index.
    pub fn global_bank(&self, loc: Loc) -> usize {
        (usize::from(loc.channel) * usize::from(self.geom.ranks_per_channel)
            + usize::from(loc.rank))
            * usize::from(self.geom.banks_per_rank)
            + usize::from(loc.bank)
    }

    /// The range of global bank indices belonging to `channel`.
    pub fn bank_range(&self, channel: usize) -> core::ops::Range<usize> {
        let per = self.banks_per_channel();
        channel * per..(channel + 1) * per
    }

    /// Outstanding read count (queued + ongoing).
    pub fn reads_outstanding(&self) -> usize {
        self.reads_outstanding
    }

    /// Outstanding write count (queued + ongoing).
    pub fn writes_outstanding(&self) -> usize {
        self.writes_outstanding
    }

    /// Records an access entering the controller (enqueue).
    pub fn note_arrival(&mut self, access: &Access) {
        match access.kind {
            AccessKind::Read => self.reads_outstanding += 1,
            AccessKind::Write => self.writes_outstanding += 1,
        }
        self.ages.insert(access.id, access.arrival);
        // An arrival is forward progress: the stall clock measures time
        // with a *static* outstanding set and no issue.
        self.last_progress = self.last_progress.max(access.arrival);
    }

    /// Records a read leaving via write-queue forwarding (never counted as
    /// outstanding).
    pub fn note_forward(&mut self, access: &Access, now: Cycle, completions: &mut Vec<Completion>) {
        self.stats.forwards += 1;
        self.stats.read_done(0);
        completions.push(Completion {
            id: access.id,
            kind: AccessKind::Read,
            done_at: now,
            latency: 0,
            forwarded: true,
        });
    }

    /// Whether a new access of `kind` can be accepted: the pool has space
    /// and the write queue is not saturated (a full write queue blocks all
    /// new accesses — paper Section 3.2).
    pub fn can_accept(&self, _kind: AccessKind) -> bool {
        self.reads_outstanding + self.writes_outstanding < self.cfg.pool_capacity
            && self.writes_outstanding < self.cfg.write_capacity
    }

    /// The ongoing access of a bank.
    pub fn ongoing(&self, bank: usize) -> Option<&Ongoing> {
        self.ongoing[bank].as_ref()
    }

    /// Installs `access` as the bank's ongoing access.
    ///
    /// # Errors
    ///
    /// Returns the access back if the slot is already occupied — a bank
    /// arbiter bug that previously only debug-asserted; in release builds
    /// it silently dropped the displaced access. Callers must handle or
    /// `expect` the result.
    #[must_use = "an occupied slot returns the access back; dropping it loses the access"]
    pub fn set_ongoing(&mut self, bank: usize, access: Access) -> Result<(), Access> {
        if self.ongoing[bank].is_some() {
            return Err(access);
        }
        let entry = (access.id, bank, access.loc.rank);
        self.ongoing[bank] = Some(Ongoing {
            access,
            started: false,
        });
        self.ongoing_mask[bank >> 6] |= 1 << (bank & 63);
        self.cand_cache[bank] = None;
        self.due_mask[bank >> 6] |= 1 << (bank & 63);
        let chan = bank / self.banks_per_channel();
        self.chan_bound[chan] = None;
        // An insertion merges into the steering minimum in O(1); a clean
        // cache stays clean, so the rescan in `steer_to_oldest` runs only
        // after the tracked oldest itself left its slot.
        if !self.ongoing_dirty[chan] {
            match self.oldest_ongoing[chan] {
                Some(cur) if cur <= entry => {}
                _ => self.oldest_ongoing[chan] = Some(entry),
            }
        }
        Ok(())
    }

    /// Marks the steering cache for `chan` after the ongoing access of
    /// `bank` left its slot: removing anything but the tracked minimum
    /// leaves the minimum intact.
    fn note_ongoing_removed(&mut self, chan: usize, bank: usize) {
        if !self.ongoing_dirty[chan] {
            match self.oldest_ongoing[chan] {
                Some((_, b, _)) if b != bank => {}
                _ => self.ongoing_dirty[chan] = true,
            }
        }
    }

    /// Removes and returns the bank's ongoing access (read preemption).
    pub fn clear_ongoing(&mut self, bank: usize) -> Option<Access> {
        let taken = self.ongoing[bank].take().map(|o| o.access);
        if taken.is_some() {
            self.ongoing_mask[bank >> 6] &= !(1 << (bank & 63));
            self.cand_cache[bank] = None;
            self.due_mask[bank >> 6] |= 1 << (bank & 63);
            let chan = bank / self.banks_per_channel();
            self.chan_bound[chan] = None;
            self.note_ongoing_removed(chan, bank);
        }
        taken
    }

    /// Derives the next transaction for an access at `loc`: column access on
    /// a row hit, activate on a row empty, precharge on a row conflict. The
    /// row policy decides whether column accesses carry auto-precharge.
    pub fn next_command(&self, loc: Loc, kind: AccessKind, dram: &Dram) -> Command {
        let ch = dram.channel(usize::from(loc.channel));
        match ch.row_state(loc) {
            RowState::Hit => Command::Column {
                loc,
                dir: kind.dir(),
                auto_precharge: self.cfg.row_policy.auto_precharge(),
            },
            RowState::Empty => Command::Activate(loc),
            RowState::Conflict => Command::Precharge(loc),
        }
    }

    /// Collects every bank of `channel` whose ongoing access has an
    /// unblocked next transaction at `now`.
    pub fn fill_candidates(
        &mut self,
        dram: &Dram,
        channel: usize,
        now: Cycle,
        out: &mut Vec<Candidate>,
    ) {
        self.fill_candidates_impl(dram, channel, now, out, false);
    }

    /// Like [`Core::fill_candidates`], but also includes banks whose next
    /// transaction is currently blocked (with `unblocked == false`), for
    /// schedulers that commit by policy order without timing awareness.
    pub fn fill_all_candidates(
        &mut self,
        dram: &Dram,
        channel: usize,
        now: Cycle,
        out: &mut Vec<Candidate>,
    ) {
        self.fill_candidates_impl(dram, channel, now, out, true);
    }

    /// Calls `f` for every bank of `channel` holding an ongoing access, in
    /// ascending bank order, walking the occupied-slot bitmap instead of
    /// probing every slot.
    fn for_each_occupied(&self, channel: usize, mut f: impl FnMut(usize, &Ongoing)) {
        let range = self.bank_range(channel);
        let mut bank = range.start;
        while bank < range.end {
            let shifted = self.ongoing_mask[bank >> 6] >> (bank & 63);
            if shifted == 0 {
                bank = (bank | 63) + 1;
                continue;
            }
            bank += shifted.trailing_zeros() as usize;
            if bank >= range.end {
                break;
            }
            let og = self.ongoing[bank]
                .as_ref()
                .expect("ongoing_mask bit set on an empty slot");
            f(bank, og);
            bank += 1;
        }
    }

    /// O(1) pre-check for the burst transaction scheduler: `true` proves
    /// the channel yields no unblocked candidate at `now` (see
    /// `chan_bound`), so the candidate scan and selection can be skipped
    /// without observable difference. Conservative: a stale refresh epoch
    /// simply reports `false` and the scan runs.
    pub fn candidates_barren(&self, dram: &Dram, channel: usize, now: Cycle) -> bool {
        self.cand_epoch[channel] == dram.channel(channel).stats().refreshes
            && self.chan_bound[channel].is_some_and(|t| now < t)
    }

    fn fill_candidates_impl(
        &mut self,
        dram: &Dram,
        channel: usize,
        now: Cycle,
        out: &mut Vec<Candidate>,
        include_blocked: bool,
    ) {
        out.clear();
        let ch = dram.channel(channel);
        let epoch = ch.stats().refreshes;
        if self.cand_epoch[channel] != epoch {
            for bank in self.bank_range(channel) {
                self.cand_cache[bank] = None;
                self.due_mask[bank >> 6] |= 1 << (bank & 63);
            }
            self.cand_epoch[channel] = epoch;
            self.chan_bound[channel] = None;
            self.next_due[channel] = Cycle::MAX;
        }
        let escalate_age = self.cfg.watchdog.escalate_age;
        let range = self.bank_range(channel);
        // Promote newly due banks back into the scan worklist: a cleared
        // bank's cached bound is a valid lower bound forever (monotone
        // device timing), so it re-enters the scan exactly when `now`
        // reaches it. `include_blocked` callers report blocked candidates
        // too and always take the full walk below.
        if !include_blocked && now >= self.next_due[channel] {
            let mut still_clear = Cycle::MAX;
            let mut bank = range.start;
            while bank < range.end {
                let word = bank >> 6;
                let shifted = (self.ongoing_mask[word] & !self.due_mask[word]) >> (bank & 63);
                if shifted == 0 {
                    bank = (bank | 63) + 1;
                    continue;
                }
                bank += shifted.trailing_zeros() as usize;
                if bank >= range.end {
                    break;
                }
                match self.cand_cache[bank] {
                    Some((_, bound)) if bound > now => still_clear = still_clear.min(bound),
                    _ => self.due_mask[bank >> 6] |= 1 << (bank & 63),
                }
                bank += 1;
            }
            self.next_due[channel] = still_clear;
        }
        let mut min_bound = u64::MAX;
        let mut any_unblocked = false;
        let mut bank = range.start;
        while bank < range.end {
            let word = bank >> 6;
            let mask = if include_blocked {
                self.ongoing_mask[word]
            } else {
                self.ongoing_mask[word] & self.due_mask[word]
            };
            let shifted = mask >> (bank & 63);
            if shifted == 0 {
                bank = (bank | 63) + 1;
                continue;
            }
            bank += shifted.trailing_zeros() as usize;
            if bank >= range.end {
                break;
            }
            let og = self.ongoing[bank]
                .as_ref()
                .expect("ongoing_mask bit set on an empty slot");
            let (cmd, bound) = match self.cand_cache[bank] {
                Some(c) => c,
                None => {
                    let cmd = self.next_command(og.access.loc, og.access.kind, dram);
                    let bound = ch.earliest_issue(&cmd, now).unwrap_or(now);
                    self.cand_cache[bank] = Some((cmd, bound));
                    (cmd, bound)
                }
            };
            // Below the cached bound the command is provably illegal — no
            // timing query needed. At or past it, verify for real; a miss
            // there (command bus taken this cycle, refresh pending on the
            // rank) re-derives the bound from the current timing state.
            let unblocked = if now < bound {
                min_bound = min_bound.min(bound);
                if !include_blocked {
                    self.due_mask[word] &= !(1 << (bank & 63));
                    self.next_due[channel] = self.next_due[channel].min(bound);
                }
                false
            } else {
                let ok = ch.can_issue(&cmd, now);
                if !ok {
                    let bound = ch.earliest_issue(&cmd, now).unwrap_or(now);
                    self.cand_cache[bank] = Some((cmd, bound));
                    min_bound = min_bound.min(bound);
                    if !include_blocked && bound > now {
                        self.due_mask[word] &= !(1 << (bank & 63));
                        self.next_due[channel] = self.next_due[channel].min(bound);
                    }
                }
                ok
            };
            any_unblocked |= unblocked;
            if unblocked || include_blocked {
                out.push(Candidate {
                    bank,
                    cmd,
                    loc: og.access.loc,
                    kind: og.access.kind,
                    arrival: og.access.arrival,
                    id: og.access.id,
                    started: og.started,
                    unblocked,
                    escalated: now.saturating_sub(og.access.arrival) >= escalate_age,
                });
            }
            bank += 1;
        }
        // With every occupied slot provably blocked until `min_bound` (the
        // worklist-skipped slots are blocked until at least `next_due`),
        // the whole scan is skippable until then — or until a slot, device
        // or issue change drops the aggregate.
        if !any_unblocked {
            let skipped_until = if include_blocked {
                Cycle::MAX
            } else {
                self.next_due[channel]
            };
            self.chan_bound[channel] = Some(min_bound.min(skipped_until));
        }
    }

    /// The last bank/rank a transaction was scheduled for on `channel`.
    pub fn last_target(&self, channel: usize) -> (Option<usize>, Option<u8>) {
        (self.last_bank[channel], self.last_rank[channel])
    }

    /// Fig. 6 lines 14–15: when nothing could be scheduled, steer the next
    /// cycle toward the bank holding the oldest ongoing access.
    pub fn steer_to_oldest(&mut self, channel: usize) {
        if self.ongoing_dirty[channel] {
            let mut min = None;
            self.for_each_occupied(channel, |b, o| {
                let entry = (o.access.id, b, o.access.loc.rank);
                if min.is_none_or(|m| entry < m) {
                    min = Some(entry);
                }
            });
            self.oldest_ongoing[channel] = min;
            self.ongoing_dirty[channel] = false;
        }
        if let Some((_, bank, rank)) = self.oldest_ongoing[channel] {
            self.last_bank[channel] = Some(bank);
            self.last_rank[channel] = Some(rank);
        }
    }

    /// Issues `cand`'s transaction, updating classification, last-target
    /// steering, pool counts and completions. Returns `true` when the
    /// transaction was a column access, i.e. the ongoing access finished
    /// scheduling and its slot is now free.
    pub fn issue_candidate(
        &mut self,
        dram: &mut Dram,
        now: Cycle,
        cand: &Candidate,
        completions: &mut Vec<Completion>,
    ) -> bool {
        let chan = usize::from(cand.loc.channel);
        // Classify on first transaction issue.
        {
            let state = dram.channel(chan).row_state(cand.loc);
            let og = self.ongoing[cand.bank]
                .as_mut()
                .expect("candidate without ongoing access");
            if !og.started {
                og.started = true;
                self.stats.classify(state);
                // Count each access that begins service past the watchdog's
                // escalation age exactly once, regardless of which arbiter
                // path promoted it.
                if cand.escalated {
                    self.stats.escalations += 1;
                }
            }
        }
        let issued = dram.channel_mut(chan).issue(&cand.cmd, now);
        // The command changed this bank's device state, so the slot's next
        // transaction must be re-derived. Other banks' cached entries stay
        // valid lower bounds (see `cand_cache`).
        self.cand_cache[cand.bank] = None;
        self.due_mask[cand.bank >> 6] |= 1 << (cand.bank & 63);
        self.chan_bound[chan] = None;
        self.last_bank[chan] = Some(cand.bank);
        self.last_rank[chan] = Some(cand.loc.rank);
        self.last_progress = now;
        if cand.cmd.is_column() {
            let og = self.ongoing[cand.bank]
                .take()
                .expect("column without ongoing access");
            self.ongoing_mask[cand.bank >> 6] &= !(1 << (cand.bank & 63));
            self.note_ongoing_removed(chan, cand.bank);
            // Fault injection: the data transfer happened but is declared
            // bad (ECC read error / write CRC retry). The access stays
            // outstanding and re-enters its queue via `take_retries`.
            if let Some(fc) = self.cfg.faults {
                let attempt = self.attempts.get(&og.access.id).copied().unwrap_or(0);
                if attempt < fc.max_retries
                    && fc.should_fault(og.access.id, og.access.kind, attempt)
                {
                    self.attempts.insert(og.access.id, attempt + 1);
                    self.stats.faults_injected += 1;
                    self.stats.retries += 1;
                    self.retry_pending.push(og.access);
                    return true;
                }
            }
            let latency = issued.data_end - og.access.arrival;
            match og.access.kind {
                AccessKind::Read => {
                    self.stats.read_done(latency);
                    self.reads_outstanding -= 1;
                }
                AccessKind::Write => {
                    self.stats.write_done(latency);
                    self.writes_outstanding -= 1;
                }
            }
            self.ages.remove(og.access.id);
            if self.cfg.faults.is_some() {
                self.attempts.remove(&og.access.id);
            }
            self.stats.max_access_age = self.stats.max_access_age.max(latency);
            completions.push(Completion {
                id: og.access.id,
                kind: og.access.kind,
                done_at: issued.data_end,
                latency,
                forwarded: false,
            });
            true
        } else {
            false
        }
    }

    /// Drains the faulted accesses awaiting retry. The mechanism's tick
    /// must re-enqueue each at the *front* of its queue (retries are the
    /// oldest work the bank has) without re-counting it as an arrival.
    pub fn take_retries(&mut self) -> Vec<Access> {
        std::mem::take(&mut self.retry_pending)
    }

    /// Retry attempts recorded for `id` (0 for accesses that never
    /// faulted).
    pub fn retry_count(&self, id: AccessId) -> u32 {
        self.attempts.get(&id).copied().unwrap_or(0)
    }

    /// The id and age (at `now`) of the oldest outstanding access.
    pub fn oldest_outstanding(&self, now: Cycle) -> Option<(AccessId, Cycle)> {
        self.ages
            .oldest()
            .map(|(id, arrival)| (id, now.saturating_sub(arrival)))
    }

    /// Advances the forward-progress watchdog; call once per tick. Latches
    /// a [`StallDiagnostic`] (once) when outstanding accesses have seen no
    /// transaction issue or arrival for longer than the stall limit.
    pub fn watchdog_tick(&mut self, now: Cycle) {
        let outstanding = self.reads_outstanding + self.writes_outstanding;
        if outstanding == 0 {
            self.last_progress = now;
            return;
        }
        let oldest = self.oldest_outstanding(now);
        if let Some((_, age)) = oldest {
            self.stats.max_access_age = self.stats.max_access_age.max(age);
        }
        if self.stall.is_none()
            && now.saturating_sub(self.last_progress) > self.cfg.watchdog.stall_limit
        {
            self.stats.watchdog_trips += 1;
            self.stall = Some(StallDiagnostic {
                since: self.last_progress,
                at: now,
                reads: self.reads_outstanding,
                writes: self.writes_outstanding,
                oldest_id: oldest.map(|(id, _)| id),
                oldest_age: oldest.map(|(_, age)| age).unwrap_or(0),
                // The bare engine has no whole-system digest; the system
                // layer stamps it before surfacing the diagnostic.
                state_hash: 0,
            });
        }
    }

    /// The latched forward-progress failure, if the watchdog tripped.
    pub fn stall(&self) -> Option<StallDiagnostic> {
        self.stall
    }

    /// Per-cycle statistics bookkeeping; call once per tick. The cycle
    /// counter advances every call; occupancy histograms are recorded every
    /// `sample_interval` ticks (every tick at the default interval of 1,
    /// reproducing the paper's per-cycle Figure 8/11 distributions).
    pub fn sample(&mut self) {
        self.stats.cycles += 1;
        self.sample_countdown -= 1;
        if self.sample_countdown == 0 {
            self.sample_countdown = self.cfg.sample_interval.max(1);
            self.stats.record_occupancy(
                self.reads_outstanding,
                self.writes_outstanding,
                self.cfg.write_capacity,
            );
        }
    }

    /// Whether the controller is *quiescent*: no access is outstanding
    /// (queued or ongoing — outstanding counts cover both), no faulted
    /// access awaits re-enqueue, and no stall is latched. A quiescent tick
    /// is a pure bookkeeping no-op, so a run of them may be replaced by
    /// [`Core::advance_quiescent`] bit-identically.
    pub fn quiescent(&self) -> bool {
        self.reads_outstanding == 0
            && self.writes_outstanding == 0
            && self.retry_pending.is_empty()
            && self.stall.is_none()
    }

    /// Batch-advances the per-tick bookkeeping over `n` quiescent ticks at
    /// cycles `from..from + n` — exactly equivalent to `n` calls of
    /// [`Core::sample`] plus [`Core::watchdog_tick`] with zero outstanding
    /// accesses: the cycle counter, the interval-sampling countdown, the
    /// occupancy histograms (all samples at occupancy 0) and the watchdog's
    /// progress clock land on identical values.
    pub fn advance_quiescent(&mut self, from: Cycle, n: u64) {
        debug_assert!(self.quiescent(), "batch advance requires quiescence");
        debug_assert!(n >= 1);
        self.stats.cycles += n;
        let s = u64::from(self.cfg.sample_interval.max(1));
        let c = u64::from(self.sample_countdown);
        // Per-tick: countdown hits zero at tick c, then every s ticks.
        let hits = if n >= c { 1 + (n - c) / s } else { 0 };
        self.sample_countdown = if n < c { c - n } else { s - ((n - c) % s) } as u32;
        if hits > 0 {
            self.stats
                .record_occupancy_n(0, 0, self.cfg.write_capacity, hits);
        }
        // watchdog_tick with zero outstanding sets last_progress = now on
        // every tick; the final skipped tick is `from + n - 1`.
        self.last_progress = from + n - 1;
    }

    /// Mechanism-independent part of the busy-skip event derivation: the
    /// earliest cycle strictly after `last` at which the shared machinery
    /// could make a tick differ from a pure bookkeeping no-op, assuming no
    /// commands issue and no accesses arrive in the interim.
    ///
    /// Returns `None` when the next tick must be stepped: a retry awaits
    /// re-enqueue, a stall is latched (diagnosis wants real ticks), a
    /// channel's steering pointer has not yet converged on the oldest
    /// ongoing access (Fig. 6 lines 14–15 run every no-op tick), or some
    /// bank's next transaction is already issuable.
    ///
    /// Otherwise folds, over every ongoing access, the earliest cycle its
    /// next transaction could first satisfy the timing constraints —
    /// between commands all bank/rank ready-at values are static, so
    /// [`burst_dram::Channel::earliest_issue`] is exact — plus the cycle
    /// at which the forward-progress watchdog would latch. Transactions
    /// blocked behind a pending refresh are skipped here; the refresh
    /// resolution instant is already folded via `Dram::next_event` by the
    /// caller.
    pub fn busy_event_base(&self, dram: &Dram, last: Cycle) -> Option<Cycle> {
        if !self.retry_pending.is_empty() || self.stall.is_some() {
            return None;
        }
        // The stall latch compares `now - last_progress > stall_limit` on
        // every stepped tick; make sure the first tripping cycle is stepped.
        let mut event = self.last_progress + self.cfg.watchdog.stall_limit + 1;
        for channel in 0..self.channel_count() {
            let ch = dram.channel(channel);
            let mut target = None;
            let mut bail = false;
            self.for_each_occupied(channel, |bank, og| {
                if bail {
                    return;
                }
                let entry = (og.access.id, bank, og.access.loc.rank);
                if target.is_none_or(|t| entry < t) {
                    target = Some(entry);
                }
                let cmd = self.next_command(og.access.loc, og.access.kind, dram);
                let rank = og.access.loc.rank;
                if ch.refresh_pending(rank)
                    && matches!(cmd, Command::Activate(_) | Command::Column { .. })
                {
                    // Blocked until the refresh performs; Dram::next_event
                    // reports that instant.
                    return;
                }
                let mut at = ch.earliest_issue(&cmd, last + 1).unwrap_or(last + 1);
                if matches!(cmd, Command::Precharge(_)) {
                    // earliest_issue's precharge arm ignores rank
                    // availability (refresh busy); fold it so tRFC windows
                    // skip instead of stepping.
                    at = at.max(ch.rank(rank).busy_until());
                }
                if at <= last + 1 {
                    bail = true;
                    return;
                }
                event = event.min(at);
            });
            if bail {
                return None;
            }
            if let Some((_, bank, rank)) = target {
                if self.last_bank[channel] != Some(bank) || self.last_rank[channel] != Some(rank) {
                    // steer_to_oldest has not reached its fixed point yet;
                    // one stepped tick gets it there.
                    return None;
                }
            }
        }
        (event > last + 1).then_some(event)
    }

    /// Batch-advances the per-tick bookkeeping over `n` *blocked* ticks at
    /// cycles `from..from + n`: outstanding accesses exist but none of
    /// their transactions can issue, so each tick is `sample` plus
    /// `watchdog_tick` at constant occupancy. Occupancy samples land at the
    /// live counts and the watchdog's running max-age fold is reproduced by
    /// its value at the final skipped tick (ages grow monotonically).
    ///
    /// Callers must have verified via [`Core::busy_event_base`] that the
    /// stretch is a no-op; in particular the stall latch must not fire
    /// inside it.
    pub fn advance_blocked(&mut self, from: Cycle, n: u64) {
        debug_assert!(n >= 1);
        debug_assert!(
            self.reads_outstanding + self.writes_outstanding > 0,
            "blocked advance requires outstanding work (else use advance_quiescent)"
        );
        debug_assert!(self.retry_pending.is_empty() && self.stall.is_none());
        let to = from + n - 1;
        debug_assert!(
            to.saturating_sub(self.last_progress) <= self.cfg.watchdog.stall_limit,
            "stall latch would fire inside a skipped stretch"
        );
        self.stats.cycles += n;
        let s = u64::from(self.cfg.sample_interval.max(1));
        let c = u64::from(self.sample_countdown);
        let hits = if n >= c { 1 + (n - c) / s } else { 0 };
        self.sample_countdown = if n < c { c - n } else { s - ((n - c) % s) } as u32;
        if hits > 0 {
            self.stats.record_occupancy_n(
                self.reads_outstanding,
                self.writes_outstanding,
                self.cfg.write_capacity,
                hits,
            );
        }
        if let Some((_, age)) = self.oldest_outstanding(to) {
            self.stats.max_access_age = self.stats.max_access_age.max(age);
        }
        // watchdog_tick leaves last_progress untouched while work is
        // outstanding; the stall clock keeps running across the jump.
    }

    /// Serialises all persistent core state for a checkpoint. The lazy
    /// oldest-ongoing steering cache is transient (recomputed on demand)
    /// and is not part of the snapshot.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        w.usize(self.ongoing.len());
        for slot in &self.ongoing {
            match slot {
                None => w.bool(false),
                Some(og) => {
                    w.bool(true);
                    og.access.save_snap(w);
                    w.bool(og.started);
                }
            }
        }
        w.usize(self.last_bank.len());
        for (lb, lr) in self.last_bank.iter().zip(&self.last_rank) {
            w.opt_u64(lb.map(|b| b as u64));
            w.opt_u8(*lr);
        }
        self.stats.save_snap(w);
        w.usize(self.reads_outstanding);
        w.usize(self.writes_outstanding);
        self.ages.save_snap(w);
        // BTreeMap iteration is already in ascending id order, which is
        // the serialisation order the snapshot format specifies.
        w.usize(self.attempts.len());
        for (id, count) in &self.attempts {
            w.u64(id.value());
            w.u32(*count);
        }
        w.usize(self.retry_pending.len());
        for acc in &self.retry_pending {
            acc.save_snap(w);
        }
        w.u64(self.last_progress);
        match &self.stall {
            None => w.bool(false),
            Some(d) => {
                w.bool(true);
                d.save_snap(w);
            }
        }
        w.u32(self.sample_countdown);
    }

    /// Restores state written by [`Core::save_snap`] into a core built from
    /// the same configuration and geometry; a structural mismatch is
    /// rejected as corrupt. The steering cache is invalidated so it is
    /// recomputed from the restored ongoing set.
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        use burst_snap::SnapError;
        if r.seq_len(1)? != self.ongoing.len() {
            return Err(SnapError::Corrupt("bank count mismatch"));
        }
        for slot in &mut self.ongoing {
            *slot = if r.bool()? {
                let access = Access::load_snap(r)?;
                let started = r.bool()?;
                Some(Ongoing { access, started })
            } else {
                None
            };
        }
        if r.seq_len(2)? != self.last_bank.len() {
            return Err(SnapError::Corrupt("channel count mismatch"));
        }
        for i in 0..self.last_bank.len() {
            self.last_bank[i] = match r.opt_u64()? {
                Some(b) if (b as usize) < self.ongoing.len() => Some(b as usize),
                Some(_) => return Err(SnapError::Corrupt("last bank out of range")),
                None => None,
            };
            self.last_rank[i] = r.opt_u8()?;
        }
        self.stats.load_snap(r)?;
        self.reads_outstanding = r.usize()?;
        self.writes_outstanding = r.usize()?;
        if self.reads_outstanding + self.writes_outstanding > self.cfg.pool_capacity {
            return Err(SnapError::Corrupt("outstanding exceeds pool capacity"));
        }
        self.ages.load_snap(r)?;
        let n_faults = r.seq_len(12)?;
        self.attempts.clear();
        for _ in 0..n_faults {
            let id = AccessId::new(r.u64()?);
            let count = r.u32()?;
            self.attempts.insert(id, count);
        }
        let n_retries = r.seq_len(8)?;
        self.retry_pending.clear();
        for _ in 0..n_retries {
            self.retry_pending.push(Access::load_snap(r)?);
        }
        self.last_progress = r.u64()?;
        self.stall = if r.bool()? {
            Some(StallDiagnostic::load_snap(r)?)
        } else {
            None
        };
        self.sample_countdown = r.u32()?;
        // Rebuild the derived occupied-slot bitmap from the restored slots.
        for w in &mut self.ongoing_mask {
            *w = 0;
        }
        for (b, slot) in self.ongoing.iter().enumerate() {
            if slot.is_some() {
                self.ongoing_mask[b >> 6] |= 1 << (b & 63);
            }
        }
        for (cache, dirty) in self.oldest_ongoing.iter_mut().zip(&mut self.ongoing_dirty) {
            *cache = None;
            *dirty = true;
        }
        // Cached candidate bounds were derived against the pre-restore
        // device state; force a full re-derivation.
        for c in &mut self.cand_cache {
            *c = None;
        }
        for e in &mut self.cand_epoch {
            *e = u64::MAX;
        }
        for b in &mut self.chan_bound {
            *b = None;
        }
        for w in &mut self.due_mask {
            *w = !0;
        }
        for d in &mut self.next_due {
            *d = Cycle::MAX;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_dram::{AddressMapping, DramConfig, PhysAddr};

    fn setup() -> (Core, Dram) {
        let cfg = DramConfig::baseline();
        let dram = Dram::new(cfg, AddressMapping::PageInterleaving);
        let core = Core::new(CtrlConfig::default(), cfg.geometry);
        (core, dram)
    }

    fn access(id: u64, kind: AccessKind, loc: Loc) -> Access {
        Access::new(AccessId::new(id), kind, PhysAddr::new(0), loc, 0)
    }

    #[test]
    fn global_bank_is_dense_and_unique() {
        let (core, _) = setup();
        let g = Geometry::baseline();
        let mut seen = std::collections::HashSet::new();
        for c in 0..g.channels {
            for r in 0..g.ranks_per_channel {
                for b in 0..g.banks_per_rank {
                    let idx = core.global_bank(Loc::new(c, r, b, 0, 0));
                    assert!(idx < core.bank_count());
                    assert!(seen.insert(idx), "bank index collision at {idx}");
                }
            }
        }
        assert_eq!(seen.len(), core.bank_count());
    }

    #[test]
    fn bank_range_partitions_channels() {
        let (core, _) = setup();
        assert_eq!(core.bank_range(0), 0..16);
        assert_eq!(core.bank_range(1), 16..32);
    }

    #[test]
    fn next_command_follows_row_state() {
        let (core, mut dram) = setup();
        let loc = Loc::new(0, 0, 0, 5, 0);
        assert_eq!(
            core.next_command(loc, AccessKind::Read, &dram),
            Command::Activate(loc)
        );
        dram.channel_mut(0).issue(&Command::Activate(loc), 0);
        assert!(core.next_command(loc, AccessKind::Read, &dram).is_column());
        let other = Loc::new(0, 0, 0, 6, 0);
        assert_eq!(
            core.next_command(other, AccessKind::Read, &dram),
            Command::Precharge(other)
        );
    }

    #[test]
    fn issue_candidate_walks_an_access_to_completion() {
        let (mut core, mut dram) = setup();
        let loc = Loc::new(0, 0, 0, 5, 0);
        let acc = access(1, AccessKind::Read, loc);
        core.note_arrival(&acc);
        core.set_ongoing(core.global_bank(loc), acc).unwrap();
        let mut done = Vec::new();
        let mut cands = Vec::new();
        let mut now = 0;
        let mut col_issued = false;
        while !col_issued {
            core.fill_candidates(&dram, 0, now, &mut cands);
            if let Some(c) = cands.first().copied() {
                col_issued = core.issue_candidate(&mut dram, now, &c, &mut done);
            }
            now += 1;
            assert!(now < 100, "access should complete quickly");
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, AccessId::new(1));
        assert_eq!(core.reads_outstanding(), 0);
        // Empty bank: ACT + READ; classified once as a row empty.
        assert_eq!(core.stats().row_empties, 1);
        assert_eq!(core.stats().classified(), 1);
    }

    #[test]
    fn can_accept_respects_pool_and_write_caps() {
        let cfg = CtrlConfig {
            pool_capacity: 4,
            write_capacity: 2,
            ..CtrlConfig::default()
        };
        let mut core = Core::new(cfg, Geometry::baseline());
        assert!(core.can_accept(AccessKind::Read));
        let loc = Loc::new(0, 0, 0, 0, 0);
        core.note_arrival(&access(0, AccessKind::Write, loc));
        core.note_arrival(&access(1, AccessKind::Write, loc));
        // Write queue saturated: nothing is accepted any more.
        assert!(!core.can_accept(AccessKind::Read));
        assert!(!core.can_accept(AccessKind::Write));
    }

    #[test]
    fn steer_to_oldest_picks_lowest_id() {
        let (mut core, _) = setup();
        let l1 = Loc::new(0, 2, 1, 5, 0);
        let l2 = Loc::new(0, 1, 0, 9, 0);
        core.set_ongoing(core.global_bank(l1), access(10, AccessKind::Read, l1))
            .unwrap();
        core.set_ongoing(core.global_bank(l2), access(3, AccessKind::Read, l2))
            .unwrap();
        core.steer_to_oldest(0);
        let (bank, rank) = core.last_target(0);
        assert_eq!(bank, Some(core.global_bank(l2)));
        assert_eq!(rank, Some(1));
    }

    #[test]
    fn clear_ongoing_returns_access() {
        let (mut core, _) = setup();
        let loc = Loc::new(0, 0, 0, 5, 0);
        core.set_ongoing(0, access(7, AccessKind::Write, loc))
            .unwrap();
        let got = core.clear_ongoing(0).expect("was set");
        assert_eq!(got.id, AccessId::new(7));
        assert!(core.ongoing(0).is_none());
    }

    #[test]
    fn set_ongoing_refuses_overwrite_and_returns_access() {
        let (mut core, _) = setup();
        let loc = Loc::new(0, 0, 0, 5, 0);
        core.set_ongoing(0, access(1, AccessKind::Read, loc))
            .unwrap();
        let rejected = core
            .set_ongoing(0, access(2, AccessKind::Read, loc))
            .expect_err("occupied slot must reject");
        assert_eq!(
            rejected.id,
            AccessId::new(2),
            "the displaced access comes back"
        );
        assert_eq!(core.ongoing(0).unwrap().access.id, AccessId::new(1));
    }

    #[test]
    fn watchdog_latches_stall_diagnostic() {
        let cfg = CtrlConfig {
            watchdog: crate::WatchdogConfig {
                escalate_age: 100,
                stall_limit: 500,
            },
            ..CtrlConfig::default()
        };
        let mut core = Core::new(cfg, Geometry::baseline());
        let loc = Loc::new(0, 0, 0, 5, 0);
        let acc = access(3, AccessKind::Read, loc);
        core.note_arrival(&acc);
        // Nothing ever issues: the stall clock runs out.
        for now in 0..400 {
            core.watchdog_tick(now);
        }
        assert!(core.stall().is_none(), "within the limit: no trip");
        for now in 400..1000 {
            core.watchdog_tick(now);
        }
        let d = core.stall().expect("stall limit exceeded");
        assert_eq!(d.reads, 1);
        assert_eq!(d.oldest_id, Some(AccessId::new(3)));
        assert!(d.oldest_age >= 500, "age at detection: {}", d.oldest_age);
        assert_eq!(core.stats().watchdog_trips, 1, "latched exactly once");
        // Still latched once even as ticks continue.
        core.watchdog_tick(2000);
        assert_eq!(core.stats().watchdog_trips, 1);
    }

    #[test]
    fn core_snapshot_round_trips_mid_flight() {
        let (mut core, mut dram) = setup();
        // Put the core in a busy, asymmetric state: two ongoing accesses,
        // one of them started, plus an un-issued arrival in the age window.
        let l1 = Loc::new(0, 0, 0, 5, 0);
        let l2 = Loc::new(1, 1, 2, 9, 0);
        let a1 = access(1, AccessKind::Read, l1);
        let a2 = access(2, AccessKind::Write, l2).with_critical(true);
        core.note_arrival(&a1);
        core.note_arrival(&a2);
        core.set_ongoing(core.global_bank(l1), a1).unwrap();
        core.set_ongoing(core.global_bank(l2), a2).unwrap();
        let mut done = Vec::new();
        let mut cands = Vec::new();
        core.fill_candidates(&dram, 0, 0, &mut cands);
        let c = cands[0];
        core.issue_candidate(&mut dram, 0, &c, &mut done);
        core.sample();
        core.watchdog_tick(0);

        let mut w = burst_snap::SnapWriter::new();
        core.save_snap(&mut w);
        let bytes = w.into_bytes();
        let (mut fresh, _) = setup();
        let mut r = burst_snap::SnapReader::new(&bytes);
        fresh.load_snap(&mut r).unwrap();
        r.finish().unwrap();
        // Byte-identical re-serialisation and equal observable queries.
        let mut w2 = burst_snap::SnapWriter::new();
        fresh.save_snap(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        assert_eq!(fresh.reads_outstanding(), core.reads_outstanding());
        assert_eq!(fresh.writes_outstanding(), core.writes_outstanding());
        assert_eq!(fresh.oldest_outstanding(10), core.oldest_outstanding(10));
        assert_eq!(
            fresh.ongoing(core.global_bank(l2)).unwrap().access.id,
            AccessId::new(2)
        );
        assert!(fresh.ongoing(core.global_bank(l1)).unwrap().started);
        // The steering cache is rebuilt lazily and lands on the same target.
        fresh.steer_to_oldest(0);
        core.steer_to_oldest(0);
        assert_eq!(fresh.last_target(0), core.last_target(0));
    }

    #[test]
    fn core_snapshot_rejects_geometry_mismatch() {
        let (core, _) = setup();
        let mut w = burst_snap::SnapWriter::new();
        core.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut small = Core::new(
            CtrlConfig::default(),
            Geometry {
                channels: 1,
                ..Geometry::baseline()
            },
        );
        let mut r = burst_snap::SnapReader::new(&bytes);
        assert!(small.load_snap(&mut r).is_err());
    }

    #[test]
    fn fault_injection_retries_then_completes() {
        // 100% read-fault rate with 2 retries: the access faults twice,
        // then completes on the third attempt.
        let cfg = CtrlConfig {
            faults: Some(crate::FaultConfig {
                seed: 1,
                read_error_permille: 1000,
                write_retry_permille: 1000,
                max_retries: 2,
            }),
            ..CtrlConfig::default()
        };
        let mut core = Core::new(cfg, Geometry::baseline());
        let mut dram = Dram::new(DramConfig::baseline(), AddressMapping::PageInterleaving);
        let loc = Loc::new(0, 0, 0, 5, 0);
        let acc = access(1, AccessKind::Read, loc);
        core.note_arrival(&acc);
        core.set_ongoing(core.global_bank(loc), acc).unwrap();
        let mut done = Vec::new();
        let mut cands = Vec::new();
        let mut now = 0;
        while done.is_empty() {
            core.fill_candidates(&dram, 0, now, &mut cands);
            if let Some(c) = cands.first().copied() {
                core.issue_candidate(&mut dram, now, &c, &mut done);
            }
            for retry in core.take_retries() {
                core.set_ongoing(core.global_bank(retry.loc), retry)
                    .unwrap();
            }
            now += 1;
            assert!(now < 1000, "faulted access must still complete");
        }
        assert_eq!(
            core.stats().faults_injected,
            2,
            "max_retries bounds the faults"
        );
        assert_eq!(core.stats().retries, 2);
        assert_eq!(done.len(), 1);
        assert_eq!(core.reads_outstanding(), 0);
    }
}
