//! Deterministic fault injection for robustness testing.
//!
//! Real memory subsystems see correctable ECC errors on reads and parity /
//! CRC failures on writes that force the controller to retry the transfer.
//! This module models both as *seedable, reproducible* events: whether a
//! given attempt of a given access faults is a pure function of the
//! configured seed, the access id and the attempt number, so a run with the
//! same seed injects exactly the same faults regardless of host or timing.
//!
//! A faulted access is not completed; the scheduler re-enqueues it at the
//! front of its queue and the bank arbiter schedules it again (a *retry*).
//! After [`FaultConfig::max_retries`] attempts the access is allowed to
//! complete unconditionally, so every access finishes under injection.

use crate::AccessKind;

/// SplitMix64 — a tiny, high-quality 64-bit mixer. Used as a stateless
/// hash so fault decisions need no RNG state that could drift between
/// mechanisms or runs. Public so higher layers (the sweep supervisor's
/// transient-fault injection, the journal's config fingerprint) can make
/// decisions from the same deterministic primitive.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Configuration of the deterministic fault injector.
///
/// Rates are in permille (1/1000) per *attempt*: an access that faults and
/// retries rolls again on the retry, with an independent decision.
///
/// # Examples
///
/// ```
/// use burst_core::{AccessId, AccessKind, FaultConfig};
///
/// let f = FaultConfig::new(42);
/// // Decisions are pure functions of (seed, id, attempt): always the same.
/// let a = f.should_fault(AccessId::new(7), AccessKind::Read, 0);
/// let b = f.should_fault(AccessId::new(7), AccessKind::Read, 0);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Seed of the deterministic decision hash.
    pub seed: u64,
    /// Correctable-read-error rate in faults per 1000 column reads.
    pub read_error_permille: u32,
    /// Write-retry rate in faults per 1000 column writes.
    pub write_retry_permille: u32,
    /// Maximum retries per access; the attempt after the last retry always
    /// completes, bounding the work any one access can absorb.
    pub max_retries: u32,
}

impl FaultConfig {
    /// Moderate default rates (2% reads, 2% writes, up to 4 retries) with
    /// the given seed.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_permille: 20,
            write_retry_permille: 20,
            max_retries: 4,
        }
    }

    /// Whether attempt number `attempt` (0-based) of the access faults.
    ///
    /// Pure and stateless: same `(seed, id, kind, attempt)` always yields
    /// the same answer.
    pub fn should_fault(&self, id: crate::AccessId, kind: AccessKind, attempt: u32) -> bool {
        let permille = match kind {
            AccessKind::Read => self.read_error_permille,
            AccessKind::Write => self.write_retry_permille,
        };
        if permille == 0 {
            return false;
        }
        let key = self.seed.wrapping_mul(0xA24B_AED4_963E_E407)
            ^ id.value().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(attempt) << 48);
        splitmix64(key) % 1000 < u64::from(permille)
    }
}

/// Deterministic *cell-level* transient faults for the sweep supervisor.
///
/// Where [`FaultConfig`] injects faults into individual memory accesses
/// *inside* a simulation, this plan fails whole `(benchmark, mechanism)`
/// sweep cells — modelling the operational failures (OOM kills, spurious
/// panics, wedged attempts) a long evaluation run meets in practice. The
/// decision is a pure function of `(seed, cell, attempt)` built on the same
/// [`splitmix64`] primitive, so a sweep with the same seed fails the same
/// cells on the same attempts on any host.
///
/// Because a cell can fault on at most [`TransientFaultPlan::max_failures`]
/// attempts, a supervisor granting at least that many retries always
/// converges to the fault-free result — the property the robustness
/// proptests pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransientFaultPlan {
    /// Seed of the deterministic decision hash.
    pub seed: u64,
    /// Probability a given attempt of a given cell fails, in permille.
    pub fail_permille: u32,
    /// Attempts `>= max_failures` never fail: bounds the retries any one
    /// cell can absorb and guarantees convergence when the supervisor
    /// grants `max_failures` retries or more.
    pub max_failures: u32,
}

impl TransientFaultPlan {
    /// A moderately hostile default: 25% of first attempts fail, no cell
    /// fails more than twice.
    pub fn new(seed: u64) -> Self {
        TransientFaultPlan {
            seed,
            fail_permille: 250,
            max_failures: 2,
        }
    }

    /// Whether attempt number `attempt` (0-based) of cell `cell` fails.
    ///
    /// Pure and stateless: same `(seed, cell, attempt)` always yields the
    /// same answer.
    pub fn should_fail(&self, cell: u64, attempt: u32) -> bool {
        if attempt >= self.max_failures || self.fail_permille == 0 {
            return false;
        }
        let key = self.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93)
            ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(attempt) << 48);
        splitmix64(key) % 1000 < u64::from(self.fail_permille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessId;

    #[test]
    fn decisions_are_deterministic() {
        let f = FaultConfig::new(1234);
        for id in 0..100u64 {
            for attempt in 0..4u32 {
                let first = f.should_fault(AccessId::new(id), AccessKind::Read, attempt);
                let again = f.should_fault(AccessId::new(id), AccessKind::Read, attempt);
                assert_eq!(first, again);
            }
        }
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let f = FaultConfig {
            read_error_permille: 100,
            ..FaultConfig::new(7)
        };
        let n = 20_000u64;
        let faults = (0..n)
            .filter(|&id| f.should_fault(AccessId::new(id), AccessKind::Read, 0))
            .count() as f64;
        let rate = faults / n as f64;
        assert!((0.07..0.13).contains(&rate), "10% target, got {rate:.3}");
    }

    #[test]
    fn zero_rate_never_faults() {
        let f = FaultConfig {
            read_error_permille: 0,
            write_retry_permille: 0,
            ..FaultConfig::new(9)
        };
        for id in 0..1000u64 {
            assert!(!f.should_fault(AccessId::new(id), AccessKind::Read, 0));
            assert!(!f.should_fault(AccessId::new(id), AccessKind::Write, 0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultConfig {
            read_error_permille: 500,
            ..FaultConfig::new(1)
        };
        let b = FaultConfig {
            read_error_permille: 500,
            ..FaultConfig::new(2)
        };
        let diff = (0..1000u64)
            .filter(|&id| {
                a.should_fault(AccessId::new(id), AccessKind::Read, 0)
                    != b.should_fault(AccessId::new(id), AccessKind::Read, 0)
            })
            .count();
        assert!(
            diff > 100,
            "seeds 1 and 2 should disagree often, got {diff}"
        );
    }

    #[test]
    fn transient_plan_is_deterministic_and_bounded() {
        let plan = TransientFaultPlan::new(99);
        for cell in 0..200u64 {
            for attempt in 0..4u32 {
                assert_eq!(
                    plan.should_fail(cell, attempt),
                    plan.should_fail(cell, attempt)
                );
            }
            // Attempts past max_failures never fail: retries converge.
            for attempt in plan.max_failures..plan.max_failures + 8 {
                assert!(!plan.should_fail(cell, attempt));
            }
        }
        let first_attempt_failures = (0..1000u64).filter(|&c| plan.should_fail(c, 0)).count();
        assert!(
            (150..350).contains(&first_attempt_failures),
            "25% target, got {first_attempt_failures}/1000"
        );
    }

    #[test]
    fn attempts_roll_independently() {
        let f = FaultConfig {
            read_error_permille: 500,
            ..FaultConfig::new(3)
        };
        let diff = (0..1000u64)
            .filter(|&id| {
                f.should_fault(AccessId::new(id), AccessKind::Read, 0)
                    != f.should_fault(AccessId::new(id), AccessKind::Read, 1)
            })
            .count();
        assert!(diff > 100, "attempt number must enter the hash, got {diff}");
    }
}
