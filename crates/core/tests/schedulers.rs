//! Behavioural tests exercising each access reordering mechanism against a
//! real DRAM model: completion, ordering invariants, forwarding, preemption
//! and piggybacking.

use burst_core::{
    Access, AccessId, AccessKind, AccessScheduler, Completion, CtrlConfig, EnqueueOutcome,
    Mechanism,
};
use burst_dram::{AddressMapping, Cycle, Dram, DramConfig, PhysAddr};

struct Harness {
    dram: Dram,
    sched: Box<dyn AccessScheduler>,
    now: Cycle,
    next_id: u64,
    done: Vec<Completion>,
}

impl Harness {
    fn new(mechanism: Mechanism) -> Self {
        Self::with_cfg(mechanism, CtrlConfig::default())
    }

    fn with_cfg(mechanism: Mechanism, cfg: CtrlConfig) -> Self {
        let dram_cfg = DramConfig::baseline();
        Harness {
            dram: Dram::new(dram_cfg, AddressMapping::PageInterleaving),
            sched: mechanism.build(cfg, dram_cfg.geometry),
            now: 0,
            next_id: 0,
            done: Vec::new(),
        }
    }

    fn push(&mut self, kind: AccessKind, addr: u64) -> EnqueueOutcome {
        let addr = PhysAddr::new(addr).cache_line(64);
        let loc = self.dram.decode(addr);
        let id = AccessId::new(self.next_id);
        self.next_id += 1;
        let a = Access::new(id, kind, addr, loc, self.now);
        self.sched.enqueue(a, self.now, &mut self.done)
    }

    fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.sched.tick(&mut self.dram, self.now, &mut self.done);
            self.now += 1;
        }
    }

    fn run_until_drained(&mut self, max: Cycle) {
        for _ in 0..max {
            if self.sched.outstanding().total() == 0 {
                return;
            }
            self.sched.tick(&mut self.dram, self.now, &mut self.done);
            self.now += 1;
        }
        panic!(
            "scheduler did not drain within {max} cycles: {:?} outstanding",
            self.sched.outstanding()
        );
    }
}

/// Every mechanism must complete every access exactly once.
#[test]
fn all_mechanisms_complete_mixed_stream() {
    for m in Mechanism::all_paper() {
        let mut h = Harness::new(m);
        let mut expected = 0;
        for i in 0..200u64 {
            // Mix of rows, banks, channels, reads and writes.
            let addr = (i % 7) * 64 + (i % 13) * 8192 + (i % 3) * (1 << 20);
            let kind = if i % 4 == 3 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if h.sched.can_accept(kind) {
                h.push(kind, addr);
                expected += 1;
            }
            h.run(2);
        }
        h.run_until_drained(200_000);
        assert_eq!(
            h.done.len(),
            expected,
            "{m}: every access completes exactly once"
        );
        let mut ids: Vec<u64> = h.done.iter().map(|c| c.id.value()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), expected, "{m}: no duplicate completions");
    }
}

/// Same-bank same-row reads must stream back-to-back under burst scheduling:
/// the whole group completes in roughly first-access latency plus one burst
/// per access.
#[test]
fn burst_clusters_same_row_reads() {
    let mut h = Harness::new(Mechanism::Burst);
    let cfg = DramConfig::baseline();
    let burst_cycles = cfg.geometry.burst_cycles();
    // 8 reads to the same row (consecutive lines within one 8 KB page).
    for i in 0..8u64 {
        h.push(AccessKind::Read, i * 64);
    }
    h.run_until_drained(10_000);
    let t = cfg.timing;
    let last_done = h.done.iter().map(|c| c.done_at).max().unwrap();
    // Row empty: tRCD + tCL + 8 bursts back-to-back (+1 slack for the
    // second access's command timing).
    let ideal = t.t_rcd + t.t_cl + 8 * burst_cycles;
    assert!(
        last_done <= ideal + 2,
        "burst should stream hits back-to-back: {last_done} vs ideal {ideal}"
    );
    // 1 row empty + 7 row hits.
    assert_eq!(h.sched.stats().row_hits, 7);
    assert_eq!(h.sched.stats().row_empties, 1);
}

/// BkInOrder serialises a row-conflict ping-pong; RowHit reorders it into
/// hits and finishes sooner with a higher hit rate.
#[test]
fn row_hit_beats_in_order_on_conflict_ping_pong() {
    let run = |m: Mechanism| {
        let mut h = Harness::new(m);
        let row_stride = 8192 * 2 * 4 * 4; // next row, same bank (page interleaving)
        for i in 0..16u64 {
            // Alternate two rows of the same bank: worst case for in-order.
            let row = i % 2;
            let addr = row * row_stride + (i / 2) * 64;
            h.push(AccessKind::Read, addr);
        }
        h.run_until_drained(100_000);
        (h.now, h.sched.stats().row_hit_rate())
    };
    let (t_inorder, hit_inorder) = run(Mechanism::BkInOrder);
    let (t_rowhit, hit_rowhit) = run(Mechanism::RowHit);
    assert!(
        t_rowhit < t_inorder,
        "RowHit ({t_rowhit}) should finish before BkInOrder ({t_inorder})"
    );
    assert!(hit_rowhit > hit_inorder, "{hit_rowhit} vs {hit_inorder}");
}

/// A read to an address held in the write queue is forwarded and completes
/// immediately (RAW through the write buffer).
#[test]
fn write_queue_forwarding() {
    for m in [Mechanism::Intel, Mechanism::BurstTh(52)] {
        let mut h = Harness::new(m);
        h.push(AccessKind::Write, 0x2000);
        let outcome = h.push(AccessKind::Read, 0x2000);
        assert_eq!(outcome, EnqueueOutcome::Forwarded, "{m}");
        assert_eq!(h.done.len(), 1);
        assert!(h.done[0].forwarded);
        assert_eq!(h.sched.stats().forwards, 1);
        // A read to a different line is not forwarded.
        let other = h.push(AccessKind::Read, 0x4000000);
        assert_eq!(other, EnqueueOutcome::Queued);
    }
}

/// Read preemption: a read arriving while a write is ongoing interrupts it;
/// the preempted write completes later.
#[test]
fn read_preemption_interrupts_ongoing_write() {
    let mut h = Harness::new(Mechanism::BurstRp);
    // A lone write becomes ongoing (no reads anywhere).
    h.push(AccessKind::Write, 0);
    h.run(3); // write becomes ongoing, starts its activate
              // Now a read to the same bank, different row arrives.
    let row_stride = 8192u64 * 2 * 4 * 4;
    h.push(AccessKind::Read, row_stride);
    h.run_until_drained(10_000);
    assert!(
        h.sched.stats().preemptions >= 1,
        "read must preempt the ongoing write"
    );
    assert_eq!(h.done.len(), 2);
    // Both eventually complete.
    assert_eq!(
        h.done.iter().filter(|c| c.kind == AccessKind::Read).count(),
        1
    );
    assert_eq!(
        h.done
            .iter()
            .filter(|c| c.kind == AccessKind::Write)
            .count(),
        1
    );
}

/// Plain burst never preempts.
#[test]
fn plain_burst_never_preempts() {
    let mut h = Harness::new(Mechanism::Burst);
    h.push(AccessKind::Write, 0);
    h.run(3);
    let row_stride = 8192u64 * 2 * 4 * 4;
    h.push(AccessKind::Read, row_stride);
    h.run_until_drained(10_000);
    assert_eq!(h.sched.stats().preemptions, 0);
}

/// Write piggybacking appends row-hit writes at the end of a burst.
#[test]
fn write_piggybacking_exploits_burst_row() {
    let mut h = Harness::new(Mechanism::BurstWp);
    // Writes to row 0 of bank 0 (they wait: reads exist).
    h.push(AccessKind::Write, 0);
    h.push(AccessKind::Write, 64);
    // A burst of reads to the same row.
    h.push(AccessKind::Read, 128);
    h.push(AccessKind::Read, 192);
    h.run_until_drained(10_000);
    assert!(
        h.sched.stats().piggybacks >= 1,
        "row-hit writes should piggyback at burst end (got {})",
        h.sched.stats().piggybacks
    );
    // The piggybacked writes were row hits.
    assert!(h.sched.stats().row_hits >= 3);
}

/// When the write queue saturates, no new access is accepted, and the
/// controller drains writes to recover.
#[test]
fn write_queue_saturation_blocks_and_recovers() {
    let cfg = CtrlConfig {
        pool_capacity: 64,
        write_capacity: 8,
        ..CtrlConfig::default()
    };
    let mut h = Harness::with_cfg(Mechanism::Burst, cfg);
    // Keep reads flowing to one bank so writes cannot drain via the
    // read-queue-empty path, and fill the write queue on another bank.
    let mut pushed_writes = 0;
    for i in 0..8u64 {
        if h.sched.can_accept(AccessKind::Write) {
            h.push(AccessKind::Write, (1 << 22) + i * 64);
            pushed_writes += 1;
        }
    }
    assert_eq!(pushed_writes, 8);
    assert!(
        !h.sched.can_accept(AccessKind::Read),
        "saturated write queue blocks everything"
    );
    assert!(!h.sched.can_accept(AccessKind::Write));
    h.run_until_drained(100_000);
    assert!(h.sched.can_accept(AccessKind::Read));
    assert!(h.sched.stats().write_saturation_rate() > 0.0);
}

/// Reads and writes to the same line never produce a stale read: the read
/// either forwards from the write queue or is ordered behind the write.
#[test]
fn raw_hazard_order_all_mechanisms() {
    for m in Mechanism::all_paper() {
        let mut h = Harness::new(m);
        let addr = 0x8000u64;
        h.push(AccessKind::Write, addr); // id 0
        let outcome = h.push(AccessKind::Read, addr); // id 1
        match outcome {
            EnqueueOutcome::Forwarded => {
                // Write buffer forwarding: correct by construction.
            }
            EnqueueOutcome::Queued => {
                h.run_until_drained(20_000);
                let write_done = h
                    .done
                    .iter()
                    .find(|c| c.id == AccessId::new(0))
                    .expect("write completes");
                let read_done = h
                    .done
                    .iter()
                    .find(|c| c.id == AccessId::new(1))
                    .expect("read completes");
                assert!(
                    write_done.done_at <= read_done.done_at,
                    "{m}: read of same line must not pass the older write"
                );
            }
            EnqueueOutcome::Rejected => {
                panic!("{m}: controller rejected an access with an empty pool")
            }
        }
    }
}

/// Intel finishes started accesses before starting new ones; burst's Table 2
/// still keeps bursts intact. Both must never starve any access.
#[test]
fn no_starvation_under_continuous_load() {
    for m in Mechanism::all_paper() {
        let mut h = Harness::new(m);
        // A single old access to a "cold" bank, then a flood elsewhere.
        h.push(AccessKind::Read, 1 << 26);
        for wave in 0..50u64 {
            for i in 0..4u64 {
                if h.sched.can_accept(AccessKind::Read) {
                    h.push(AccessKind::Read, i * 64 + wave * 8192);
                }
            }
            h.run(20);
        }
        h.run_until_drained(500_000);
        assert!(
            h.done.iter().any(|c| c.id == AccessId::new(0)),
            "{m}: the old access must complete"
        );
    }
}

/// Writes are drained even with no reads at all.
#[test]
fn pure_write_stream_drains() {
    for m in Mechanism::all_paper() {
        let mut h = Harness::new(m);
        for i in 0..32u64 {
            h.push(AccessKind::Write, i * 64 + (i % 4) * (1 << 20));
        }
        h.run_until_drained(100_000);
        assert_eq!(h.done.len(), 32, "{m}");
        assert!(h.done.iter().all(|c| c.kind == AccessKind::Write));
    }
}

/// Average read latency must be lower for burst TH than BkInOrder on a
/// row-local read-heavy stream (the paper's core claim in miniature).
#[test]
fn burst_th_reduces_read_latency_vs_in_order() {
    let run = |m: Mechanism| {
        let mut h = Harness::new(m);
        let row_stride = 8192u64 * 2 * 4 * 4;
        // Two interleaved row streams hitting the same bank back to back:
        // strictly in-order service sees a row conflict on every access,
        // while burst scheduling clusters each row into one burst.
        for i in 0..120u64 {
            let kind = if i % 6 == 5 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let addr = (i % 2) * row_stride + (i / 2) * 64;
            if h.sched.can_accept(kind) {
                h.push(kind, addr);
            }
            if i % 4 == 3 {
                h.run(1);
            }
        }
        h.run_until_drained(200_000);
        h.sched.stats().avg_read_latency()
    };
    let in_order = run(Mechanism::BkInOrder);
    let th = run(Mechanism::BurstTh(52));
    assert!(
        th < in_order,
        "Burst_TH read latency ({th:.1}) should beat BkInOrder ({in_order:.1})"
    );
}

/// Occupancy histograms integrate to the number of sampled cycles.
#[test]
fn occupancy_histograms_are_consistent() {
    let mut h = Harness::new(Mechanism::BurstTh(52));
    for i in 0..64u64 {
        h.push(AccessKind::Read, i * 64);
    }
    h.run(1000);
    let stats = h.sched.stats();
    assert_eq!(stats.outstanding_reads.samples(), stats.cycles);
    assert_eq!(stats.outstanding_writes.samples(), stats.cycles);
    let total: f64 = stats.outstanding_reads.fractions().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}
