//! Property-based tests over the access reordering mechanisms: for any
//! access stream, every mechanism must complete every access exactly once,
//! preserve same-address ordering, and keep its statistics consistent.

use burst_core::{
    Access, AccessId, AccessKind, Completion, CtrlConfig, EnqueueOutcome, FaultConfig, Mechanism,
    WatchdogConfig,
};
use burst_dram::{AddressMapping, Dram, DramConfig, PhysAddr};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Step {
    /// Cache-line index within a compact region (keeps collisions common).
    line: u64,
    write: bool,
    /// Cycles to run before the next enqueue.
    gap: u8,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u64..512, any::<bool>(), 0u8..6).prop_map(|(line, write, gap)| Step { line, write, gap })
}

fn mechanism_strategy() -> impl Strategy<Value = Mechanism> {
    prop_oneof![
        Just(Mechanism::BkInOrder),
        Just(Mechanism::RowHit),
        Just(Mechanism::Intel),
        Just(Mechanism::IntelRp),
        Just(Mechanism::Burst),
        Just(Mechanism::BurstRp),
        Just(Mechanism::BurstWp),
        (0u32..=64).prop_map(Mechanism::BurstTh),
    ]
}

struct Run {
    done: Vec<Completion>,
    queued: Vec<(AccessId, AccessKind, u64)>,
    forwarded: Vec<AccessId>,
    stats_ok: bool,
    /// DDR2 protocol violations recorded by the shadow checker.
    violations: u64,
}

fn run(mechanism: Mechanism, steps: &[Step]) -> Run {
    run_cfg(mechanism, steps, CtrlConfig::default())
}

fn run_cfg(mechanism: Mechanism, steps: &[Step], ctrl: CtrlConfig) -> Run {
    let dram_cfg = DramConfig::baseline();
    let mut dram = Dram::new(dram_cfg, AddressMapping::PageInterleaving);
    dram.enable_checker();
    let mut sched = mechanism.build(ctrl, dram_cfg.geometry);
    let mut done = Vec::new();
    let mut queued = Vec::new();
    let mut forwarded = Vec::new();
    let mut now = 0u64;
    let mut next_id = 0u64;
    for s in steps {
        // Scatter lines over a few banks/rows while keeping collisions.
        let addr = PhysAddr::new(s.line * 64 + (s.line % 7) * (1 << 21));
        let kind = if s.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if sched.can_accept(kind) {
            let id = AccessId::new(next_id);
            next_id += 1;
            let access = Access::new(id, kind, addr, dram.decode(addr), now);
            match sched.enqueue(access, now, &mut done) {
                EnqueueOutcome::Queued => queued.push((id, kind, addr.value())),
                EnqueueOutcome::Forwarded => forwarded.push(id),
                EnqueueOutcome::Rejected => {
                    panic!("{mechanism}: rejected an access although can_accept was true")
                }
            }
        }
        for _ in 0..s.gap {
            sched.tick(&mut dram, now, &mut done);
            now += 1;
        }
    }
    // Drain.
    let mut idle = 0;
    while sched.outstanding().total() > 0 && idle < 500_000 {
        sched.tick(&mut dram, now, &mut done);
        now += 1;
        idle += 1;
    }
    let stats_ok = sched.outstanding().total() == 0;
    Run {
        done,
        queued,
        forwarded,
        stats_ok,
        violations: dram.protocol_violations(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every accepted access completes exactly once; forwarded reads
    /// complete immediately; the scheduler fully drains.
    #[test]
    fn conservation_of_accesses(
        mechanism in mechanism_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..120),
    ) {
        let r = run(mechanism, &steps);
        prop_assert!(r.stats_ok, "{mechanism}: failed to drain");
        prop_assert_eq!(
            r.done.len(),
            r.queued.len() + r.forwarded.len(),
            "{}: completions != enqueues", mechanism
        );
        let mut ids: Vec<u64> = r.done.iter().map(|c| c.id.value()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "{}: duplicate completion", mechanism);
    }

    /// A read of an address never completes before an older write to the
    /// same address, unless it was satisfied by write-queue forwarding.
    #[test]
    fn same_address_ordering(
        mechanism in mechanism_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..100),
    ) {
        let r = run(mechanism, &steps);
        let done_at = |id: AccessId| r.done.iter().find(|c| c.id == id).map(|c| c.done_at);
        for (i, &(rid, rkind, raddr)) in r.queued.iter().enumerate() {
            if rkind != AccessKind::Read {
                continue;
            }
            // Find the newest older queued write to the same address.
            let older_write = r.queued[..i]
                .iter()
                .rev()
                .find(|(_, k, a)| *k == AccessKind::Write && *a == raddr);
            if let Some(&(wid, _, _)) = older_write {
                let (w, rd) = (done_at(wid), done_at(rid));
                if let (Some(w), Some(rd)) = (w, rd) {
                    prop_assert!(
                        w <= rd,
                        "{}: read {} of {:#x} completed at {} before write {} at {}",
                        mechanism, rid, raddr, rd, wid, w
                    );
                }
            }
        }
    }

    /// Completion latency accounting is exact: done_at - arrival equals the
    /// reported latency, and averages derive from the sums.
    #[test]
    fn latency_accounting(
        mechanism in mechanism_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..80),
    ) {
        let dram_cfg = DramConfig::baseline();
        let mut dram = Dram::new(dram_cfg, AddressMapping::PageInterleaving);
        let mut sched = mechanism.build(CtrlConfig::default(), dram_cfg.geometry);
        let mut done = Vec::new();
        let mut now = 0u64;
        for (i, s) in steps.iter().enumerate() {
            let addr = PhysAddr::new(s.line * 64);
            let kind = if s.write { AccessKind::Write } else { AccessKind::Read };
            if sched.can_accept(kind) {
                let a = Access::new(AccessId::new(i as u64), kind, addr, dram.decode(addr), now);
                sched.enqueue(a, now, &mut done);
            }
            for _ in 0..s.gap {
                sched.tick(&mut dram, now, &mut done);
                now += 1;
            }
        }
        let mut guard = 0;
        while sched.outstanding().total() > 0 && guard < 500_000 {
            sched.tick(&mut dram, now, &mut done);
            now += 1;
            guard += 1;
        }
        let read_sum: u64 = done
            .iter()
            .filter(|c| c.kind == AccessKind::Read)
            .map(|c| c.latency)
            .sum();
        prop_assert_eq!(read_sum, sched.stats().read_latency_sum);
        let write_sum: u64 = done
            .iter()
            .filter(|c| c.kind == AccessKind::Write)
            .map(|c| c.latency)
            .sum();
        prop_assert_eq!(write_sum, sched.stats().write_latency_sum);
        prop_assert_eq!(
            done.iter().filter(|c| c.kind == AccessKind::Read).count() as u64,
            sched.stats().reads_done
        );
    }

    /// The write queue never exceeds its configured capacity, and the pool
    /// never exceeds the pool capacity.
    #[test]
    fn capacities_respected(
        mechanism in mechanism_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..150),
    ) {
        let dram_cfg = DramConfig::baseline();
        let cfg = CtrlConfig { pool_capacity: 24, write_capacity: 6, ..CtrlConfig::default() };
        let mut dram = Dram::new(dram_cfg, AddressMapping::PageInterleaving);
        let mut sched = mechanism.build(cfg, dram_cfg.geometry);
        let mut done = Vec::new();
        let mut now = 0u64;
        // `now` advances with each tick; the enumerate index is separate.
        #[allow(clippy::explicit_counter_loop)]
        for (i, s) in steps.iter().enumerate() {
            let addr = PhysAddr::new(s.line * 64);
            let kind = if s.write { AccessKind::Write } else { AccessKind::Read };
            if sched.can_accept(kind) {
                let a = Access::new(AccessId::new(i as u64), kind, addr, dram.decode(addr), now);
                sched.enqueue(a, now, &mut done);
            }
            let o = sched.outstanding();
            prop_assert!(o.writes <= 6, "{}: write occupancy {}", mechanism, o.writes);
            prop_assert!(o.total() <= 24, "{}: pool occupancy {}", mechanism, o.total());
            sched.tick(&mut dram, now, &mut done);
            now += 1;
        }
    }

    /// Every mechanism obeys the DDR2 timing protocol on every stream: the
    /// shadow checker records zero violations.
    #[test]
    fn zero_protocol_violations(
        mechanism in mechanism_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..120),
    ) {
        let r = run(mechanism, &steps);
        prop_assert_eq!(r.violations, 0, "{}: mistimed DDR2 commands", mechanism);
    }

    /// Under aggressive deterministic fault injection (30% read errors,
    /// 30% write retries), every mechanism still completes every accepted
    /// access exactly once, drains fully, and stays protocol-clean.
    #[test]
    fn faults_retry_to_completion(
        mechanism in mechanism_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..100),
        seed in any::<u64>(),
    ) {
        let faults = FaultConfig {
            seed,
            read_error_permille: 300,
            write_retry_permille: 300,
            max_retries: 3,
        };
        let ctrl = CtrlConfig { faults: Some(faults), ..CtrlConfig::default() };
        let r = run_cfg(mechanism, &steps, ctrl);
        prop_assert!(r.stats_ok, "{mechanism}: failed to drain under fault injection");
        prop_assert_eq!(
            r.done.len(),
            r.queued.len() + r.forwarded.len(),
            "{}: completions != enqueues under fault injection", mechanism
        );
        let mut ids: Vec<u64> = r.done.iter().map(|c| c.id.value()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "{}: duplicate completion", mechanism);
        prop_assert_eq!(r.violations, 0, "{}: retries broke protocol", mechanism);
    }

    /// Bounded latency: with the watchdog escalating accesses past a small
    /// age, no Burst_TH access — including starvation-prone writes —
    /// completes later than the escalation age plus a service constant.
    #[test]
    fn burst_th_latency_bounded_by_escalation(
        steps in prop::collection::vec(step_strategy(), 1..100),
    ) {
        let escalate_age = 400;
        let ctrl = CtrlConfig {
            watchdog: WatchdogConfig { escalate_age, stall_limit: 1_000_000 },
            ..CtrlConfig::default()
        };
        let r = run_cfg(Mechanism::BurstTh(52), &steps, ctrl);
        prop_assert!(r.stats_ok, "failed to drain");
        // Once escalated, an access outranks every arbiter preference; the
        // constant covers serving a full pool of equally old accesses.
        let bound = escalate_age + 8_000;
        for c in &r.done {
            prop_assert!(
                c.latency <= bound,
                "access {} latency {} exceeds escalation bound {}",
                c.id, c.latency, bound
            );
        }
    }

    /// Burst_TH with extreme thresholds matches the dedicated RP/WP
    /// variants' observable behaviour on the same stream.
    #[test]
    fn th_extremes_match_rp_wp(steps in prop::collection::vec(step_strategy(), 1..80)) {
        let a = run(Mechanism::BurstTh(64), &steps);
        let b = run(Mechanism::BurstRp, &steps);
        prop_assert_eq!(a.done.len(), b.done.len());
        let key = |r: &Run| {
            let mut v: Vec<(u64, u64)> =
                r.done.iter().map(|c| (c.id.value(), c.done_at)).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(key(&a), key(&b), "TH(64) must equal Burst_RP");
        let c = run(Mechanism::BurstTh(0), &steps);
        let d = run(Mechanism::BurstWp, &steps);
        prop_assert_eq!(key(&c), key(&d), "TH(0) must equal Burst_WP");
    }
}
