//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (Section 5). Each driver returns structured rows; the
//! [`crate::report`] module renders them as the text tables the bench
//! harness prints.

use std::path::PathBuf;
use std::sync::Arc;

use burst_core::Mechanism;
use burst_dram::{Command, Cycle, Dir, DramConfig, Loc, RowPolicy, RowState, TimingParams};
use burst_workloads::SpecBenchmark;

use crate::checkpoint::{try_simulate_checkpointed, CheckpointPolicy, CheckpointedRunError};
use crate::simio::{real_io, SimIo};
use crate::supervisor::{supervise_with, CellError, CellOutcome, FailureKind, SupervisorConfig};
use crate::{simulate, try_simulate, Journal, RunLength, SimReport, SystemConfig};

/// Per-sweep checkpoint plan: where each cell writes its mid-run
/// checkpoint and how often. Threaded from the harness `--checkpoint-every`
/// / `--checkpoint-dir` flags down to every supervised cell.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Memory cycles between checkpoints; 0 disables checkpointing.
    pub every: u64,
    /// Directory holding one `<scope>-<benchmark>-<mechanism>.ckpt` file
    /// per in-flight cell.
    pub dir: PathBuf,
    /// Cell fingerprint the files are bound to — use the same fingerprint
    /// as the sweep's journal so both resume machineries agree on what
    /// configuration the state belongs to.
    pub fingerprint: u64,
    /// Whether checkpoint writes fsync before their atomic rename (see
    /// [`CheckpointPolicy::durable`]); threaded from the harness
    /// `--checkpoint-durable` flag, default `true`.
    pub durable: bool,
    /// The filesystem checkpoint I/O runs through —
    /// [`crate::simio::real_io`] in production, a
    /// [`crate::simio::ChaosIo`] under the crash-point matrix.
    pub io: Arc<dyn SimIo>,
}

impl CheckpointPlan {
    /// A production plan (real filesystem, durable writes).
    pub fn new(every: u64, dir: PathBuf, fingerprint: u64) -> CheckpointPlan {
        CheckpointPlan {
            every,
            dir,
            fingerprint,
            durable: true,
            io: real_io(),
        }
    }

    /// The checkpoint file for one cell (journal key with `/` flattened
    /// to `-`, plus the `.ckpt` suffix the repository gitignores).
    pub fn cell_path(
        &self,
        scope: &str,
        benchmark: SpecBenchmark,
        mechanism: Mechanism,
    ) -> PathBuf {
        self.dir.join(format!(
            "{}.ckpt",
            cell_key(scope, benchmark, mechanism).replace('/', "-")
        ))
    }

    /// Deletes orphaned `*.ckpt.tmp` scratch files in the plan's
    /// directory — the debris of writes that crashed between `File::create`
    /// and the atomic rename. Returns how many were removed. Best-effort:
    /// an unreadable directory (not yet created, permissions) removes
    /// nothing; live checkpoints are never touched.
    pub fn gc_orphans(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let is_orphan = name.to_str().is_some_and(|n| n.ends_with(".ckpt.tmp"));
            if is_orphan && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

/// Default instruction budget per run for harness experiments. The paper
/// simulates 2 billion instructions; this default preserves the shape at
/// laptop scale. Raise it via the drivers' `len` parameter for longer runs.
pub const DEFAULT_RUN: RunLength = RunLength::Instructions(120_000);

/// The six mechanisms Figure 8 plots.
pub fn fig8_mechanisms() -> [Mechanism; 6] {
    [
        Mechanism::BkInOrder,
        Mechanism::RowHit,
        Mechanism::Intel,
        Mechanism::BurstRp,
        Mechanism::BurstWp,
        Mechanism::BurstTh(Mechanism::PAPER_THRESHOLD),
    ]
}

/// The seven mechanisms Figure 10 plots (all except the BkInOrder
/// normalisation baseline).
pub fn fig10_mechanisms() -> [Mechanism; 7] {
    [
        Mechanism::RowHit,
        Mechanism::Intel,
        Mechanism::IntelRp,
        Mechanism::Burst,
        Mechanism::BurstRp,
        Mechanism::BurstWp,
        Mechanism::BurstTh(Mechanism::PAPER_THRESHOLD),
    ]
}

/// The threshold sweep of Figures 11 and 12: `Burst`, `WP` (= TH0),
/// TH8..TH60, `RP` (= TH64).
pub fn fig12_mechanisms() -> Vec<Mechanism> {
    let mut v = vec![Mechanism::Burst, Mechanism::BurstWp];
    for t in [8, 16, 24, 32, 40, 48, 52, 56, 60] {
        v.push(Mechanism::BurstTh(t));
    }
    v.push(Mechanism::BurstRp);
    v
}

/// One simulated (benchmark, mechanism) cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Benchmark simulated.
    pub benchmark: SpecBenchmark,
    /// Mechanism simulated.
    pub mechanism: Mechanism,
    /// Full report.
    pub report: SimReport,
}

/// A benchmark x mechanism sweep — the data behind Figures 7, 9 and 10.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// All simulated cells.
    pub cells: Vec<SweepCell>,
}

impl Sweep {
    /// Runs `benchmarks` x `mechanisms`, each for `len` at `seed`, on the
    /// default number of worker threads (see [`crate::default_jobs`]).
    pub fn run(
        benchmarks: &[SpecBenchmark],
        mechanisms: &[Mechanism],
        len: RunLength,
        seed: u64,
    ) -> Sweep {
        Self::run_with_jobs(benchmarks, mechanisms, len, seed, 0)
    }

    /// Like [`Sweep::run`], with an explicit worker-thread count: `0`
    /// auto-detects, `1` runs serially inline. Cell order — and every cell's
    /// report — is identical for any job count: each cell is an independent
    /// seeded simulation and [`crate::map_parallel`] returns results in
    /// input order.
    pub fn run_with_jobs(
        benchmarks: &[SpecBenchmark],
        mechanisms: &[Mechanism],
        len: RunLength,
        seed: u64,
        jobs: usize,
    ) -> Sweep {
        Self::run_with_config(
            &SystemConfig::baseline(),
            benchmarks,
            mechanisms,
            len,
            seed,
            jobs,
        )
    }

    /// Like [`Sweep::run_with_jobs`], on a caller-supplied base system
    /// configuration (each cell overrides only the mechanism) — the seam
    /// the harnesses use to thread global toggles such as
    /// [`SystemConfig::skip`] through every experiment.
    pub fn run_with_config(
        base: &SystemConfig,
        benchmarks: &[SpecBenchmark],
        mechanisms: &[Mechanism],
        len: RunLength,
        seed: u64,
        jobs: usize,
    ) -> Sweep {
        let mut grid = Vec::with_capacity(benchmarks.len() * mechanisms.len());
        for &b in benchmarks {
            for &m in mechanisms {
                grid.push((b, m));
            }
        }
        let cells = crate::map_parallel(&grid, jobs, |_, &(b, m)| {
            let cfg = base.with_mechanism(m);
            let report = simulate(&cfg, b.workload(seed), len);
            SweepCell {
                benchmark: b,
                mechanism: m,
                report,
            }
        });
        Sweep { cells }
    }

    /// Like [`Sweep::run_with_config`], but crash-isolated: every cell runs
    /// under [`crate::supervise`] with per-cell deadlines, bounded retries
    /// and (optionally) journalled resume. A panicking, stalling or wedged
    /// cell becomes a [`CellFailure`] record instead of tearing down the
    /// sweep; the returned [`Sweep`] holds every cell that *did* complete,
    /// still in grid order, so figure extraction degrades gracefully.
    ///
    /// `scope` namespaces journal keys (`scope/benchmark/mechanism`) so one
    /// journal file can serve several grids in the same harness run. When a
    /// `journal` is supplied, cells already recorded in it are restored
    /// without re-simulation (counted in [`Supervised::resumed`]) and every
    /// newly completed cell is appended and fsynced *before* the sweep
    /// moves on — a `SIGKILL` loses at most the cells in flight.
    ///
    /// When a [`CheckpointPlan`] is supplied too, even the cells in flight
    /// survive: each one periodically writes a fingerprint-bound
    /// checkpoint, a killed run resumes the cell mid-flight from it, the
    /// journal records which checkpoint file each completed cell used, and
    /// stale checkpoints of journalled cells are deleted on resume.
    #[allow(clippy::too_many_arguments)]
    pub fn run_supervised(
        scope: &str,
        base: &SystemConfig,
        benchmarks: &[SpecBenchmark],
        mechanisms: &[Mechanism],
        len: RunLength,
        seed: u64,
        jobs: usize,
        sup: &SupervisorConfig,
        journal: Option<&Journal>,
        ckpt: Option<&CheckpointPlan>,
    ) -> Supervised<Sweep> {
        let mut grid = Vec::with_capacity(benchmarks.len() * mechanisms.len());
        for &b in benchmarks {
            for &m in mechanisms {
                grid.push((b, m));
            }
        }
        let ckpt = ckpt.filter(|p| p.every > 0);
        if let Some(plan) = ckpt {
            // Scratch files from writes that crashed mid-protocol are
            // orphans: no resume path will ever read them.
            plan.gc_orphans();
        }
        let mut slots: Vec<Option<SweepCell>> = vec![None; grid.len()];
        let mut resumed = 0usize;
        let mut pending: Vec<(usize, (SpecBenchmark, Mechanism))> = Vec::new();
        let mut failures_by_idx: Vec<(usize, CellFailure)> = Vec::new();
        for (i, &(b, m)) in grid.iter().enumerate() {
            let key = cell_key(scope, b, m);
            if let Some(entry) = journal.and_then(|j| j.lookup(&key)) {
                // The cell is complete, so any checkpoint it left
                // behind — its own recorded path or the one this
                // plan would use — is stale; collect both.
                if let Some(p) = &entry.checkpoint {
                    let _ = std::fs::remove_file(p);
                }
                if let Some(plan) = ckpt {
                    let _ = std::fs::remove_file(plan.cell_path(scope, b, m));
                }
                slots[i] = Some(SweepCell {
                    benchmark: b,
                    mechanism: m,
                    report: entry.report.clone(),
                });
                resumed += 1;
            } else if let Some(q) = journal.and_then(|j| j.lookup_quarantine(&key)) {
                // The cell exhausted its retries in an earlier run: skip
                // it (graceful degradation — no re-burning the budget),
                // surface the recorded failure, and GC the checkpoint it
                // will never resume from.
                if let Some(plan) = ckpt {
                    let _ = std::fs::remove_file(plan.cell_path(scope, b, m));
                }
                failures_by_idx.push((
                    i,
                    CellFailure {
                        scope: scope.to_string(),
                        benchmark: b,
                        mechanism: m,
                        kind: q.kind,
                        attempts: q.attempts,
                        payload: q.payload.clone(),
                        quarantined: true,
                    },
                ));
            } else {
                pending.push((i, (b, m)));
            }
        }
        let items: Vec<(SpecBenchmark, Mechanism)> = pending.iter().map(|&(_, p)| p).collect();
        let base_cfg = *base;
        let run_plan = ckpt.cloned();
        let run_scope = scope.to_string();
        let outcomes = supervise_with(
            &items,
            jobs,
            sup,
            move |_, &(b, m), _attempt| {
                let cfg = base_cfg.with_mechanism(m);
                cfg.validate()
                    .map_err(|e| CellError::other(format!("invalid configuration: {e}")))?;
                match &run_plan {
                    Some(plan) => {
                        let policy = CheckpointPolicy {
                            every: plan.every,
                            path: plan.cell_path(&run_scope, b, m),
                            fingerprint: plan.fingerprint,
                            durable: plan.durable,
                            io: Arc::clone(&plan.io),
                        };
                        try_simulate_checkpointed(&cfg, || b.workload(seed), len, &policy).map_err(
                            |e| match e {
                                CheckpointedRunError::Run(e) => CellError::from(e),
                                CheckpointedRunError::Checkpoint(e) => {
                                    CellError::other(format!("checkpoint failure: {e}"))
                                }
                            },
                        )
                    }
                    None => try_simulate(&cfg, b.workload(seed), len).map_err(CellError::from),
                }
            },
            |i, outcome| {
                let Some(j) = journal else { return };
                let (b, m) = items[i];
                let key = cell_key(scope, b, m);
                match outcome {
                    CellOutcome::Done { value, attempts } => {
                        let path = ckpt.map(|plan| plan.cell_path(scope, b, m));
                        if let Err(e) =
                            j.record_with_checkpoint(&key, *attempts, value, path.as_deref())
                        {
                            // A broken journal must not fail the sweep: the
                            // results are still in memory; only resumability
                            // of this cell is lost.
                            eprintln!("warning: journal write failed for {key}: {e}");
                        }
                    }
                    CellOutcome::Failed {
                        kind,
                        attempts,
                        payload,
                    } => {
                        // Retries exhausted: quarantine the cell so the
                        // next resume skips it instead of burning the
                        // whole budget again on a deterministic failure.
                        if let Err(e) = j.record_quarantine(&key, *kind, *attempts, payload) {
                            eprintln!("warning: quarantine write failed for {key}: {e}");
                        }
                    }
                }
            },
        );
        let newly_quarantined = journal.is_some();
        for ((slot_idx, (b, m)), outcome) in pending.into_iter().zip(outcomes) {
            match outcome {
                CellOutcome::Done { value, .. } => {
                    slots[slot_idx] = Some(SweepCell {
                        benchmark: b,
                        mechanism: m,
                        report: value,
                    });
                }
                CellOutcome::Failed {
                    kind,
                    attempts,
                    payload,
                } => failures_by_idx.push((
                    slot_idx,
                    CellFailure {
                        scope: scope.to_string(),
                        benchmark: b,
                        mechanism: m,
                        kind,
                        attempts,
                        payload,
                        quarantined: newly_quarantined,
                    },
                )),
            }
        }
        failures_by_idx.sort_by_key(|&(i, _)| i);
        let failures = failures_by_idx.into_iter().map(|(_, f)| f).collect();
        Supervised {
            value: Sweep {
                cells: slots.into_iter().flatten().collect(),
            },
            failures,
            resumed,
        }
    }

    /// The cell for `(benchmark, mechanism)`, if simulated.
    pub fn cell(&self, benchmark: SpecBenchmark, mechanism: Mechanism) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.mechanism == mechanism)
    }

    /// Mechanisms present, in first-seen order.
    pub fn mechanisms(&self) -> Vec<Mechanism> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.mechanism) {
                out.push(c.mechanism);
            }
        }
        out
    }

    /// Benchmarks present, in first-seen order.
    pub fn benchmarks(&self) -> Vec<SpecBenchmark> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.benchmark) {
                out.push(c.benchmark);
            }
        }
        out
    }

    /// Figure 7: average read and write latency (memory cycles) per
    /// mechanism, averaged over benchmarks.
    pub fn fig7_rows(&self) -> Vec<Fig7Row> {
        self.mechanisms()
            .into_iter()
            .map(|m| {
                let cells: Vec<&SweepCell> =
                    self.cells.iter().filter(|c| c.mechanism == m).collect();
                let n = cells.len() as f64;
                Fig7Row {
                    mechanism: m,
                    read_latency: cells
                        .iter()
                        .map(|c| c.report.ctrl.avg_read_latency())
                        .sum::<f64>()
                        / n,
                    write_latency: cells
                        .iter()
                        .map(|c| c.report.ctrl.avg_write_latency())
                        .sum::<f64>()
                        / n,
                }
            })
            .collect()
    }

    /// Figure 9: row-state mix and bus utilisation per mechanism, averaged
    /// over benchmarks.
    pub fn fig9_rows(&self) -> Vec<Fig9Row> {
        self.mechanisms()
            .into_iter()
            .map(|m| {
                let cells: Vec<&SweepCell> =
                    self.cells.iter().filter(|c| c.mechanism == m).collect();
                let n = cells.len() as f64;
                let avg = |f: &dyn Fn(&SweepCell) -> f64| -> f64 {
                    cells.iter().map(|c| f(c)).sum::<f64>() / n
                };
                Fig9Row {
                    mechanism: m,
                    row_hit: avg(&|c| c.report.ctrl.row_hit_rate()),
                    row_conflict: avg(&|c| c.report.ctrl.row_conflict_rate()),
                    row_empty: avg(&|c| c.report.ctrl.row_empty_rate()),
                    addr_bus: avg(&|c| c.report.addr_bus_utilization()),
                    data_bus: avg(&|c| c.report.data_bus_utilization()),
                }
            })
            .collect()
    }

    /// Figure 10: execution time per benchmark per mechanism, normalised to
    /// `BkInOrder`.
    ///
    /// Tolerates an incomplete sweep (supervised runs can lose cells): a
    /// benchmark whose `BkInOrder` baseline is missing is dropped entirely,
    /// and a missing `(benchmark, mechanism)` cell is simply absent from
    /// that row's `normalized` pairs.
    pub fn fig10_rows(&self) -> Vec<Fig10Row> {
        self.benchmarks()
            .into_iter()
            .filter_map(|b| {
                let base = self.cell(b, Mechanism::BkInOrder)?.report.cpu_cycles as f64;
                let normalized = self
                    .mechanisms()
                    .into_iter()
                    .filter(|&m| m != Mechanism::BkInOrder)
                    .filter_map(|m| {
                        self.cell(b, m)
                            .map(|cell| (m, cell.report.cpu_cycles as f64 / base))
                    })
                    .collect();
                Some(Fig10Row {
                    benchmark: b,
                    normalized,
                })
            })
            .collect()
    }

    /// Geometric-mean normalised execution time per mechanism (the
    /// "average" group of Figure 10).
    pub fn fig10_average(&self) -> Vec<(Mechanism, f64)> {
        let rows = self.fig10_rows();
        self.mechanisms()
            .into_iter()
            .filter(|&m| m != Mechanism::BkInOrder)
            .map(|m| {
                let product: f64 = rows
                    .iter()
                    .map(|r| {
                        r.normalized
                            .iter()
                            .find(|(mm, _)| *mm == m)
                            .map(|(_, v)| v.ln())
                            .unwrap_or(0.0)
                    })
                    .sum();
                (m, (product / rows.len() as f64).exp())
            })
            .collect()
    }
}

/// The journal key for one `(scope, benchmark, mechanism)` cell —
/// `scope/benchmark/mechanism`, e.g. `sweep/swim/Burst_TH52`. Mechanism
/// names round-trip through [`Mechanism::from_name`], so the key is both
/// human-greppable and machine-parseable.
pub fn cell_key(scope: &str, benchmark: SpecBenchmark, mechanism: Mechanism) -> String {
    format!("{scope}/{}/{}", benchmark.name(), mechanism.name())
}

/// One unrecovered cell of a supervised experiment, for the failure
/// taxonomy summary.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Which grid the cell belonged to (`sweep`, `fig8`, `fig11`, `fig12`).
    pub scope: String,
    /// Benchmark of the failed cell.
    pub benchmark: SpecBenchmark,
    /// Mechanism of the failed cell.
    pub mechanism: Mechanism,
    /// Taxonomy bucket of the final failure.
    pub kind: FailureKind,
    /// Attempts consumed (including retries).
    pub attempts: u32,
    /// Diagnostic of the final failure.
    pub payload: String,
    /// Whether the cell is quarantined in the sweep's journal: resumes
    /// skip it (surfacing this record) instead of retrying. `false` for
    /// unjournalled sweeps, whose failures are retried on every run.
    pub quarantined: bool,
}

impl CellFailure {
    /// The failed cell's journal key (`scope/benchmark/mechanism`).
    pub fn key(&self) -> String {
        cell_key(&self.scope, self.benchmark, self.mechanism)
    }
}

/// A supervised experiment result: the salvageable value plus the failure
/// records and resume statistics the harness reports.
#[derive(Debug, Clone)]
pub struct Supervised<T> {
    /// The experiment's (possibly partial) result.
    pub value: T,
    /// Every unrecovered cell, in grid order.
    pub failures: Vec<CellFailure>,
    /// Cells restored from the journal instead of re-simulated.
    pub resumed: usize,
}

impl<T> Supervised<T> {
    /// Whether every cell completed (possibly after retries).
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One Figure 7 row.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Average read latency in memory cycles.
    pub read_latency: f64,
    /// Average write latency in memory cycles.
    pub write_latency: f64,
}

/// One Figure 9 row.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Row-hit fraction.
    pub row_hit: f64,
    /// Row-conflict fraction.
    pub row_conflict: f64,
    /// Row-empty fraction.
    pub row_empty: f64,
    /// Address-bus utilisation.
    pub addr_bus: f64,
    /// Data-bus utilisation.
    pub data_bus: f64,
}

/// One Figure 10 row: a benchmark's execution time under each mechanism,
/// normalised to BkInOrder.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark.
    pub benchmark: SpecBenchmark,
    /// `(mechanism, normalised execution time)` pairs.
    pub normalized: Vec<(Mechanism, f64)>,
}

/// Figure 8 / 11: outstanding-access distributions for one benchmark under
/// several mechanisms.
#[derive(Debug, Clone)]
pub struct OutstandingRow {
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Fraction of time N reads were outstanding, index = N.
    pub reads: Vec<f64>,
    /// Fraction of time N writes were outstanding, index = N.
    pub writes: Vec<f64>,
    /// Write-queue saturation rate (Section 5.1 quotes 24% Intel, 46%
    /// Burst, 70% Burst_RP, 2% Burst_WP, 9% Burst_TH52 for swim).
    pub saturation: f64,
    /// Mean outstanding reads.
    pub mean_reads: f64,
    /// Mean outstanding writes.
    pub mean_writes: f64,
}

/// Figure 8: distribution of outstanding accesses for `benchmark` (the
/// paper uses swim) under the Figure 8 mechanisms.
pub fn fig8(benchmark: SpecBenchmark, len: RunLength, seed: u64) -> Vec<OutstandingRow> {
    fig8_with_jobs(benchmark, len, seed, 0)
}

/// [`fig8`] with an explicit worker-thread count (`0` = auto-detect).
pub fn fig8_with_jobs(
    benchmark: SpecBenchmark,
    len: RunLength,
    seed: u64,
    jobs: usize,
) -> Vec<OutstandingRow> {
    fig8_with_config(&SystemConfig::baseline(), benchmark, len, seed, jobs)
}

/// [`fig8_with_jobs`] on a caller-supplied base configuration.
pub fn fig8_with_config(
    base: &SystemConfig,
    benchmark: SpecBenchmark,
    len: RunLength,
    seed: u64,
    jobs: usize,
) -> Vec<OutstandingRow> {
    outstanding_rows(base, benchmark, &fig8_mechanisms(), len, seed, jobs)
}

/// Figure 11: distribution of outstanding accesses for `benchmark` under
/// the threshold sweep.
pub fn fig11(benchmark: SpecBenchmark, len: RunLength, seed: u64) -> Vec<OutstandingRow> {
    fig11_with_jobs(benchmark, len, seed, 0)
}

/// [`fig11`] with an explicit worker-thread count (`0` = auto-detect).
pub fn fig11_with_jobs(
    benchmark: SpecBenchmark,
    len: RunLength,
    seed: u64,
    jobs: usize,
) -> Vec<OutstandingRow> {
    fig11_with_config(&SystemConfig::baseline(), benchmark, len, seed, jobs)
}

/// [`fig11_with_jobs`] on a caller-supplied base configuration.
pub fn fig11_with_config(
    base: &SystemConfig,
    benchmark: SpecBenchmark,
    len: RunLength,
    seed: u64,
    jobs: usize,
) -> Vec<OutstandingRow> {
    outstanding_rows(base, benchmark, &fig12_mechanisms(), len, seed, jobs)
}

/// Derives one outstanding-access row from a finished report. Everything
/// Figure 8/11 plots lives in the controller stats, so rows can equally be
/// rebuilt from journalled reports on resume.
fn outstanding_row(mechanism: Mechanism, report: &SimReport) -> OutstandingRow {
    OutstandingRow {
        mechanism,
        reads: report.ctrl.outstanding_reads.fractions(),
        writes: report.ctrl.outstanding_writes.fractions(),
        saturation: report.ctrl.write_saturation_rate(),
        mean_reads: report.ctrl.outstanding_reads.mean(),
        mean_writes: report.ctrl.outstanding_writes.mean(),
    }
}

fn outstanding_rows(
    base: &SystemConfig,
    benchmark: SpecBenchmark,
    mechanisms: &[Mechanism],
    len: RunLength,
    seed: u64,
    jobs: usize,
) -> Vec<OutstandingRow> {
    crate::map_parallel(mechanisms, jobs, |_, &m| {
        let cfg = base.with_mechanism(m);
        let report = simulate(&cfg, benchmark.workload(seed), len);
        outstanding_row(m, &report)
    })
}

/// Crash-isolated [`outstanding_rows`]: the supervised backend for
/// Figures 8 and 11. Pass [`fig8_mechanisms`] with scope `"fig8"` or
/// [`fig12_mechanisms`] with scope `"fig11"`. Rows for failed cells are
/// simply missing; the failures travel in [`Supervised::failures`].
#[allow(clippy::too_many_arguments)]
pub fn outstanding_supervised(
    scope: &str,
    base: &SystemConfig,
    benchmark: SpecBenchmark,
    mechanisms: &[Mechanism],
    len: RunLength,
    seed: u64,
    jobs: usize,
    sup: &SupervisorConfig,
    journal: Option<&Journal>,
    ckpt: Option<&CheckpointPlan>,
) -> Supervised<Vec<OutstandingRow>> {
    let s = Sweep::run_supervised(
        scope,
        base,
        &[benchmark],
        mechanisms,
        len,
        seed,
        jobs,
        sup,
        journal,
        ckpt,
    );
    Supervised {
        value: s
            .value
            .cells
            .iter()
            .map(|c| outstanding_row(c.mechanism, &c.report))
            .collect(),
        failures: s.failures,
        resumed: s.resumed,
    }
}

/// One Figure 12 row: threshold-sweep latency and execution time averaged
/// over benchmarks, normalised to plain `Burst`.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// Mechanism (a threshold point).
    pub mechanism: Mechanism,
    /// Average read latency (memory cycles).
    pub read_latency: f64,
    /// Average write latency (memory cycles).
    pub write_latency: f64,
    /// Execution time normalised to plain `Burst`.
    pub normalized_exec: f64,
}

/// Figure 12: the threshold sweep over `benchmarks`.
pub fn fig12(benchmarks: &[SpecBenchmark], len: RunLength, seed: u64) -> Vec<Fig12Row> {
    fig12_with_jobs(benchmarks, len, seed, 0)
}

/// [`fig12`] with an explicit worker-thread count (`0` = auto-detect).
pub fn fig12_with_jobs(
    benchmarks: &[SpecBenchmark],
    len: RunLength,
    seed: u64,
    jobs: usize,
) -> Vec<Fig12Row> {
    fig12_with_config(&SystemConfig::baseline(), benchmarks, len, seed, jobs)
}

/// [`fig12_with_jobs`] on a caller-supplied base configuration.
pub fn fig12_with_config(
    base: &SystemConfig,
    benchmarks: &[SpecBenchmark],
    len: RunLength,
    seed: u64,
    jobs: usize,
) -> Vec<Fig12Row> {
    let mechanisms = fig12_mechanisms();
    let sweep = Sweep::run_with_config(base, benchmarks, &mechanisms, len, seed, jobs);
    fig12_rows_from_sweep(&sweep, &mechanisms)
}

/// Crash-isolated Figure 12: the threshold sweep under supervision, with
/// journalled resume under scope `"fig12"`. Mechanisms whose every cell
/// failed are dropped from the rows; normalisation falls back to `NaN` if
/// the plain-`Burst` baseline itself is entirely missing.
#[allow(clippy::too_many_arguments)]
pub fn fig12_supervised(
    base: &SystemConfig,
    benchmarks: &[SpecBenchmark],
    len: RunLength,
    seed: u64,
    jobs: usize,
    sup: &SupervisorConfig,
    journal: Option<&Journal>,
    ckpt: Option<&CheckpointPlan>,
) -> Supervised<Vec<Fig12Row>> {
    let mechanisms = fig12_mechanisms();
    let s = Sweep::run_supervised(
        "fig12",
        base,
        benchmarks,
        &mechanisms,
        len,
        seed,
        jobs,
        sup,
        journal,
        ckpt,
    );
    Supervised {
        value: fig12_rows_from_sweep(&s.value, &mechanisms),
        failures: s.failures,
        resumed: s.resumed,
    }
}

/// Aggregates a (possibly partial) threshold sweep into Figure 12 rows.
/// A mechanism with no surviving cells yields no row; a missing `Burst`
/// normalisation baseline yields `NaN` normalised execution times rather
/// than a panic, so salvage output still renders.
fn fig12_rows_from_sweep(sweep: &Sweep, mechanisms: &[Mechanism]) -> Vec<Fig12Row> {
    let base: f64 = sweep
        .cells
        .iter()
        .filter(|c| c.mechanism == Mechanism::Burst)
        .map(|c| c.report.cpu_cycles as f64)
        .sum();
    mechanisms
        .iter()
        .filter_map(|&m| {
            let cells: Vec<&SweepCell> = sweep.cells.iter().filter(|c| c.mechanism == m).collect();
            if cells.is_empty() {
                return None;
            }
            let n = cells.len() as f64;
            let exec: f64 = cells.iter().map(|c| c.report.cpu_cycles as f64).sum();
            Some(Fig12Row {
                mechanism: m,
                read_latency: cells
                    .iter()
                    .map(|c| c.report.ctrl.avg_read_latency())
                    .sum::<f64>()
                    / n,
                write_latency: cells
                    .iter()
                    .map(|c| c.report.ctrl.avg_write_latency())
                    .sum::<f64>()
                    / n,
                normalized_exec: if base > 0.0 { exec / base } else { f64::NAN },
            })
        })
        .collect()
}

/// Table 1: access latency by controller policy and row state.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Controller policy.
    pub policy: RowPolicy,
    /// Row-hit latency, if defined.
    pub hit: Option<Cycle>,
    /// Row-empty latency.
    pub empty: Option<Cycle>,
    /// Row-conflict latency, if defined.
    pub conflict: Option<Cycle>,
}

/// Table 1 for a given device timing.
pub fn table1(timing: &TimingParams) -> Vec<Table1Row> {
    [RowPolicy::OpenPage, RowPolicy::ClosePageAutoprecharge]
        .into_iter()
        .map(|policy| Table1Row {
            policy,
            hit: policy.access_latency(RowState::Hit, timing),
            empty: policy.access_latency(RowState::Empty, timing),
            conflict: policy.access_latency(RowState::Conflict, timing),
        })
        .collect()
}

/// Figure 1: schedules the motivating four-access example on the 2-2-2
/// burst-length-4 device and returns `(in_order_cycles, out_of_order_cycles)`.
///
/// The paper's hand schedule takes 28 cycles strictly in order without
/// interleaving and 16 cycles out of order with interleaving.
pub fn fig1() -> (Cycle, Cycle) {
    (fig1_in_order(), fig1_out_of_order())
}

/// The four accesses of Figure 1: two row empties (bank0 row0, bank1 row0),
/// then two row conflicts (bank0 row1, bank0 row0).
fn fig1_accesses() -> [Loc; 4] {
    [
        Loc::new(0, 0, 0, 0, 0),
        Loc::new(0, 0, 1, 0, 0),
        Loc::new(0, 0, 0, 1, 0),
        Loc::new(0, 0, 0, 0, 8),
    ]
}

/// Strictly serial, non-interleaved execution (Figure 1a): each access's
/// transactions and data complete before the next access begins.
fn fig1_in_order() -> Cycle {
    let cfg = DramConfig::figure1();
    let mut ch = burst_dram::Channel::new(cfg);
    let mut now: Cycle = 0;
    for loc in fig1_accesses() {
        // Issue precharge/activate/column strictly when each unblocks,
        // without overlapping the next access.
        loop {
            let state = ch.row_state(loc);
            let cmd = match state {
                RowState::Hit => Command::Column {
                    loc,
                    dir: Dir::Read,
                    auto_precharge: false,
                },
                RowState::Empty => Command::Activate(loc),
                RowState::Conflict => Command::Precharge(loc),
            };
            let at = ch.earliest_issue(&cmd, now).expect("command applicable");
            let issued = ch.issue(&cmd, at);
            now = at;
            if cmd.is_column() {
                now = issued.data_end; // wait for data before the next access
                break;
            }
        }
    }
    now
}

/// Out-of-order, interleaved execution (Figure 1b) via the burst scheduler.
fn fig1_out_of_order() -> Cycle {
    use burst_core::{Access, AccessId, AccessKind, CtrlConfig};
    use burst_dram::{AddressMapping, Dram};

    let cfg = DramConfig::figure1();
    let mut dram = Dram::new(cfg, AddressMapping::PageInterleaving);
    let mut sched = Mechanism::Burst.build(CtrlConfig::default(), cfg.geometry);
    let mut done = Vec::new();
    for (i, loc) in fig1_accesses().into_iter().enumerate() {
        // Synthesise distinct addresses; the scheduler only uses `loc`.
        let addr = burst_dram::PhysAddr::new(i as u64 * 64);
        sched.enqueue(
            Access::new(AccessId::new(i as u64), AccessKind::Read, addr, loc, 0),
            0,
            &mut done,
        );
    }
    let mut now = 0;
    while done.len() < 4 {
        sched.tick(&mut dram, now, &mut done);
        now += 1;
        assert!(now < 1000, "figure 1 example must complete quickly");
    }
    done.iter()
        .map(|c| c.done_at)
        .max()
        .expect("four completions")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_for_pc2_6400() {
        let rows = table1(&TimingParams::ddr2_pc2_6400());
        assert_eq!(rows[0].hit, Some(5));
        assert_eq!(rows[0].empty, Some(10));
        assert_eq!(rows[0].conflict, Some(15));
        assert_eq!(rows[1].hit, None);
        assert_eq!(rows[1].empty, Some(10));
        assert_eq!(rows[1].conflict, None);
    }

    #[test]
    fn fig1_in_order_is_28_cycles() {
        // Paper Figure 1(a): 28 memory cycles for the four accesses.
        assert_eq!(fig1_in_order(), 28);
    }

    #[test]
    fn fig1_out_of_order_beats_in_order() {
        let (in_order, ooo) = fig1();
        assert_eq!(in_order, 28);
        assert!(
            ooo <= 20,
            "out-of-order with interleaving should approach the paper's 16 cycles, got {ooo}"
        );
        assert!(ooo < in_order);
    }

    #[test]
    fn fig12_mechanism_list_matches_paper_axis() {
        let names: Vec<String> = fig12_mechanisms().iter().map(|m| m.name()).collect();
        assert_eq!(names.first().unwrap(), "Burst");
        assert_eq!(names.last().unwrap(), "Burst_RP");
        assert!(names.contains(&"Burst_TH52".to_string()));
        assert!(names.contains(&"Burst_WP".to_string()));
    }

    #[test]
    fn supervised_sweep_matches_plain_sweep() {
        let base = SystemConfig::baseline();
        let bs = [SpecBenchmark::Swim];
        let ms = [Mechanism::BkInOrder, Mechanism::BurstTh(52)];
        let len = RunLength::Instructions(3_000);
        let plain = Sweep::run_with_config(&base, &bs, &ms, len, 1, 1);
        let sup = SupervisorConfig {
            backoff_base_ms: 0,
            ..SupervisorConfig::default()
        };
        let s = Sweep::run_supervised("sweep", &base, &bs, &ms, len, 1, 2, &sup, None, None);
        assert!(s.ok());
        assert_eq!(s.resumed, 0);
        assert_eq!(s.value.cells.len(), plain.cells.len());
        for (a, b) in plain.cells.iter().zip(&s.value.cells) {
            assert_eq!(a.report, b.report, "supervision must not perturb results");
        }
    }

    #[test]
    fn supervised_sweep_restores_cells_from_journal() {
        let base = SystemConfig::baseline();
        let bs = [SpecBenchmark::Gzip];
        let ms = [Mechanism::BkInOrder, Mechanism::Burst];
        let len = RunLength::Instructions(2_000);
        let sup = SupervisorConfig {
            backoff_base_ms: 0,
            ..SupervisorConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("burst-exp-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.journal");
        let fp = crate::journal::fingerprint("experiments-test");
        let first = {
            let journal = crate::Journal::create(&path, fp).unwrap();
            Sweep::run_supervised(
                "sweep",
                &base,
                &bs,
                &ms,
                len,
                1,
                1,
                &sup,
                Some(&journal),
                None,
            )
        };
        assert!(first.ok());
        let journal = crate::Journal::resume(&path, fp).unwrap();
        assert_eq!(journal.completed_cells(), 2);
        let second = Sweep::run_supervised(
            "sweep",
            &base,
            &bs,
            &ms,
            len,
            1,
            1,
            &sup,
            Some(&journal),
            None,
        );
        assert_eq!(second.resumed, 2, "every cell restored, none re-simulated");
        for (a, b) in first.value.cells.iter().zip(&second.value.cells) {
            assert_eq!(a.report, b.report, "journal round trip must be lossless");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_supervised_sweep_matches_and_garbage_collects() {
        let base = SystemConfig::baseline();
        let bs = [SpecBenchmark::Swim];
        let ms = [Mechanism::BkInOrder, Mechanism::BurstTh(52)];
        let len = RunLength::Instructions(3_000);
        let sup = SupervisorConfig {
            backoff_base_ms: 0,
            ..SupervisorConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("burst-exp-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fp = crate::journal::fingerprint("experiments-ckpt-test");
        let plan = CheckpointPlan::new(500, dir.clone(), fp);
        let jpath = dir.join("sweep.journal");
        let plain = Sweep::run_with_config(&base, &bs, &ms, len, 1, 1);
        let first = {
            let journal = crate::Journal::create(&jpath, fp).unwrap();
            Sweep::run_supervised(
                "sweep",
                &base,
                &bs,
                &ms,
                len,
                1,
                1,
                &sup,
                Some(&journal),
                Some(&plan),
            )
        };
        assert!(first.ok());
        for (a, b) in plain.cells.iter().zip(&first.value.cells) {
            assert_eq!(a.report, b.report, "checkpointing must not perturb results");
        }
        for &(b, m) in &[(bs[0], ms[0]), (bs[0], ms[1])] {
            assert!(
                !plan.cell_path("sweep", b, m).exists(),
                "completed cells leave no checkpoint behind"
            );
        }
        // The journal records each cell's checkpoint path; a resumed sweep
        // garbage-collects stale checkpoint files a crash left behind.
        let journal = crate::Journal::resume(&jpath, fp).unwrap();
        let stale = plan.cell_path("sweep", bs[0], ms[0]);
        std::fs::write(&stale, b"stale").unwrap();
        let second = Sweep::run_supervised(
            "sweep",
            &base,
            &bs,
            &ms,
            len,
            1,
            1,
            &sup,
            Some(&journal),
            Some(&plan),
        );
        assert_eq!(second.resumed, 2);
        assert!(!stale.exists(), "resume deletes stale checkpoints");
        assert_eq!(
            journal
                .lookup(&cell_key("sweep", bs[0], ms[0]))
                .unwrap()
                .checkpoint
                .as_deref(),
            Some(stale.as_path()),
            "journal entries carry the checkpoint path"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervised_sweep_salvages_around_invalid_cells() {
        // BurstTh(200) exceeds the write-queue capacity, so validate()
        // rejects it: the cell must fail as Other while siblings complete.
        let base = SystemConfig::baseline();
        let bs = [SpecBenchmark::Gzip];
        let ms = [Mechanism::BkInOrder, Mechanism::BurstTh(200)];
        let sup = SupervisorConfig {
            backoff_base_ms: 0,
            max_retries: 0,
            ..SupervisorConfig::default()
        };
        let s = Sweep::run_supervised(
            "sweep",
            &base,
            &bs,
            &ms,
            RunLength::Instructions(2_000),
            1,
            1,
            &sup,
            None,
            None,
        );
        assert_eq!(s.value.cells.len(), 1);
        assert_eq!(s.value.cells[0].mechanism, Mechanism::BkInOrder);
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].kind, FailureKind::Other);
        assert_eq!(s.failures[0].key(), "sweep/gzip/Burst_TH200");
    }

    #[test]
    fn sweep_runs_and_extracts_rows() {
        let sweep = Sweep::run(
            &[SpecBenchmark::Swim],
            &[Mechanism::BkInOrder, Mechanism::BurstTh(52)],
            RunLength::Instructions(3_000),
            1,
        );
        assert_eq!(sweep.cells.len(), 2);
        let fig7 = sweep.fig7_rows();
        assert_eq!(fig7.len(), 2);
        assert!(fig7.iter().all(|r| r.read_latency > 0.0));
        let fig9 = sweep.fig9_rows();
        let sum = fig9[0].row_hit + fig9[0].row_conflict + fig9[0].row_empty;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "row states partition accesses: {sum}"
        );
        let fig10 = sweep.fig10_rows();
        assert_eq!(fig10.len(), 1);
        assert_eq!(fig10[0].normalized.len(), 1);
    }
}
