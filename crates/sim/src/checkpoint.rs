//! On-disk checkpoint files: versioned, fingerprint-bound snapshots of a
//! running simulation, written atomically so a crash — even mid-write —
//! never leaves a checkpoint that restores silently wrong.
//!
//! A checkpoint file binds three things together:
//!
//! 1. a **cell fingerprint** — the same [`crate::journal::fingerprint`]
//!    hash a sweep journal uses, covering everything that changes the
//!    cell's results (configuration, workload, seed, run length). A
//!    checkpoint written under a different fingerprint is refused, so a
//!    stale file from an earlier configuration can never contaminate a
//!    resumed run;
//! 2. the **state hash** of the serialised observable state, verified on
//!    load so bit rot or a torn write surfaces as
//!    [`CheckpointError::HashMismatch`] instead of a wrong result;
//! 3. the **run position**: workload operations consumed (the workload is
//!    rebuilt from its seed and fast-forwarded — PRNG internals never
//!    touch the disk) and the [`RunCursor`] carrying the retirement
//!    watchdog across the boundary.
//!
//! File layout (all little-endian, via [`burst_snap`]):
//!
//! ```text
//! "BCKP"  u32 version=1  u64 fingerprint  u64 state_hash
//! u64 ops_consumed  RunCursor  bytes body
//! ```
//!
//! [`try_simulate_checkpointed`] is the harness entry point: it resumes
//! from an existing valid checkpoint, simulates in
//! [`CheckpointPolicy::every`]-cycle chunks, rewrites the checkpoint at
//! each chunk boundary, and removes it once the cell completes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use burst_snap::{fnv1a64, SnapError, SnapReader, SnapWriter};
use burst_workloads::{CountingSource, OpSource};

use crate::simio::{real_io, IoSite, RealIo, SimIo};
use crate::system::{
    ChunkOutcome, RunCursor, RunError, RunLength, SimReport, System, SystemConfig,
};

/// Magic bytes opening every checkpoint file.
const MAGIC: [u8; 4] = *b"BCKP";
/// Current checkpoint format version.
const VERSION: u32 = 1;

/// Why a checkpoint file could not be written, read or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file ends before the format says it should (torn write).
    Truncated,
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file uses a format version this build does not understand.
    UnsupportedVersion(u32),
    /// The checkpoint belongs to a differently-configured cell.
    FingerprintMismatch {
        /// Fingerprint the resuming cell expects.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
    /// A decoded value is impossible for the target state.
    Corrupt(&'static str),
    /// The body does not hash to the recorded state hash (bit rot or a
    /// hand-edited file).
    HashMismatch {
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the body as read.
        found: u64,
    },
    /// The simulation state cannot be serialised (caller-supplied
    /// scheduler without checkpoint support).
    Unsupported(&'static str),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Truncated => f.write_str("checkpoint file is truncated"),
            CheckpointError::BadMagic => f.write_str("file is not a burst checkpoint"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "checkpoint format version {v} is not supported")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different cell configuration \
                 (expected fingerprint {expected:016x}, found {found:016x})"
            ),
            CheckpointError::Corrupt(what) => write!(f, "checkpoint is corrupt: {what}"),
            CheckpointError::HashMismatch { expected, found } => write!(
                f,
                "checkpoint body hash {found:016x} does not match the \
                 recorded state hash {expected:016x}"
            ),
            CheckpointError::Unsupported(what) => {
                write!(f, "state cannot be checkpointed: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<SnapError> for CheckpointError {
    fn from(e: SnapError) -> Self {
        match e {
            SnapError::Truncated => CheckpointError::Truncated,
            SnapError::Corrupt(what) => CheckpointError::Corrupt(what),
            SnapError::Unsupported(what) => CheckpointError::Unsupported(what),
        }
    }
}

/// One decoded checkpoint: header fields plus the serialised system body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Cell fingerprint the checkpoint is bound to.
    pub fingerprint: u64,
    /// FNV-1a digest of the body's observable sections.
    pub state_hash: u64,
    /// Workload operations consumed up to the checkpoint (warm-up
    /// included), for seed-rebuild fast-forward.
    pub ops_consumed: u64,
    /// Run-loop counters at the chunk boundary.
    pub cursor: RunCursor,
    /// Serialised system state ([`System::checkpoint`] bytes).
    pub body: Vec<u8>,
}

impl Checkpoint {
    /// Captures `sys` at a step boundary.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] when the scheduler cannot be
    /// serialised.
    pub fn capture(
        sys: &System,
        fingerprint: u64,
        ops_consumed: u64,
        cursor: RunCursor,
    ) -> Result<Checkpoint, CheckpointError> {
        let snap = sys.checkpoint()?;
        Ok(Checkpoint {
            fingerprint,
            state_hash: snap.state_hash,
            ops_consumed,
            cursor,
            body: snap.bytes,
        })
    }

    /// Writes the checkpoint atomically: the bytes land in a `.tmp`
    /// sibling, are fsynced, and only then renamed over `path` — so a
    /// crash at any instant leaves either the previous checkpoint or this
    /// one, never a torn hybrid.
    ///
    /// # Errors
    ///
    /// Any filesystem failure writing, syncing or renaming.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_with(path, &mut SnapWriter::new(), true)
    }

    /// [`Checkpoint::save`] through a caller-owned encode buffer, with the
    /// per-write fsync optional. `scratch` is cleared and reused, so a
    /// loop writing many checkpoints pays for one allocation, not one per
    /// checkpoint.
    ///
    /// With `durable` false the `.tmp`-then-rename dance is kept (a
    /// *process* crash still leaves the previous or the new file intact)
    /// but the data is not forced to disk before the rename — an OS crash
    /// or power loss may surface a torn file. That is a durability
    /// downgrade, never a correctness one: [`Checkpoint::load`] validates
    /// magic, version, fingerprint and body hash, and
    /// [`try_simulate_checkpointed`] treats any invalid file as "no
    /// checkpoint" and restarts the cell from scratch with bit-identical
    /// results.
    ///
    /// # Errors
    ///
    /// Any filesystem failure writing, syncing or renaming.
    pub fn save_with(
        &self,
        path: &Path,
        scratch: &mut SnapWriter,
        durable: bool,
    ) -> Result<(), CheckpointError> {
        self.save_with_io(path, scratch, durable, &RealIo)
    }

    /// [`Checkpoint::save_with`] through an injectable filesystem — the
    /// chaos seam. Each step of the atomic protocol is a labeled crash
    /// point: scratch write ([`IoSite::CkptTmpWrite`]), fsync
    /// ([`IoSite::CkptSync`]), rename ([`IoSite::CkptRename`]).
    ///
    /// # Errors
    ///
    /// Any filesystem failure writing, syncing or renaming.
    pub fn save_with_io(
        &self,
        path: &Path,
        scratch: &mut SnapWriter,
        durable: bool,
        io: &dyn SimIo,
    ) -> Result<(), CheckpointError> {
        scratch.clear();
        for b in MAGIC {
            scratch.u8(b);
        }
        scratch.u32(VERSION);
        scratch.u64(self.fingerprint);
        scratch.u64(self.state_hash);
        scratch.u64(self.ops_consumed);
        self.cursor.save_snap(scratch);
        scratch.bytes(&self.body);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                // audit: allow(io-bypass): directory creation is not a labeled crash point — a failure surfaces via the write_new that follows
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = tmp_path(path);
        let f = io.write_new(IoSite::CkptTmpWrite, &tmp, scratch.as_slice())?;
        if durable {
            io.sync(IoSite::CkptSync, &f)?;
        }
        drop(f);
        io.rename(IoSite::CkptRename, &tmp, path)?;
        Ok(())
    }

    /// Reads and validates a checkpoint: magic, version, fingerprint and
    /// body hash are all checked before any state is touched.
    ///
    /// # Errors
    ///
    /// Every [`CheckpointError`] variant; a malformed file never panics.
    pub fn load(path: &Path, expected_fingerprint: u64) -> Result<Checkpoint, CheckpointError> {
        Self::load_with_io(path, expected_fingerprint, &RealIo)
    }

    /// [`Checkpoint::load`] through an injectable filesystem — the chaos
    /// seam ([`IoSite::CkptRead`]). A truncated read surfaces through the
    /// normal validation chain, never as a panic.
    ///
    /// # Errors
    ///
    /// Every [`CheckpointError`] variant; a malformed file never panics.
    pub fn load_with_io(
        path: &Path,
        expected_fingerprint: u64,
        io: &dyn SimIo,
    ) -> Result<Checkpoint, CheckpointError> {
        let bytes = io.read(IoSite::CkptRead, path)?;
        let mut r = SnapReader::new(&bytes);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8().map_err(|_| CheckpointError::Truncated)?;
        }
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32().map_err(|_| CheckpointError::Truncated)?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let fingerprint = r.u64().map_err(|_| CheckpointError::Truncated)?;
        if fingerprint != expected_fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: expected_fingerprint,
                found: fingerprint,
            });
        }
        let state_hash = r.u64().map_err(|_| CheckpointError::Truncated)?;
        let ops_consumed = r.u64().map_err(|_| CheckpointError::Truncated)?;
        let cursor = RunCursor::load_snap(&mut r)?;
        let body = r.bytes()?;
        r.finish()?;
        // The state hash covers the observable sections — everything but
        // the diagnostic tail [`System::checkpoint`] appends.
        let observable = body
            .len()
            .checked_sub(crate::system::DIAGNOSTIC_TAIL_BYTES)
            .and_then(|n| body.get(..n))
            .ok_or(CheckpointError::Truncated)?;
        let found = fnv1a64(observable);
        if found != state_hash {
            return Err(CheckpointError::HashMismatch {
                expected: state_hash,
                found,
            });
        }
        Ok(Checkpoint {
            fingerprint,
            state_hash,
            ops_consumed,
            cursor,
            body,
        })
    }

    /// Restores the checkpoint into `sys` (built from the cell's
    /// configuration).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] or [`CheckpointError::Truncated`]
    /// when the body does not decode against `sys`'s configuration.
    pub fn restore_into(&self, sys: &mut System) -> Result<(), CheckpointError> {
        sys.restore(&self.body)?;
        Ok(())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// When and where [`try_simulate_checkpointed`] writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Memory cycles between checkpoints; 0 disables checkpointing
    /// entirely (the run is one uninterrupted chunk).
    pub every: u64,
    /// Checkpoint file path for this cell.
    pub path: PathBuf,
    /// Cell fingerprint the file is bound to.
    pub fingerprint: u64,
    /// Whether each checkpoint write is fsynced before the atomic rename.
    /// `true` survives OS crashes and power loss; `false` trades that for
    /// a much cheaper write (only process crashes are fully covered — a
    /// torn file from a harder failure is detected at load and the cell
    /// restarts from scratch, bit-identically).
    pub durable: bool,
    /// The filesystem the checkpoint protocol runs through —
    /// [`crate::simio::real_io`] in production, a
    /// [`crate::simio::ChaosIo`] under the crash-point matrix.
    pub io: Arc<dyn SimIo>,
}

impl CheckpointPolicy {
    /// A production policy (real filesystem, durable writes).
    pub fn new(every: u64, path: PathBuf, fingerprint: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            every,
            path,
            fingerprint,
            durable: true,
            io: real_io(),
        }
    }
}

/// A failure of a checkpointed run: either the simulation itself stalled
/// or the checkpoint plumbing failed.
#[derive(Debug)]
pub enum CheckpointedRunError {
    /// The simulation latched a forward-progress failure.
    Run(RunError),
    /// A checkpoint could not be written.
    Checkpoint(CheckpointError),
}

impl core::fmt::Display for CheckpointedRunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointedRunError::Run(e) => e.fmt(f),
            CheckpointedRunError::Checkpoint(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CheckpointedRunError {}

impl From<RunError> for CheckpointedRunError {
    fn from(e: RunError) -> Self {
        CheckpointedRunError::Run(e)
    }
}

impl From<CheckpointError> for CheckpointedRunError {
    fn from(e: CheckpointError) -> Self {
        CheckpointedRunError::Checkpoint(e)
    }
}

/// Runs one cell with crash recovery: resume from a valid checkpoint if
/// one exists, simulate in [`CheckpointPolicy::every`]-cycle chunks
/// rewriting the checkpoint at each boundary, and remove the file once
/// the cell completes.
///
/// `make_workload` must rebuild the workload deterministically (same
/// seed) on every call; a resumed run rebuilds it and fast-forwards by
/// the recorded op count, which replays the exact stream position.
///
/// An unreadable or invalid existing checkpoint (torn write that beat
/// the atomic rename, stale fingerprint, bit rot) is **not** fatal: the
/// cell restarts from scratch, exactly as if no checkpoint existed,
/// and the bad file is overwritten at the next boundary. The results are
/// byte-identical either way — checkpointing only changes how much work a
/// crash can lose.
///
/// # Errors
///
/// [`CheckpointedRunError::Run`] for simulation stalls,
/// [`CheckpointedRunError::Checkpoint`] when a checkpoint cannot be
/// written (a cell that cannot record progress should fail loudly, not
/// silently lose its crash safety).
pub fn try_simulate_checkpointed<W, F>(
    cfg: &SystemConfig,
    make_workload: F,
    len: RunLength,
    policy: &CheckpointPolicy,
) -> Result<SimReport, CheckpointedRunError>
where
    W: OpSource,
    F: Fn() -> W,
{
    let mut sys = System::new(cfg);
    let mut workload = CountingSource::new(make_workload());
    let mut cursor;
    match (policy.every > 0)
        .then(|| {
            Checkpoint::load_with_io(&policy.path, policy.fingerprint, policy.io.as_ref()).ok()
        })
        .flatten()
    {
        Some(ckpt) if ckpt.restore_into(&mut sys).is_ok() => {
            workload.skip(ckpt.ops_consumed);
            cursor = ckpt.cursor;
        }
        _ => {
            // No checkpoint (or an unusable one): fresh start. The system
            // may have been half-restored by a failed attempt, so rebuild.
            sys = System::new(cfg);
            sys.warm(&mut workload);
            cursor = RunCursor::start(&sys);
        }
    }
    let budget = if policy.every > 0 {
        policy.every
    } else {
        u64::MAX
    };
    // One encode buffer for the whole run: every checkpoint reuses the
    // allocation the first one grew.
    let mut scratch = SnapWriter::new();
    loop {
        match sys.try_run_chunk(&mut workload, len, &mut cursor, budget)? {
            ChunkOutcome::Done => break,
            ChunkOutcome::Paused => {
                Checkpoint::capture(&sys, policy.fingerprint, workload.consumed(), cursor)?
                    .save_with_io(
                        &policy.path,
                        &mut scratch,
                        policy.durable,
                        policy.io.as_ref(),
                    )?;
            }
        }
    }
    let name = workload.name().to_string();
    if policy.every > 0 {
        // The cell is complete; its checkpoint is stale by construction. A
        // crash before or after this best-effort delete leaves a stale file
        // that resume GC removes once the journal proves the cell done.
        // audit: allow(io-bypass): best-effort cleanup of a completed cell's checkpoint, not a crash point
        let _ = fs::remove_file(&policy.path);
    }
    Ok(sys.report(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{journal::fingerprint, try_simulate};
    use burst_core::Mechanism;
    use burst_workloads::SpecBenchmark;

    fn cfg() -> SystemConfig {
        SystemConfig::baseline()
            .with_mechanism(Mechanism::BurstTh(52))
            .with_warm_mem_ops(1_000)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("burst-checkpoint-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn checkpointed_run_matches_uninterrupted_run() {
        let cfg = cfg();
        let len = RunLength::Instructions(30_000);
        let reference =
            try_simulate(&cfg, SpecBenchmark::Swim.workload(9), len).expect("reference run");
        let path = tmp("match.ckpt");
        let _ = fs::remove_file(&path);
        let policy = CheckpointPolicy::new(1_500, path.clone(), fingerprint("match"));
        let got = try_simulate_checkpointed(&cfg, || SpecBenchmark::Swim.workload(9), len, &policy)
            .expect("checkpointed run");
        assert_eq!(got, reference, "checkpointing must not change results");
        assert!(!path.exists(), "completed cell removes its checkpoint");
    }

    #[test]
    fn non_durable_checkpointing_is_bit_identical_and_resumable() {
        let cfg = cfg();
        let len = RunLength::Instructions(30_000);
        let reference =
            try_simulate(&cfg, SpecBenchmark::Swim.workload(9), len).expect("reference run");
        let path = tmp("nondurable.ckpt");
        let _ = fs::remove_file(&path);
        let fp = fingerprint("nondurable");
        let policy = CheckpointPolicy {
            durable: false,
            ..CheckpointPolicy::new(1_500, path.clone(), fp)
        };
        let got = try_simulate_checkpointed(&cfg, || SpecBenchmark::Swim.workload(9), len, &policy)
            .expect("non-durable checkpointed run");
        assert_eq!(got, reference, "skipping fsync must not change results");
        assert!(!path.exists(), "completed cell removes its checkpoint");

        // A file written without fsync is still a valid checkpoint to
        // resume from (process-crash safety is the rename, not the sync):
        // run a few chunks by hand with save_with, then resume.
        let mut sys = System::new(&cfg);
        let mut w = CountingSource::new(SpecBenchmark::Swim.workload(9));
        sys.warm(&mut w);
        let mut cursor = RunCursor::start(&sys);
        let mut scratch = SnapWriter::new();
        for _ in 0..3 {
            match sys.try_run_chunk(&mut w, len, &mut cursor, 1_500).unwrap() {
                ChunkOutcome::Paused => {
                    Checkpoint::capture(&sys, fp, w.consumed(), cursor)
                        .unwrap()
                        .save_with(&path, &mut scratch, false)
                        .unwrap();
                }
                ChunkOutcome::Done => panic!("run must outlast three chunks"),
            }
        }
        assert!(path.exists());
        let resumed =
            try_simulate_checkpointed(&cfg, || SpecBenchmark::Swim.workload(9), len, &policy)
                .expect("resume from non-durable checkpoint");
        assert_eq!(resumed, reference, "resume must be byte-identical");
    }

    #[test]
    fn resume_from_mid_run_checkpoint_is_byte_identical() {
        let cfg = cfg();
        let len = RunLength::Instructions(30_000);
        let reference =
            try_simulate(&cfg, SpecBenchmark::Mcf.workload(5), len).expect("reference run");
        let path = tmp("resume.ckpt");
        let _ = fs::remove_file(&path);
        let fp = fingerprint("resume");

        // Simulate a crash: run a few chunks by hand, leaving a
        // checkpoint on disk, then abandon the system mid-run.
        {
            let mut sys = System::new(&cfg);
            let mut w = CountingSource::new(SpecBenchmark::Mcf.workload(5));
            sys.warm(&mut w);
            let mut cursor = RunCursor::start(&sys);
            for _ in 0..3 {
                match sys.try_run_chunk(&mut w, len, &mut cursor, 1_000).unwrap() {
                    ChunkOutcome::Paused => {
                        Checkpoint::capture(&sys, fp, w.consumed(), cursor)
                            .unwrap()
                            .save(&path)
                            .unwrap();
                    }
                    ChunkOutcome::Done => panic!("run must outlast three chunks"),
                }
            }
        }
        assert!(path.exists());

        let policy = CheckpointPolicy::new(1_000, path.clone(), fp);
        let got = try_simulate_checkpointed(&cfg, || SpecBenchmark::Mcf.workload(5), len, &policy)
            .expect("resumed run");
        assert_eq!(got, reference, "resume must be byte-identical");
    }

    #[test]
    fn load_rejects_every_corruption_mode() {
        let cfg = cfg();
        let fp = fingerprint("corrupt");
        let path = tmp("corrupt.ckpt");
        let mut sys = System::new(&cfg);
        let mut w = CountingSource::new(SpecBenchmark::Swim.workload(1));
        sys.warm(&mut w);
        sys.try_run(&mut w, RunLength::MemCycles(2_000)).unwrap();
        let ckpt = Checkpoint::capture(&sys, fp, w.consumed(), RunCursor::start(&sys)).unwrap();
        ckpt.save(&path).unwrap();

        // A pristine file round-trips.
        let back = Checkpoint::load(&path, fp).expect("valid file loads");
        assert_eq!(back, ckpt);

        // Wrong fingerprint.
        assert!(matches!(
            Checkpoint::load(&path, fp ^ 1),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));

        let bytes = fs::read(&path).unwrap();

        // Truncation at every interesting boundary.
        for cut in [0, 3, 4, 7, 8, 15, 16, 23, 24, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                Checkpoint::load(&path, fp).is_err(),
                "truncation at {cut} must be rejected"
            );
        }

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Checkpoint::load(&path, fp),
            Err(CheckpointError::BadMagic)
        ));

        // Future version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Checkpoint::load(&path, fp),
            Err(CheckpointError::UnsupportedVersion(99))
        ));

        // A flipped bit in the body's observable sections trips the hash
        // check (the diagnostic tail at the very end is not hashed).
        let mut bad = bytes.clone();
        let last = bad.len() - crate::system::DIAGNOSTIC_TAIL_BYTES - 20;
        bad[last] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Checkpoint::load(&path, fp),
            Err(CheckpointError::HashMismatch { .. })
        ));

        // Missing file is a plain Io error.
        let _ = fs::remove_file(&path);
        assert!(matches!(
            Checkpoint::load(&path, fp),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn unusable_checkpoint_falls_back_to_fresh_start() {
        let cfg = cfg();
        let len = RunLength::Instructions(8_000);
        let reference =
            try_simulate(&cfg, SpecBenchmark::Swim.workload(2), len).expect("reference run");
        let path = tmp("fallback.ckpt");
        fs::write(&path, b"garbage, not a checkpoint at all").unwrap();
        let policy = CheckpointPolicy::new(2_000, path.clone(), fingerprint("fallback"));
        let got = try_simulate_checkpointed(&cfg, || SpecBenchmark::Swim.workload(2), len, &policy)
            .expect("fresh start");
        assert_eq!(got, reference, "garbage checkpoint must not poison the run");
    }
}
