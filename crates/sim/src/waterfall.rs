//! Figure-1-style schedule visualisation: drive a hand-written request
//! list through a mechanism on a single channel with event recording on,
//! then render the per-bank command timeline and the shared data bus as
//! ASCII — the same picture the paper draws to motivate reordering.

use burst_core::{Access, AccessId, AccessKind, CtrlConfig, Mechanism};
use burst_dram::{AddressMapping, Command, Cycle, Dram, DramConfig, IssueEvent, Loc, PhysAddr};

/// One request of a waterfall scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaterfallRequest {
    /// Target location (channel must be 0).
    pub loc: Loc,
    /// Read or write.
    pub kind: AccessKind,
}

impl WaterfallRequest {
    /// A read request.
    pub fn read(loc: Loc) -> Self {
        WaterfallRequest {
            loc,
            kind: AccessKind::Read,
        }
    }

    /// A write request.
    pub fn write(loc: Loc) -> Self {
        WaterfallRequest {
            loc,
            kind: AccessKind::Write,
        }
    }
}

/// A recorded schedule: every command issue plus the completion horizon.
#[derive(Debug, Clone)]
pub struct Waterfall {
    events: Vec<IssueEvent>,
    horizon: Cycle,
    banks: usize,
    banks_per_rank: usize,
}

impl Waterfall {
    /// Schedules `requests` (all enqueued at cycle 0) under `mechanism` on
    /// a single-channel device and records the resulting command timeline.
    ///
    /// # Panics
    ///
    /// Panics if a request targets a channel other than 0 or the schedule
    /// fails to complete within a generous bound.
    pub fn schedule(
        mechanism: Mechanism,
        cfg: DramConfig,
        requests: &[WaterfallRequest],
    ) -> Waterfall {
        assert!(
            requests.iter().all(|r| r.loc.channel == 0),
            "single-channel scenario"
        );
        let mut single = cfg;
        single.geometry.channels = 1;
        let mut dram = Dram::new(single, AddressMapping::PageInterleaving);
        dram.channel_mut(0).record_events(true);
        let mut sched = mechanism.build(CtrlConfig::default(), single.geometry);
        let mut done = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            let addr = PhysAddr::new(i as u64 * 64);
            sched.enqueue(
                Access::new(AccessId::new(i as u64), r.kind, addr, r.loc, 0),
                0,
                &mut done,
            );
        }
        let mut now = 0;
        while done.len() < requests.len() {
            sched.tick(&mut dram, now, &mut done);
            now += 1;
            assert!(now < 1_000_000, "waterfall schedule did not complete");
        }
        let events = dram.channel_mut(0).take_events();
        let horizon = done.iter().map(|c| c.done_at).max().unwrap_or(0);
        let banks_per_rank = usize::from(single.geometry.banks_per_rank);
        let banks = usize::from(single.geometry.ranks_per_channel) * banks_per_rank;
        Waterfall {
            events,
            horizon,
            banks,
            banks_per_rank,
        }
    }

    /// Total cycles until the last data beat.
    pub fn total_cycles(&self) -> Cycle {
        self.horizon
    }

    /// The recorded command issues in order.
    pub fn events(&self) -> &[IssueEvent] {
        &self.events
    }

    /// Renders the schedule: one `bank N` lane showing `P` (precharge),
    /// `A` (activate) and `R`/`W` (column read/write) issues, plus a `data`
    /// lane marking occupied data-bus cycles with `=`.
    ///
    /// # Examples
    ///
    /// ```
    /// use burst_core::Mechanism;
    /// use burst_dram::{DramConfig, Loc};
    /// use burst_sim::waterfall::{Waterfall, WaterfallRequest};
    ///
    /// let reqs = [
    ///     WaterfallRequest::read(Loc::new(0, 0, 0, 0, 0)),
    ///     WaterfallRequest::read(Loc::new(0, 0, 1, 0, 0)),
    /// ];
    /// let w = Waterfall::schedule(Mechanism::Burst, DramConfig::figure1(), &reqs);
    /// let art = w.render();
    /// assert!(art.contains("data"));
    /// ```
    pub fn render(&self) -> String {
        let width = self.horizon as usize;
        let mut lanes: Vec<Vec<char>> = vec![vec!['.'; width]; self.banks];
        let mut data: Vec<char> = vec!['.'; width];
        for ev in &self.events {
            if let Some(loc) = ev.cmd.loc() {
                // Dense bank index within the channel.
                let idx = usize::from(loc.rank) * self.banks_per_rank + usize::from(loc.bank);
                let symbol = match ev.cmd {
                    Command::Precharge(_) => 'P',
                    Command::Activate(_) => 'A',
                    Command::Column { dir, .. } => {
                        if dir.is_read() {
                            'R'
                        } else {
                            'W'
                        }
                    }
                    Command::RefreshAll { .. } => 'F',
                };
                if let Some(cell) = lanes.get_mut(idx).and_then(|l| l.get_mut(ev.at as usize)) {
                    *cell = symbol;
                }
                for c in ev.data_start..ev.data_end {
                    if let Some(cell) = data.get_mut(c as usize) {
                        *cell = '=';
                    }
                }
            }
        }
        let mut out = String::new();
        for (i, lane) in lanes.iter().enumerate() {
            if lane.iter().any(|&c| c != '.') {
                out.push_str(&format!(
                    "bank{i:<2} |{}|\n",
                    lane.iter().collect::<String>()
                ));
            }
        }
        out.push_str(&format!("data   |{}|\n", data.iter().collect::<String>()));
        out.push_str(&format!(
            "        0{:>width$}\n",
            self.horizon,
            width = width.saturating_sub(1)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_requests() -> Vec<WaterfallRequest> {
        vec![
            WaterfallRequest::read(Loc::new(0, 0, 0, 0, 0)),
            WaterfallRequest::read(Loc::new(0, 0, 1, 0, 0)),
            WaterfallRequest::read(Loc::new(0, 0, 0, 1, 0)),
            WaterfallRequest::read(Loc::new(0, 0, 0, 0, 8)),
        ]
    }

    #[test]
    fn burst_schedules_fig1_fast() {
        let w = Waterfall::schedule(Mechanism::Burst, DramConfig::figure1(), &fig1_requests());
        assert!(w.total_cycles() <= 20, "got {}", w.total_cycles());
        assert!(w
            .events()
            .iter()
            .any(|e| matches!(e.cmd, Command::Column { .. })));
    }

    #[test]
    fn render_shows_all_lanes() {
        let w = Waterfall::schedule(Mechanism::Burst, DramConfig::figure1(), &fig1_requests());
        let art = w.render();
        assert!(art.contains("bank0"));
        assert!(art.contains("bank1"));
        assert!(art.contains("data"));
        assert!(art.contains('A'));
        assert!(art.contains('R'));
        assert!(art.contains('='));
    }

    #[test]
    fn data_lane_counts_match_bus_occupancy() {
        let w = Waterfall::schedule(Mechanism::Burst, DramConfig::figure1(), &fig1_requests());
        let art = w.render();
        let data_cells = art
            .lines()
            .find(|l| l.starts_with("data"))
            .unwrap()
            .chars()
            .filter(|&c| c == '=')
            .count() as u64;
        // Four accesses x 2 data cycles each (burst length 4, DDR).
        assert_eq!(data_cells, 8);
    }

    #[test]
    fn in_order_mechanism_takes_longer() {
        let reqs = fig1_requests();
        let burst = Waterfall::schedule(Mechanism::Burst, DramConfig::figure1(), &reqs);
        let inorder = Waterfall::schedule(Mechanism::BkInOrder, DramConfig::figure1(), &reqs);
        assert!(inorder.total_cycles() >= burst.total_cycles());
    }
}
