//! # burst-sim
//!
//! Full-system simulation harness for the burst scheduling reproduction:
//! wires the [`burst_cpu`] core model, a [`burst_core`] access scheduler and
//! the [`burst_dram`] device together, collects statistics and provides one
//! experiment driver per table/figure of the paper (see
//! [`experiments`]).
//!
//! ## Example
//!
//! ```
//! use burst_sim::{simulate, RunLength, SystemConfig};
//! use burst_core::Mechanism;
//! use burst_workloads::SpecBenchmark;
//!
//! let base = SystemConfig::baseline();
//! let report = simulate(
//!     &base.with_mechanism(Mechanism::BurstTh(52)),
//!     SpecBenchmark::Swim.workload(42),
//!     RunLength::Instructions(5_000),
//! );
//! assert!(report.reads() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod cmp;
pub mod executor;
pub mod experiments;
pub mod export;
pub mod journal;
pub mod oracle;
pub mod profile;
pub mod report;
pub mod simio;
pub mod supervisor;
mod system;
pub mod waterfall;

pub use checkpoint::{
    try_simulate_checkpointed, Checkpoint, CheckpointError, CheckpointPolicy, CheckpointedRunError,
};
pub use executor::{default_jobs, map_parallel};
pub use experiments::{cell_key, CellFailure, CheckpointPlan, Supervised};
pub use journal::{Journal, JournalEntry, JournalError, QuarantineEntry};
pub use oracle::{
    oracle_simulate, DivergenceError, OracleConfig, OracleError, PerturbKind, Perturbation,
};
pub use profile::PhaseProfile;
pub use simio::{real_io, ChaosIo, IoFaultKind, IoSite, RealIo, SimIo};
pub use supervisor::{
    supervise, supervise_with, CellError, CellOutcome, FailureKind, KindRetries, SupervisorConfig,
    TransientFaultPlan,
};
pub use system::{
    simulate, try_simulate, ChunkOutcome, ComponentHashes, Engine, EngineStats, RobustnessReport,
    RunCursor, RunError, RunLength, SimReport, Snapshot, System, SystemConfig, ValidateConfigError,
};
