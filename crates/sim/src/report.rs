//! Plain-text rendering of experiment results in the layout of the paper's
//! tables and figures.

use crate::experiments::{
    CellFailure, Fig10Row, Fig12Row, Fig7Row, Fig9Row, OutstandingRow, Table1Row,
};
use crate::supervisor::FailureKind;
use crate::SimReport;

/// Error returned when a renderer or exporter is handed an empty row set:
/// the artefact would silently be an empty table, which almost always means
/// an upstream sweep produced no cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoRowsError {
    /// Which artefact could not be produced.
    pub what: &'static str,
}

impl core::fmt::Display for NoRowsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "cannot produce {}: no rows (did the sweep run any cells?)",
            self.what
        )
    }
}

impl std::error::Error for NoRowsError {}

/// Renders an aligned text table. `rows` are cell strings; column widths
/// adapt to content.
///
/// # Examples
///
/// ```
/// use burst_sim::report::render_table;
///
/// let s = render_table(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(s.contains("name"));
/// assert!(s.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+\n";
    out.push_str(&sep);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&sep);
    out
}

/// Renders Table 1 (access latencies by policy and row state).
pub fn render_table1(rows: &[Table1Row]) -> String {
    let fmt = |v: Option<u64>| v.map(|c| c.to_string()).unwrap_or_else(|| "N/A".into());
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                fmt(r.hit),
                fmt(r.empty),
                fmt(r.conflict),
            ]
        })
        .collect();
    render_table(
        &["Controller policy", "Row hit", "Row empty", "Row conflict"],
        &body,
    )
}

/// Renders Figure 7 (average read/write latency per mechanism).
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.name(),
                format!("{:.1}", r.read_latency),
                format!("{:.1}", r.write_latency),
            ]
        })
        .collect();
    render_table(
        &[
            "Mechanism",
            "Read latency (cycles)",
            "Write latency (cycles)",
        ],
        &body,
    )
}

/// Renders Figure 8 / 11 (outstanding access distributions) as summary
/// statistics plus a coarse histogram.
pub fn render_outstanding(rows: &[OutstandingRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.name(),
                format!("{:.1}", r.mean_reads),
                format!("{:.1}", r.mean_writes),
                format!("{:.0}%", r.saturation * 100.0),
                sparkline(&r.reads[..r.reads.len().min(36)]),
                sparkline(&r.writes[..r.writes.len().min(72)]),
            ]
        })
        .collect();
    render_table(
        &[
            "Mechanism",
            "Mean rd",
            "Mean wr",
            "WQ sat",
            "Reads 0..35",
            "Writes 0..71",
        ],
        &body,
    )
}

/// Renders Figure 9 (row states and bus utilisation).
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let pct = |v: f64| format!("{:.1}%", v * 100.0);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.name(),
                pct(r.row_hit),
                pct(r.row_conflict),
                pct(r.row_empty),
                pct(r.addr_bus),
                pct(r.data_bus),
            ]
        })
        .collect();
    render_table(
        &[
            "Mechanism",
            "Row hit",
            "Row conflict",
            "Row empty",
            "Addr bus",
            "Data bus",
        ],
        &body,
    )
}

/// Renders Figure 10 (normalised execution time per benchmark).
///
/// # Errors
///
/// Returns [`NoRowsError`] when `rows` is empty (the mechanism column set
/// is derived from the first row, so an empty input has no table shape).
pub fn render_fig10(
    rows: &[Fig10Row],
    average: &[(burst_core::Mechanism, f64)],
) -> Result<String, NoRowsError> {
    let first = rows.first().ok_or(NoRowsError {
        what: "the Figure 10 table",
    })?;
    let mechanisms: Vec<String> = first.normalized.iter().map(|(m, _)| m.name()).collect();
    let mut headers: Vec<&str> = vec!["Benchmark"];
    for m in &mechanisms {
        headers.push(m);
    }
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.benchmark.name().to_string()];
            row.extend(r.normalized.iter().map(|(_, v)| format!("{v:.3}")));
            row
        })
        .collect();
    let mut avg_row = vec!["average".to_string()];
    avg_row.extend(average.iter().map(|(_, v)| format!("{v:.3}")));
    body.push(avg_row);
    Ok(render_table(&headers, &body))
}

/// Renders the robustness summary of a set of runs (protocol violations,
/// injected faults, watchdog activity) — one row per report.
pub fn render_robustness(reports: &[SimReport]) -> String {
    let body: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let rb = &r.robustness;
            vec![
                r.mechanism.name(),
                r.workload.clone(),
                rb.violations.to_string(),
                rb.faults_injected.to_string(),
                rb.retries.to_string(),
                rb.escalations.to_string(),
                rb.watchdog_trips.to_string(),
                rb.max_access_age.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Mechanism",
            "Workload",
            "Violations",
            "Faults",
            "Retries",
            "Escalations",
            "WD trips",
            "Max age",
        ],
        &body,
    )
}

/// Renders Figure 12 (threshold sweep).
pub fn render_fig12(rows: &[Fig12Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.name(),
                format!("{:.1}", r.read_latency),
                format!("{:.1}", r.write_latency),
                format!("{:.3}", r.normalized_exec),
            ]
        })
        .collect();
    render_table(
        &[
            "Threshold point",
            "Read lat",
            "Write lat",
            "Exec (norm to Burst)",
        ],
        &body,
    )
}

/// Renders the failure-taxonomy summary of a supervised run: one count row
/// per [`FailureKind`] that occurred, followed by a per-cell detail table.
/// Returns the empty string when every cell completed, so harnesses can
/// print it unconditionally.
pub fn render_failure_summary(failures: &[CellFailure]) -> String {
    if failures.is_empty() {
        return String::new();
    }
    let counts: Vec<Vec<String>> = FailureKind::all()
        .into_iter()
        .filter_map(|kind| {
            let n = failures.iter().filter(|f| f.kind == kind).count();
            (n > 0).then(|| vec![kind.name().to_string(), n.to_string()])
        })
        .collect();
    let details: Vec<Vec<String>> = failures
        .iter()
        .map(|f| {
            vec![
                f.key(),
                f.kind.name().to_string(),
                f.attempts.to_string(),
                if f.quarantined {
                    "quarantined".to_string()
                } else {
                    "retryable".to_string()
                },
                f.payload.clone(),
            ]
        })
        .collect();
    let quarantined = failures.iter().filter(|f| f.quarantined).count();
    let mut out = format!(
        "{} unrecovered cell(s), {} quarantined\n",
        failures.len(),
        quarantined
    );
    out.push_str(&render_table(&["Failure kind", "Cells"], &counts));
    out.push_str(&render_table(
        &["Cell", "Kind", "Attempts", "Disposition", "Detail"],
        &details,
    ));
    out
}

/// Renders the sweep-level "RobustnessReport v2" section of a supervised
/// run: resume statistics, quarantine counts and the failure mix in one
/// compact block. (v1 is the per-cell [`crate::RobustnessReport`] embedded
/// in every [`crate::SimReport`]; v2 aggregates the *sweep's* robustness
/// story on top.) Returns the empty string when there is nothing to say —
/// no resumed cells, no failures — so harnesses print it unconditionally.
pub fn render_robustness_v2(failures: &[CellFailure], resumed: usize) -> String {
    if failures.is_empty() && resumed == 0 {
        return String::new();
    }
    let quarantined = failures.iter().filter(|f| f.quarantined).count();
    let retryable = failures.len() - quarantined;
    let mut body = vec![
        vec![
            "cells resumed from journal".to_string(),
            resumed.to_string(),
        ],
        vec!["cells quarantined".to_string(), quarantined.to_string()],
        vec![
            "cells failed (retryable on resume)".to_string(),
            retryable.to_string(),
        ],
    ];
    for kind in FailureKind::all() {
        let n = failures.iter().filter(|f| f.kind == kind).count();
        if n > 0 {
            body.push(vec![format!("  of which {}", kind.name()), n.to_string()]);
        }
    }
    let mut out = String::from("Robustness v2\n");
    out.push_str(&render_table(&["Measure", "Count"], &body));
    out
}

/// A unicode sparkline of a distribution (peak-normalised).
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "▁".repeat(values.len().min(16));
    }
    // Down-sample to at most 24 buckets for table width.
    let buckets = values.len().min(24);
    let per = (values.len() as f64 / buckets as f64).max(1.0);
    (0..buckets)
        .map(|b| {
            let start = (b as f64 * per) as usize;
            let end = (((b + 1) as f64 * per) as usize)
                .min(values.len())
                .max(start + 1);
            let v = values[start..end].iter().cloned().fold(0.0f64, f64::max);
            let idx = ((v / max) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_core::Mechanism;

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            &["a", "bbbb"],
            &[
                vec!["xxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        // All lines the same width.
        assert!(lines
            .windows(2)
            .all(|w| w[0].chars().count() == w[1].chars().count()));
        assert!(s.contains("xxxxx"));
    }

    #[test]
    fn render_fig7_includes_mechanisms() {
        let rows = vec![Fig7Row {
            mechanism: Mechanism::BurstTh(52),
            read_latency: 55.0,
            write_latency: 300.0,
        }];
        let s = render_fig7(&rows);
        assert!(s.contains("Burst_TH52"));
        assert!(s.contains("55.0"));
    }

    #[test]
    fn sparkline_peak_is_full_block() {
        let s = sparkline(&[0.0, 0.5, 1.0, 0.2]);
        assert!(s.contains('█'));
    }

    #[test]
    fn sparkline_handles_all_zero() {
        let s = sparkline(&[0.0; 10]);
        assert!(!s.is_empty());
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::experiments::{table1, Fig10Row, Fig12Row, Fig9Row, OutstandingRow, Table1Row};
    use burst_core::Mechanism;
    use burst_dram::{RowPolicy, TimingParams};
    use burst_workloads::SpecBenchmark;

    #[test]
    fn render_table1_shows_na_for_impossible_cells() {
        let rows: Vec<Table1Row> = table1(&TimingParams::ddr2_pc2_6400());
        let s = render_table1(&rows);
        assert!(s.contains("OP"));
        assert!(s.contains("CPA"));
        assert!(
            s.contains("N/A"),
            "CPA hit/conflict are N/A in the paper's Table 1"
        );
        assert!(s.contains("15"), "row conflict latency");
        let _ = RowPolicy::OpenPage; // silence unused import on some cfgs
    }

    #[test]
    fn render_fig9_formats_percentages() {
        let rows = vec![Fig9Row {
            mechanism: Mechanism::RowHit,
            row_hit: 0.471,
            row_conflict: 0.492,
            row_empty: 0.037,
            addr_bus: 0.272,
            data_bus: 0.566,
        }];
        let s = render_fig9(&rows);
        assert!(s.contains("47.1%"));
        assert!(s.contains("56.6%"));
        assert!(s.contains("RowHit"));
    }

    #[test]
    fn render_fig10_appends_average_row() {
        let rows = vec![Fig10Row {
            benchmark: SpecBenchmark::Swim,
            normalized: vec![(Mechanism::Burst, 0.75), (Mechanism::BurstTh(52), 0.70)],
        }];
        let avg = vec![(Mechanism::Burst, 0.75), (Mechanism::BurstTh(52), 0.70)];
        let s = render_fig10(&rows, &avg).expect("non-empty rows");
        assert!(s.contains("swim"));
        assert!(s.contains("average"));
        assert!(s.contains("0.700"));
        assert!(s.contains("Burst_TH52"));
    }

    #[test]
    fn render_fig10_rejects_empty_rows() {
        let err = render_fig10(&[], &[]).unwrap_err();
        assert!(err.to_string().contains("no rows"), "{err}");
    }

    #[test]
    fn render_fig12_lists_all_points() {
        let rows = vec![
            Fig12Row {
                mechanism: Mechanism::BurstWp,
                read_latency: 66.3,
                write_latency: 438.7,
                normalized_exec: 0.979,
            },
            Fig12Row {
                mechanism: Mechanism::BurstRp,
                read_latency: 68.6,
                write_latency: 601.6,
                normalized_exec: 1.0,
            },
        ];
        let s = render_fig12(&rows);
        assert!(s.contains("Burst_WP"));
        assert!(s.contains("Burst_RP"));
        assert!(s.contains("0.979"));
    }

    #[test]
    fn render_failure_summary_counts_and_details() {
        use crate::experiments::CellFailure;
        use crate::supervisor::FailureKind;
        assert_eq!(render_failure_summary(&[]), "");
        let failures = vec![
            CellFailure {
                scope: "sweep".into(),
                benchmark: SpecBenchmark::Swim,
                mechanism: Mechanism::Burst,
                kind: FailureKind::Panic,
                attempts: 3,
                payload: "cell exploded".into(),
                quarantined: true,
            },
            CellFailure {
                scope: "sweep".into(),
                benchmark: SpecBenchmark::Swim,
                mechanism: Mechanism::RowHit,
                kind: FailureKind::Deadline,
                attempts: 1,
                payload: "too slow".into(),
                quarantined: false,
            },
        ];
        let s = render_failure_summary(&failures);
        assert!(s.contains("2 unrecovered cell(s), 1 quarantined"));
        assert!(s.contains("panic"));
        assert!(s.contains("deadline"));
        assert!(s.contains("quarantined"));
        assert!(s.contains("retryable"));
        assert!(s.contains("sweep/swim/Burst"));
        assert!(s.contains("cell exploded"));

        let v2 = render_robustness_v2(&failures, 4);
        assert!(v2.contains("Robustness v2"));
        assert!(v2.contains("cells resumed from journal"));
        assert!(v2.contains("of which panic"));
        assert_eq!(render_robustness_v2(&[], 0), "");
    }

    #[test]
    fn render_outstanding_includes_saturation_and_sparklines() {
        let rows = vec![OutstandingRow {
            mechanism: Mechanism::BurstRp,
            reads: vec![0.1; 36],
            writes: {
                let mut w = vec![0.0; 72];
                w[64] = 0.6;
                w
            },
            saturation: 0.62,
            mean_reads: 26.1,
            mean_writes: 63.2,
        }];
        let s = render_outstanding(&rows);
        assert!(s.contains("62%"));
        assert!(s.contains("26.1"));
        assert!(
            s.contains('█'),
            "peaked write distribution renders a full block"
        );
    }
}
