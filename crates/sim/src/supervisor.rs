//! Crash-isolated supervision of independent sweep cells.
//!
//! [`crate::map_parallel`] gives the evaluation grid order-stable
//! parallelism, but one misbehaving `(benchmark, mechanism)` cell — a
//! panic in a scheduler, a latched [`crate::RunError`] stall, or a cell
//! that simply wedges — used to tear down the whole multi-minute sweep.
//! [`supervise`] keeps the blast radius to the cell itself:
//!
//! * every attempt runs under [`std::panic::catch_unwind`], so a panicking
//!   cell becomes a structured [`CellOutcome::Failed`] record while its
//!   siblings keep running;
//! * an optional per-cell wall-clock deadline runs each attempt on a
//!   watchdog thread and abandons attempts that exceed it (the wedged
//!   thread is leaked by design — it holds no locks the supervisor cares
//!   about, and the process exits after the sweep);
//! * failed cells get bounded retries with deterministic backoff, and a
//!   [`TransientFaultPlan`] can deterministically fail attempts to test
//!   exactly that machinery (see `crates/core/src/faults.rs`);
//! * results come back in input order, like `map_parallel`, so a
//!   supervised sweep is element-for-element comparable to a plain one.
//!
//! The closure contract mirrors `map_parallel` plus an attempt number:
//! `f(index, &item, attempt)` must be safe to call concurrently *and*
//! repeatedly — simulation cells are, because each call builds a fresh
//! [`crate::System`] from plain config values.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use burst_core::TransientFaultPlan;

use crate::RunError;

/// Why a cell failed — the sweep failure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The cell's closure panicked.
    Panic,
    /// The simulation latched a [`RunError::ControllerStall`].
    ControllerStall,
    /// The simulation latched a [`RunError::RetirementStall`].
    RetirementStall,
    /// The attempt exceeded the per-cell wall-clock deadline.
    Deadline,
    /// A [`TransientFaultPlan`] deliberately failed the attempt.
    Injected,
    /// Anything else a cell closure reports (e.g. invalid configuration).
    Other,
}

impl FailureKind {
    /// Stable lower-case token used in tables, CSVs and journals.
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::ControllerStall => "controller-stall",
            FailureKind::RetirementStall => "retirement-stall",
            FailureKind::Deadline => "deadline",
            FailureKind::Injected => "injected",
            FailureKind::Other => "other",
        }
    }

    /// Parses the [`FailureKind::name`] token back (journal quarantine
    /// records carry kinds by name).
    pub fn from_name(name: &str) -> Option<FailureKind> {
        FailureKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Every kind, in taxonomy-table order.
    pub fn all() -> [FailureKind; 6] {
        [
            FailureKind::Panic,
            FailureKind::ControllerStall,
            FailureKind::RetirementStall,
            FailureKind::Deadline,
            FailureKind::Injected,
            FailureKind::Other,
        ]
    }
}

impl core::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured attempt failure returned by a supervised closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Taxonomy bucket.
    pub kind: FailureKind,
    /// Human-readable diagnostic (e.g. the stall diagnostic's display).
    pub payload: String,
}

impl CellError {
    /// An [`FailureKind::Other`] error with the given message.
    pub fn other(payload: impl Into<String>) -> Self {
        CellError {
            kind: FailureKind::Other,
            payload: payload.into(),
        }
    }
}

impl From<RunError> for CellError {
    fn from(e: RunError) -> Self {
        let kind = match e {
            RunError::ControllerStall(_) => FailureKind::ControllerStall,
            RunError::RetirementStall { .. } => FailureKind::RetirementStall,
        };
        let payload = match e {
            RunError::ControllerStall(diag) => {
                format!("{e} [class {}]", diag.stall_class())
            }
            RunError::RetirementStall { .. } => e.to_string(),
        };
        CellError { kind, payload }
    }
}

/// Outcome of one supervised cell after all its attempts.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<R> {
    /// The cell produced a value on attempt number `attempts` (1-based).
    Done {
        /// The closure's result.
        value: R,
        /// Attempts consumed, including the successful one.
        attempts: u32,
    },
    /// Every granted attempt failed; the *last* failure is recorded.
    Failed {
        /// Taxonomy bucket of the final failure.
        kind: FailureKind,
        /// Attempts consumed.
        attempts: u32,
        /// Diagnostic of the final failure.
        payload: String,
    },
}

impl<R> CellOutcome<R> {
    /// The value, if the cell completed.
    pub fn value(self) -> Option<R> {
        match self {
            CellOutcome::Done { value, .. } => Some(value),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Whether the cell completed.
    pub fn is_done(&self) -> bool {
        matches!(self, CellOutcome::Done { .. })
    }
}

/// Per-[`FailureKind`] retry budgets overriding
/// [`SupervisorConfig::max_retries`]: graceful degradation tuned to the
/// failure class. A deterministic failure (a panic that will panic again,
/// a stall latched by the same seed) deserves fewer retries than a
/// deadline that a loaded host may simply have missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindRetries {
    /// Retry budget for [`FailureKind::Panic`] cells.
    pub panic: Option<u32>,
    /// Retry budget for [`FailureKind::ControllerStall`] cells.
    pub controller_stall: Option<u32>,
    /// Retry budget for [`FailureKind::RetirementStall`] cells.
    pub retirement_stall: Option<u32>,
    /// Retry budget for [`FailureKind::Deadline`] cells.
    pub deadline: Option<u32>,
    /// Retry budget for [`FailureKind::Injected`] cells.
    pub injected: Option<u32>,
    /// Retry budget for [`FailureKind::Other`] cells.
    pub other: Option<u32>,
}

impl KindRetries {
    /// The override for `kind`, if one is set.
    pub fn for_kind(&self, kind: FailureKind) -> Option<u32> {
        match kind {
            FailureKind::Panic => self.panic,
            FailureKind::ControllerStall => self.controller_stall,
            FailureKind::RetirementStall => self.retirement_stall,
            FailureKind::Deadline => self.deadline,
            FailureKind::Injected => self.injected,
            FailureKind::Other => self.other,
        }
    }

    /// Builder-style override for one kind.
    pub fn with(mut self, kind: FailureKind, retries: u32) -> KindRetries {
        match kind {
            FailureKind::Panic => self.panic = Some(retries),
            FailureKind::ControllerStall => self.controller_stall = Some(retries),
            FailureKind::RetirementStall => self.retirement_stall = Some(retries),
            FailureKind::Deadline => self.deadline = Some(retries),
            FailureKind::Injected => self.injected = Some(retries),
            FailureKind::Other => self.other = Some(retries),
        }
        self
    }
}

/// Supervision policy: deadlines, retry budget, backoff, fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Wall-clock budget per *attempt*; `None` disables deadline
    /// enforcement (attempts then run inline on the worker thread, with
    /// no watchdog thread per attempt).
    pub deadline: Option<Duration>,
    /// Retries granted after the first attempt; `max_retries + 1` attempts
    /// total.
    pub max_retries: u32,
    /// Per-failure-kind overrides of `max_retries` — see [`KindRetries`].
    pub kind_retries: KindRetries,
    /// Base of the deterministic backoff: retry `k` (0-based) sleeps
    /// `backoff_base_ms << min(k, 6)` milliseconds. Zero disables sleeping.
    pub backoff_base_ms: u64,
    /// Deterministic transient-fault injection, failing whole attempts —
    /// the test harness for the retry machinery itself.
    pub inject: Option<TransientFaultPlan>,
    /// Deterministic *panic* injection: the selected attempts panic from
    /// inside the supervised closure (rather than failing cleanly), so
    /// the chaos matrix can prove the catch_unwind isolation and the
    /// quarantine path on compute-side crashes.
    pub inject_panics: Option<TransientFaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            deadline: None,
            max_retries: 2,
            kind_retries: KindRetries::default(),
            backoff_base_ms: 10,
            inject: None,
            inject_panics: None,
        }
    }
}

impl SupervisorConfig {
    /// The deterministic backoff before retry `k` (0-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        Duration::from_millis(self.backoff_base_ms << retry.min(6))
    }

    /// The retry budget that applies after a failure of `kind`.
    pub fn retries_for(&self, kind: FailureKind) -> u32 {
        self.kind_retries.for_kind(kind).unwrap_or(self.max_retries)
    }
}

/// Fires the deterministic panic-injection hook for this attempt, if the
/// plan selects it. Called from *inside* the supervised closure's
/// catch_unwind scope, so the panic exercises the real isolation path.
fn maybe_inject_panic(plan: Option<TransientFaultPlan>, idx: usize, attempt: u32) {
    if plan.is_some_and(|p| p.should_fail(idx as u64, attempt)) {
        // audit: allow(panic): deliberate chaos-plane crash point that unwinds into catch_unwind to prove panic isolation
        panic!("injected panic (cell {idx}, attempt {attempt})");
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt, isolating panics and (optionally) enforcing the
/// wall-clock deadline on a watchdog thread.
fn run_attempt<T, R, F>(
    f: &Arc<F>,
    idx: usize,
    item: &T,
    attempt: u32,
    cfg: &SupervisorConfig,
) -> Result<R, CellError>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T, u32) -> Result<R, CellError> + Send + Sync + 'static,
{
    let inject_panics = cfg.inject_panics;
    let Some(deadline) = cfg.deadline else {
        return match catch_unwind(AssertUnwindSafe(|| {
            maybe_inject_panic(inject_panics, idx, attempt);
            f(idx, item, attempt)
        })) {
            Ok(result) => result,
            Err(payload) => Err(CellError {
                kind: FailureKind::Panic,
                payload: panic_message(payload.as_ref()),
            }),
        };
    };
    let (tx, rx) = mpsc::channel();
    let f = Arc::clone(f);
    let item = item.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("cell-{idx}-attempt-{attempt}"))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                maybe_inject_panic(inject_panics, idx, attempt);
                f(idx, &item, attempt)
            }));
            // The receiver may be gone (deadline already expired); that is
            // fine — the attempt's result is simply discarded.
            let _ = tx.send(result);
        });
    if let Err(e) = spawned {
        return Err(CellError::other(format!(
            "could not spawn cell thread: {e}"
        )));
    }
    match rx.recv_timeout(deadline) {
        Ok(Ok(result)) => result,
        Ok(Err(payload)) => Err(CellError {
            kind: FailureKind::Panic,
            payload: panic_message(payload.as_ref()),
        }),
        Err(RecvTimeoutError::Timeout) => Err(CellError {
            kind: FailureKind::Deadline,
            payload: format!(
                "attempt exceeded the per-cell deadline of {:.3}s (thread abandoned)",
                deadline.as_secs_f64()
            ),
        }),
        // catch_unwind means the worker always sends unless the runtime
        // killed it outright; classify the silence as a panic.
        Err(RecvTimeoutError::Disconnected) => Err(CellError {
            kind: FailureKind::Panic,
            payload: "cell thread terminated without reporting a result".to_string(),
        }),
    }
}

/// Runs one cell to its final outcome: inject, attempt, retry with
/// deterministic backoff, give up after the retry budget.
fn run_cell<T, R, F>(cfg: &SupervisorConfig, f: &Arc<F>, idx: usize, item: &T) -> CellOutcome<R>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T, u32) -> Result<R, CellError> + Send + Sync + 'static,
{
    let mut attempt = 0u32;
    loop {
        let injected = cfg
            .inject
            .is_some_and(|plan| plan.should_fail(idx as u64, attempt));
        let error = if injected {
            CellError {
                kind: FailureKind::Injected,
                payload: format!("injected transient fault (cell {idx}, attempt {attempt})"),
            }
        } else {
            match run_attempt(f, idx, item, attempt, cfg) {
                Ok(value) => {
                    return CellOutcome::Done {
                        value,
                        attempts: attempt + 1,
                    }
                }
                Err(e) => e,
            }
        };
        if attempt >= cfg.retries_for(error.kind) {
            return CellOutcome::Failed {
                kind: error.kind,
                attempts: attempt + 1,
                payload: error.payload,
            };
        }
        let pause = cfg.backoff(attempt);
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        attempt += 1;
    }
}

/// Applies `f` to every element of `items` on up to `jobs` worker threads
/// (`0` = auto-detect) under crash isolation, returning one
/// [`CellOutcome`] per item in input order.
///
/// Unlike [`crate::map_parallel`], a panicking, erroring or
/// deadline-exceeding cell never propagates: it yields
/// [`CellOutcome::Failed`] and every other cell still runs. Note that the
/// default panic hook still prints to stderr when a cell panics; sweeps
/// with expected failures stay noisy but alive.
pub fn supervise<T, R, F>(
    items: &[T],
    jobs: usize,
    cfg: &SupervisorConfig,
    f: F,
) -> Vec<CellOutcome<R>>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T, u32) -> Result<R, CellError> + Send + Sync + 'static,
{
    supervise_with(items, jobs, cfg, f, |_, _| {})
}

/// [`supervise`] plus an `on_complete` hook invoked on the worker thread
/// the moment each cell's final outcome is known — *before* remaining
/// cells finish. This is the journalling seam: persisting each completed
/// cell immediately (rather than after the whole sweep) is what bounds a
/// crash's damage to the cell in flight. The hook runs on the supervisor's
/// scoped workers, so unlike the cell closure it may borrow from the
/// caller; it must be cheap and must not panic.
pub fn supervise_with<T, R, F, C>(
    items: &[T],
    jobs: usize,
    cfg: &SupervisorConfig,
    f: F,
    on_complete: C,
) -> Vec<CellOutcome<R>>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T, u32) -> Result<R, CellError> + Send + Sync + 'static,
    C: Fn(usize, &CellOutcome<R>) + Sync,
{
    let f = Arc::new(f);
    let jobs = crate::executor::effective_jobs(jobs, items.len());
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let outcome = run_cell(cfg, &f, i, t);
                on_complete(i, &outcome);
                outcome
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellOutcome<R>>>> = {
        let mut v = Vec::with_capacity(items.len());
        v.resize_with(items.len(), || None);
        Mutex::new(v)
    };
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, CellOutcome<R>)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    let outcome = run_cell(cfg, &f, idx, item);
                    on_complete(idx, &outcome);
                    local.push((idx, outcome));
                }
                let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
                for (idx, outcome) in local {
                    // `idx` came from the shared counter, so it is always
                    // in range; `get_mut` keeps the supervisor itself
                    // panic-free even if that invariant ever breaks.
                    if let Some(slot) = slots.get_mut(idx) {
                        *slot = Some(outcome);
                    }
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            // Unreachable in practice: every index below items.len() is
            // claimed exactly once and run_cell never unwinds (attempts
            // are caught). Produce a Failed record rather than panicking.
            slot.unwrap_or_else(|| CellOutcome::Failed {
                kind: FailureKind::Other,
                attempts: 0,
                payload: format!("supervisor lost the outcome of cell {i}"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base_ms: 0,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn all_ok_cells_match_input_order() {
        let items: Vec<u64> = (0..40).collect();
        let outcomes = supervise(&items, 4, &quiet_cfg(), |i, &x, _| {
            Ok(x * 10 + i as u64 % 10)
        });
        assert_eq!(outcomes.len(), 40);
        for (i, o) in outcomes.into_iter().enumerate() {
            match o {
                CellOutcome::Done { value, attempts } => {
                    assert_eq!(value, (i as u64) * 10 + (i as u64) % 10);
                    assert_eq!(attempts, 1);
                }
                CellOutcome::Failed { .. } => panic!("cell {i} should succeed"),
            }
        }
    }

    #[test]
    fn panicking_cell_fails_alone_and_in_place() {
        let items: Vec<u32> = (0..9).collect();
        let outcomes = supervise(&items, 3, &quiet_cfg(), |_, &x, _| {
            if x == 4 {
                panic!("cell four exploded");
            }
            Ok(x)
        });
        for (i, o) in outcomes.iter().enumerate() {
            if i == 4 {
                let CellOutcome::Failed {
                    kind,
                    attempts,
                    payload,
                } = o
                else {
                    panic!("cell 4 must fail");
                };
                assert_eq!(*kind, FailureKind::Panic);
                assert_eq!(*attempts, 3, "default budget is 1 + 2 retries");
                assert!(payload.contains("exploded"), "{payload}");
            } else {
                assert_eq!(
                    o,
                    &CellOutcome::Done {
                        value: i as u32,
                        attempts: 1
                    }
                );
            }
        }
    }

    #[test]
    fn transient_error_succeeds_on_retry() {
        use std::sync::atomic::AtomicU32;
        let tries = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&tries);
        let outcomes = supervise(&[7u8], 1, &quiet_cfg(), move |_, &x, attempt| {
            seen.fetch_add(1, Ordering::SeqCst);
            if attempt == 0 {
                Err(CellError::other("first attempt wobbles"))
            } else {
                Ok(u32::from(x))
            }
        });
        assert_eq!(
            outcomes[0],
            CellOutcome::Done {
                value: 7,
                attempts: 2
            }
        );
        assert_eq!(tries.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let cfg = SupervisorConfig {
            max_retries: 1,
            ..quiet_cfg()
        };
        let outcomes: Vec<CellOutcome<()>> = supervise(&[0u8], 1, &cfg, |_, _, _| {
            Err(CellError::other("always down"))
        });
        assert_eq!(
            outcomes[0],
            CellOutcome::Failed {
                kind: FailureKind::Other,
                attempts: 2,
                payload: "always down".to_string(),
            }
        );
    }

    #[test]
    fn deadline_abandons_wedged_cells() {
        let cfg = SupervisorConfig {
            deadline: Some(Duration::from_millis(30)),
            max_retries: 0,
            ..quiet_cfg()
        };
        let outcomes = supervise(&[0u8, 1, 2], 2, &cfg, |_, &x, _| {
            if x == 1 {
                // Wedge far past the deadline; the supervisor abandons us.
                std::thread::sleep(Duration::from_secs(5));
            }
            Ok(x)
        });
        assert!(outcomes[0].is_done());
        assert!(outcomes[2].is_done());
        let CellOutcome::Failed { kind, .. } = &outcomes[1] else {
            panic!("wedged cell must fail");
        };
        assert_eq!(*kind, FailureKind::Deadline);
    }

    #[test]
    fn injection_converges_within_plan_bound() {
        let plan = TransientFaultPlan {
            seed: 3,
            fail_permille: 1000, // every attempt under the bound fails
            max_failures: 2,
        };
        let cfg = SupervisorConfig {
            inject: Some(plan),
            max_retries: 2,
            ..quiet_cfg()
        };
        let items: Vec<u64> = (0..8).collect();
        let outcomes = supervise(&items, 2, &cfg, |_, &x, _| Ok(x));
        for (i, o) in outcomes.into_iter().enumerate() {
            assert_eq!(
                o,
                CellOutcome::Done {
                    value: i as u64,
                    attempts: 3
                },
                "two injected failures, then success"
            );
        }
    }

    #[test]
    fn run_error_maps_into_taxonomy() {
        let e = CellError::from(RunError::RetirementStall {
            mem_cycle: 9,
            retired: 1,
            state_hash: 0,
        });
        assert_eq!(e.kind, FailureKind::RetirementStall);
        assert!(e.payload.contains("livelock"), "{}", e.payload);
    }

    #[test]
    fn kind_retries_override_the_global_budget() {
        // Panics get zero retries; everything else keeps the default 2.
        let cfg = SupervisorConfig {
            kind_retries: KindRetries::default().with(FailureKind::Panic, 0),
            ..quiet_cfg()
        };
        assert_eq!(cfg.retries_for(FailureKind::Panic), 0);
        assert_eq!(cfg.retries_for(FailureKind::Other), 2);
        let outcomes: Vec<CellOutcome<()>> = supervise(&[0u8], 1, &cfg, |_, _, _| {
            panic!("always panics");
        });
        assert_eq!(
            outcomes[0],
            CellOutcome::Failed {
                kind: FailureKind::Panic,
                attempts: 1,
                payload: "always panics".to_string(),
            },
            "a panic with a zero budget must not be retried"
        );
    }

    #[test]
    fn injected_panics_are_isolated_and_converge() {
        let plan = TransientFaultPlan {
            seed: 5,
            fail_permille: 1000,
            max_failures: 1,
        };
        let cfg = SupervisorConfig {
            inject_panics: Some(plan),
            ..quiet_cfg()
        };
        let items: Vec<u64> = (0..6).collect();
        let outcomes = supervise(&items, 2, &cfg, |_, &x, _| Ok(x));
        for (i, o) in outcomes.into_iter().enumerate() {
            assert_eq!(
                o,
                CellOutcome::Done {
                    value: i as u64,
                    attempts: 2
                },
                "one injected panic, then success"
            );
        }
    }

    #[test]
    fn injected_panics_respect_the_deadline_path_too() {
        let plan = TransientFaultPlan {
            seed: 5,
            fail_permille: 1000,
            max_failures: 10, // more than the retry budget: exhaust it
        };
        let cfg = SupervisorConfig {
            deadline: Some(Duration::from_secs(30)),
            inject_panics: Some(plan),
            max_retries: 1,
            ..quiet_cfg()
        };
        let outcomes: Vec<CellOutcome<u8>> = supervise(&[9u8], 1, &cfg, |_, &x, _| Ok(x));
        let CellOutcome::Failed {
            kind,
            attempts,
            payload,
        } = &outcomes[0]
        else {
            panic!("exhausted panics must fail the cell");
        };
        assert_eq!(*kind, FailureKind::Panic);
        assert_eq!(*attempts, 2);
        assert!(payload.contains("injected panic"), "{payload}");
    }

    #[test]
    fn failure_kind_names_round_trip() {
        for k in FailureKind::all() {
            assert_eq!(FailureKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FailureKind::from_name("warp"), None);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let cfg = SupervisorConfig {
            backoff_base_ms: 3,
            ..SupervisorConfig::default()
        };
        assert_eq!(cfg.backoff(0), Duration::from_millis(3));
        assert_eq!(cfg.backoff(2), Duration::from_millis(12));
        assert_eq!(cfg.backoff(6), cfg.backoff(60), "shift saturates at 6");
    }
}
