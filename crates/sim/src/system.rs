//! Full-system wiring: CPU limit model + access scheduler + DRAM device,
//! stepped at memory-controller clock granularity.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use burst_core::{
    Access, AccessId, AccessKind, AccessScheduler, Completion, CtrlConfig, CtrlStats, FaultConfig,
    Mechanism, StallDiagnostic,
};
use burst_cpu::{Cpu, CpuConfig, CpuStats};
use burst_dram::{AddressMapping, BusStats, Cycle, Dram, DramConfig, PhysAddr};
use burst_snap::{fnv1a64, SnapError, SnapReader, SnapWriter};
use burst_workloads::OpSource;

use crate::profile::{PhaseProfile, Stamp};

/// Configuration of the whole simulated machine.
///
/// [`SystemConfig::baseline`] reproduces the paper's Table 3; builder-style
/// `with_*` methods derive variants.
///
/// # Examples
///
/// ```
/// use burst_sim::SystemConfig;
/// use burst_core::Mechanism;
///
/// let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52));
/// assert_eq!(cfg.mechanism, Mechanism::BurstTh(52));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// DRAM device geometry and timing.
    pub dram: DramConfig,
    /// Address mapping scheme (Table 3: page interleaving).
    pub mapping: AddressMapping,
    /// Memory-controller pool and policy.
    pub ctrl: CtrlConfig,
    /// CPU core and cache hierarchy.
    pub cpu: CpuConfig,
    /// Access reordering mechanism under test.
    pub mechanism: Mechanism,
    /// Memory operations used to functionally warm the caches before the
    /// timed region (the paper's 2-billion-instruction runs are warm almost
    /// throughout; without warming, the 2 MB L2 never fills and no
    /// writeback traffic exists). Zero disables warming.
    pub warm_mem_ops: u64,
    /// Runs the DDR2 protocol checker alongside the device, recording any
    /// command that violates the timing constraints. Defaults to on in
    /// debug builds (tests) and off in release builds (benchmarks), since
    /// shadowing every command costs simulation speed.
    pub checker: bool,
    /// Deterministic fault-injection plan (ECC-correctable read errors and
    /// write retries). `None` simulates a fault-free device. When set, it
    /// overrides `ctrl.faults`.
    pub faults: Option<FaultConfig>,
    /// Which simulation engine advances the clock (see [`Engine`]). All
    /// engines produce bit-identical results; they differ only in how many
    /// cycles they execute explicitly.
    pub engine: Engine,
}

/// How the simulation clock advances. Every engine is bit-identical in
/// observable behaviour — reports, state hashes, checkpoints and CSVs
/// match exactly; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Full discrete-event engine (default): the clock jumps to the next
    /// cycle at which *any* component — CPU wake-up, read delivery, device
    /// timing window, refresh timer, scheduler arbiter/escalation/
    /// adaptation, watchdog — could observably act, even while the memory
    /// system holds outstanding work. Per-tick bookkeeping over a jump is
    /// replayed in closed form.
    Event,
    /// The legacy per-cycle loop with event-horizon skipping of *quiescent*
    /// stretches only (the CPU fully stalled and the controller empty);
    /// busy periods execute cycle by cycle.
    Cycle,
    /// The plain per-cycle loop with no skipping at all — the reference
    /// everything else is diffed against.
    CycleNoSkip,
}

impl Engine {
    /// All engines, fastest first — determinism suites iterate this.
    pub const ALL: [Engine; 3] = [Engine::Event, Engine::Cycle, Engine::CycleNoSkip];

    /// The `--engine` flag spelling of this variant.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Event => "event",
            Engine::Cycle => "cycle",
            Engine::CycleNoSkip => "cycle-noskip",
        }
    }

    /// Parses an `--engine` flag value.
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "event" => Some(Engine::Event),
            "cycle" => Some(Engine::Cycle),
            "cycle-noskip" | "cycle_noskip" | "noskip" => Some(Engine::CycleNoSkip),
            _ => None,
        }
    }
}

impl core::fmt::Display for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl SystemConfig {
    /// The paper's baseline machine (Table 3) with `BkInOrder` scheduling.
    pub fn baseline() -> Self {
        SystemConfig {
            dram: DramConfig::baseline(),
            mapping: AddressMapping::PageInterleaving,
            ctrl: CtrlConfig::baseline(),
            cpu: CpuConfig::baseline(),
            mechanism: Mechanism::BkInOrder,
            warm_mem_ops: 100_000,
            checker: cfg!(debug_assertions),
            faults: None,
            engine: Engine::Event,
        }
    }

    /// Selects the simulation engine (see [`Engine`]; the results are
    /// bit-identical for every choice).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables event-horizon cycle skipping.
    ///
    /// Deprecated spelling kept for the pre-event-engine API: `true` maps
    /// to [`Engine::Cycle`] (quiescent-only skipping), `false` to
    /// [`Engine::CycleNoSkip`]. New code should use
    /// [`SystemConfig::with_engine`].
    pub fn with_skip(self, skip: bool) -> Self {
        self.with_engine(if skip {
            Engine::Cycle
        } else {
            Engine::CycleNoSkip
        })
    }

    /// Enables or disables the runtime DDR2 protocol checker.
    pub fn with_checker(mut self, checker: bool) -> Self {
        self.checker = checker;
        self
    }

    /// Sets the fault-injection plan (`None` disables injection).
    pub fn with_faults(mut self, faults: Option<FaultConfig>) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the functional cache-warming budget (memory ops; 0 disables).
    pub fn with_warm_mem_ops(mut self, warm_mem_ops: u64) -> Self {
        self.warm_mem_ops = warm_mem_ops;
        self
    }

    /// Replaces the scheduling mechanism.
    pub fn with_mechanism(mut self, mechanism: Mechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Replaces the address mapping.
    pub fn with_mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Replaces the DRAM configuration.
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Checks the configuration for inconsistencies that would make a
    /// simulation meaningless or panic later.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateConfigError`] naming the first problem found.
    pub fn validate(&self) -> Result<(), ValidateConfigError> {
        let err = |msg: &str| {
            Err(ValidateConfigError {
                message: msg.to_string(),
            })
        };
        let g = &self.dram.geometry;
        if g.channels == 0 || g.ranks_per_channel == 0 || g.banks_per_rank == 0 {
            return err("geometry must have at least one channel, rank and bank");
        }
        for (name, v) in [
            ("channels", u64::from(g.channels)),
            ("ranks_per_channel", u64::from(g.ranks_per_channel)),
            ("banks_per_rank", u64::from(g.banks_per_rank)),
            ("rows_per_bank", u64::from(g.rows_per_bank)),
            ("cols_per_row", u64::from(g.cols_per_row)),
            ("bus_bytes", u64::from(g.bus_bytes)),
        ] {
            if !v.is_power_of_two() {
                return Err(ValidateConfigError {
                    message: format!("geometry field {name} = {v} must be a power of two"),
                });
            }
        }
        if g.burst_length < 2 || !g.burst_length.is_multiple_of(2) {
            return err("burst_length must be an even number of beats (DDR)");
        }
        if self.ctrl.write_capacity == 0 || self.ctrl.write_capacity > self.ctrl.pool_capacity {
            return err("write_capacity must be in 1..=pool_capacity");
        }
        if self.cpu.width == 0 || self.cpu.rob_size == 0 || self.cpu.lsq_size == 0 {
            return err("CPU width, ROB and LSQ must be nonzero");
        }
        if self.cpu.cpu_ratio == 0 {
            return err("cpu_ratio must be at least 1 CPU cycle per memory cycle");
        }
        if let Mechanism::BurstTh(t) = self.mechanism {
            if t as usize > self.ctrl.write_capacity {
                return err("burst threshold cannot exceed the write queue capacity");
            }
        }
        if let Some(f) = self.faults {
            if f.read_error_permille > 1000 || f.write_retry_permille > 1000 {
                return err("fault rates are per-mille and cannot exceed 1000");
            }
        }
        Ok(())
    }

    /// The controller configuration with the system-level fault plan
    /// folded in.
    pub(crate) fn effective_ctrl(&self) -> CtrlConfig {
        let mut ctrl = self.ctrl;
        if self.faults.is_some() {
            ctrl.faults = self.faults;
        }
        ctrl
    }
}

/// Error returned by [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateConfigError {
    message: String,
}

impl core::fmt::Display for ValidateConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid system configuration: {}", self.message)
    }
}

impl std::error::Error for ValidateConfigError {}

/// A forward-progress failure detected while running a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The memory controller's watchdog latched a stall: accesses are
    /// outstanding but no transaction issued for the configured limit.
    ControllerStall(StallDiagnostic),
    /// The CPU stopped retiring instructions for two million memory cycles
    /// while the controller reports no stall of its own (e.g. a workload
    /// or cache-model livelock).
    RetirementStall {
        /// Memory cycle at which the stall was declared.
        mem_cycle: Cycle,
        /// Instructions retired when progress stopped.
        retired: u64,
        /// FNV-1a digest of the full simulation state when the stall was
        /// declared (zero when the state could not be serialised). Lets a
        /// stall report be correlated with checkpoints and oracle epochs.
        state_hash: u64,
    },
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::ControllerStall(diag) => write!(f, "memory controller stall: {diag}"),
            RunError::RetirementStall {
                mem_cycle,
                retired,
                state_hash,
            } => {
                write!(
                    f,
                    "no instruction retired for 2M memory cycles (at cycle {mem_cycle}, \
                     {retired} retired): livelock?"
                )?;
                if *state_hash != 0 {
                    write!(f, " (state hash {state_hash:#018x})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::baseline()
    }
}

/// How long to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunLength {
    /// Run until this many instructions retire (the paper runs 2 billion;
    /// the harness defaults are smaller but shape-preserving).
    Instructions(u64),
    /// Run a fixed number of memory-controller cycles.
    MemCycles(u64),
}

/// FNV-1a digests of each serialised simulation component, computed over
/// the same byte streams a checkpoint stores. The lockstep oracle reports
/// both engines' component hashes on divergence so the failing subsystem
/// is named, not just the failing cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentHashes {
    /// Digest of the CPU core, caches, ROB and MSHRs.
    pub cpu: u64,
    /// Digest of the scheduler: queues, in-service state, adaptation.
    pub sched: u64,
    /// Digest of the DRAM device: bank/rank/channel timing state.
    pub dram: u64,
    /// Digest of the system glue: cycle counters, pending deliveries,
    /// outstanding read lines.
    pub system: u64,
}

impl core::fmt::Display for ComponentHashes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "cpu {:#018x}, sched {:#018x}, dram {:#018x}, system {:#018x}",
            self.cpu, self.sched, self.dram, self.system
        )
    }
}

/// A serialised mid-run snapshot of a [`System`], produced by
/// [`System::checkpoint`] and consumed by [`System::restore`].
///
/// The byte stream holds four observable sections (CPU, scheduler, DRAM,
/// system glue) followed by a diagnostic section (skip bookkeeping). The
/// state hash covers only the observable sections, so a per-cycle run and
/// a skip-enabled run hash identically at the same cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The serialised state, restorable with [`System::restore`].
    pub bytes: Vec<u8>,
    /// FNV-1a digest of the observable sections.
    pub state_hash: u64,
    /// Per-component digests of the same sections.
    pub components: ComponentHashes,
}

/// Persistent loop state of [`System::try_run_chunk`].
///
/// [`System::try_run`]'s loop locals (cycle budget spent, retirement
/// watchdog counters) live here so a run can pause at a chunk boundary,
/// be checkpointed, and resume — in the same process or after a restore —
/// with bit-identical control flow, including the exact cycle at which a
/// retirement stall would be declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCursor {
    /// Memory cycles completed toward a [`RunLength::MemCycles`] target.
    done_cycles: u64,
    /// Consecutive memory cycles without an instruction retiring.
    idle: u64,
    /// Retired-instruction count at the last observed progress.
    last_retired: u64,
}

impl RunCursor {
    /// A cursor positioned at the start of a run of `sys`.
    pub fn start(sys: &System) -> Self {
        RunCursor {
            done_cycles: 0,
            idle: 0,
            last_retired: sys.retired(),
        }
    }

    /// Memory cycles completed toward a [`RunLength::MemCycles`] target.
    pub fn done_cycles(&self) -> u64 {
        self.done_cycles
    }

    /// Serialises the cursor (checkpoint files store it next to the
    /// system snapshot).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.u64(self.done_cycles);
        w.u64(self.idle);
        w.u64(self.last_retired);
    }

    /// Restores a cursor written by [`RunCursor::save_snap`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the stream ends early.
    pub fn load_snap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(RunCursor {
            done_cycles: r.u64()?,
            idle: r.u64()?,
            last_retired: r.u64()?,
        })
    }
}

/// Why [`System::try_run_chunk`] returned without an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// The run length was reached; the run is complete.
    Done,
    /// The chunk's cycle budget was exhausted first; call again (possibly
    /// after checkpointing) to continue.
    Paused,
}

/// Robustness summary of a run: protocol health, injected faults and
/// starvation-watchdog activity. Deterministic for a fixed configuration,
/// seed and workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RobustnessReport {
    /// DDR2 protocol violations recorded by the checker (zero when the
    /// checker is disabled — see [`SystemConfig::checker`]).
    pub violations: u64,
    /// Faults injected by the configured [`FaultConfig`].
    pub faults_injected: u64,
    /// Access retries caused by injected faults.
    pub retries: u64,
    /// Accesses that began service past the watchdog's escalation age.
    pub escalations: u64,
    /// Forward-progress stalls latched by the watchdog.
    pub watchdog_trips: u64,
    /// Largest arrival-to-completion age observed, in memory cycles.
    pub max_access_age: u64,
}

impl RobustnessReport {
    /// Assembles the summary from controller statistics plus the device's
    /// violation count.
    pub(crate) fn collect(ctrl: &CtrlStats, violations: u64) -> Self {
        RobustnessReport {
            violations,
            faults_injected: ctrl.faults_injected,
            retries: ctrl.retries,
            escalations: ctrl.escalations,
            watchdog_trips: ctrl.watchdog_trips,
            max_access_age: ctrl.max_access_age,
        }
    }
}

impl core::fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} protocol violations, {} faults injected ({} retries), \
             {} escalations, {} watchdog trips, max access age {} cycles",
            self.violations,
            self.faults_injected,
            self.retries,
            self.escalations,
            self.watchdog_trips,
            self.max_access_age
        )
    }
}

/// Observability counters of the discrete-event engine: how the clock
/// actually advanced during a run.
///
/// Diagnostic only — how many cycles were stepped versus jumped depends on
/// the engine and on chunking, so these counters are excluded from
/// [`SimReport`]'s `PartialEq`, the state hash and the checkpoint's hashed
/// sections. Every observable statistic is independent of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EngineStats {
    /// Cycles executed explicitly (including no-op controller ticks —
    /// see [`EngineStats::noop_ticks`]).
    pub steps: u64,
    /// Clock jumps taken while the whole system was quiescent.
    pub quiescent_jumps: u64,
    /// Cycles covered by quiescent jumps.
    pub quiescent_skipped: u64,
    /// Clock jumps taken while the memory system held outstanding work
    /// (the event engine's contribution over quiescent-only skipping).
    pub busy_jumps: u64,
    /// Cycles covered by busy jumps.
    pub busy_skipped: u64,
    /// Stepped cycles whose controller tick was provably a pure
    /// bookkeeping no-op (below the cached tick horizon) and was replayed
    /// in closed form instead of running arbitration — the CPU still
    /// micro-stepped, so these cycles could not be jumped outright.
    pub noop_ticks: u64,
}

impl EngineStats {
    /// Events dispatched: stepped cycles at which the controller actually
    /// ran a full tick (some component could observably act).
    pub fn events_dispatched(&self) -> u64 {
        self.steps - self.noop_ticks
    }

    /// Total clock jumps, quiescent plus busy.
    pub fn jumps(&self) -> u64 {
        self.quiescent_jumps + self.busy_jumps
    }

    /// Total cycles covered by jumps.
    pub fn skipped(&self) -> u64 {
        self.quiescent_skipped + self.busy_skipped
    }

    /// Mean cycles covered per jump (zero when no jump was taken).
    pub fn mean_jump(&self) -> f64 {
        if self.jumps() == 0 {
            0.0
        } else {
            self.skipped() as f64 / self.jumps() as f64
        }
    }

    /// Events dispatched per thousand simulated memory cycles — 1000.0
    /// for a pure per-cycle run, approaching zero as jumps and no-op
    /// ticks dominate.
    pub fn events_per_kcycle(&self, mem_cycles: u64) -> f64 {
        if mem_cycles == 0 {
            0.0
        } else {
            self.events_dispatched() as f64 * 1000.0 / mem_cycles as f64
        }
    }
}

/// Results of one simulation run.
///
/// Compares equal field-by-field (`PartialEq`), which the determinism
/// tests use to assert that cycle skipping is bit-identical — except for
/// the diagnostic [`SimReport::engine`] counters, which legitimately
/// differ between engines and are excluded from the comparison.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The mechanism simulated.
    pub mechanism: Mechanism,
    /// Workload name.
    pub workload: String,
    /// CPU cycles elapsed (execution time, Figure 10's quantity).
    pub cpu_cycles: u64,
    /// Memory-controller cycles elapsed.
    pub mem_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Controller statistics (latencies, row states, occupancy).
    pub ctrl: CtrlStats,
    /// DRAM bus statistics (Figure 9b).
    pub bus: BusStats,
    /// CPU statistics.
    pub cpu: CpuStats,
    /// Robustness summary (protocol checker, fault injection, watchdog).
    pub robustness: RobustnessReport,
    /// How the clock advanced (diagnostic; excluded from `PartialEq`).
    pub engine: EngineStats,
    /// Channel count, kept for utilisation denominators.
    channels: u64,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        // `engine` is deliberately omitted: jump counts depend on the
        // engine and chunking, not on observable behaviour.
        self.mechanism == other.mechanism
            && self.workload == other.workload
            && self.cpu_cycles == other.cpu_cycles
            && self.mem_cycles == other.mem_cycles
            && self.instructions == other.instructions
            && self.ctrl == other.ctrl
            && self.bus == other.bus
            && self.cpu == other.cpu
            && self.robustness == other.robustness
            && self.channels == other.channels
    }
}

impl SimReport {
    /// Reads completed by the controller.
    pub fn reads(&self) -> u64 {
        self.ctrl.reads_done
    }

    /// Writes drained by the controller.
    pub fn writes(&self) -> u64 {
        self.ctrl.writes_done
    }

    /// Instructions per CPU cycle.
    pub fn ipc(&self) -> f64 {
        if self.cpu_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cpu_cycles as f64
        }
    }

    /// Data-bus utilisation in `[0, 1]`, averaged across channels
    /// (Figure 9b). Bus statistics are summed over channels, so the
    /// denominator is `mem_cycles * channels`.
    pub fn data_bus_utilization(&self) -> f64 {
        self.bus
            .data_bus_utilization(self.mem_cycles * self.channels)
    }

    /// Address-bus utilisation in `[0, 1]` (Figure 9b).
    pub fn addr_bus_utilization(&self) -> f64 {
        self.bus
            .addr_bus_utilization(self.mem_cycles * self.channels)
    }

    /// Effective memory bandwidth in GB/s at the given memory clock (the
    /// paper quotes 2.0 GB/s for BkInOrder to 2.7 GB/s for Burst_TH at
    /// 400 MHz).
    pub fn effective_bandwidth_gbs(&self, mem_clock_hz: f64, bus_bytes: u32) -> f64 {
        self.data_bus_utilization() * 2.0 * f64::from(bus_bytes) * mem_clock_hz / 1e9
    }

    /// Assembles a report from raw parts (used by the CMP harness, which
    /// aggregates several cores over one shared memory subsystem).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        mechanism: Mechanism,
        workload: String,
        cpu_cycles: u64,
        mem_cycles: u64,
        instructions: u64,
        ctrl: CtrlStats,
        bus: BusStats,
        cpu: CpuStats,
        robustness: RobustnessReport,
        channels: u64,
    ) -> SimReport {
        SimReport {
            mechanism,
            workload,
            cpu_cycles,
            mem_cycles,
            instructions,
            ctrl,
            bus,
            cpu,
            robustness,
            engine: EngineStats::default(),
            channels,
        }
    }

    /// Channel count of the simulated device (utilisation denominators;
    /// also journalled so resumed sweeps rebuild reports losslessly).
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Estimated DRAM energy of the run (extension; see
    /// [`burst_dram::EnergyBreakdown`]). `ranks` is the total rank count
    /// across channels paying background power.
    pub fn energy(
        &self,
        ranks: u32,
        params: &burst_dram::EnergyParams,
    ) -> burst_dram::EnergyBreakdown {
        burst_dram::EnergyBreakdown::estimate(&self.bus, self.mem_cycles, ranks, params)
    }
}

/// Line addresses of outstanding reads, keyed by dense access id.
///
/// Access ids are assigned monotonically by [`System::enqueue`], so a
/// windowed slab replaces the former `HashMap<AccessId, u64>` on the
/// per-completion hot path: slot `id - base` holds the line, and the
/// window's base advances as the oldest reads complete. Writes (and
/// completed reads) occupy sentinel slots that are popped from the front
/// as soon as they become the oldest, so the window length tracks the
/// spread between the oldest outstanding read and the newest access —
/// bounded in practice by the controller's pool and the starvation
/// watchdog, not by the total access count.
#[derive(Debug, Default)]
struct LineSlab {
    /// Access id of `slots[0]`.
    base: u64,
    /// Line address per id, or [`LineSlab::EMPTY`] for ids that are not
    /// outstanding reads (writes, completed or forwarded reads).
    slots: VecDeque<u64>,
}

impl LineSlab {
    /// Sentinel for "no line stored". Line addresses are physical cache
    /// line addresses and never reach `u64::MAX`.
    const EMPTY: u64 = u64::MAX;

    /// Stores `line` for `id`. Ids must not decrease below the window base
    /// (they are assigned monotonically).
    fn insert(&mut self, id: AccessId, line: u64) {
        debug_assert_ne!(line, Self::EMPTY, "sentinel collision");
        if self.slots.is_empty() {
            // No reads outstanding: snap the window to this id so a run of
            // intervening writes leaves no sentinel gap to cross.
            self.base = id.value();
        }
        let idx = id.value() - self.base;
        while (self.slots.len() as u64) <= idx {
            self.slots.push_back(Self::EMPTY);
        }
        self.slots[idx as usize] = line;
    }

    /// Removes and returns the line stored for `id`, advancing the window
    /// past any leading non-read slots.
    fn remove(&mut self, id: AccessId) -> Option<u64> {
        let idx = id.value().checked_sub(self.base)?;
        if idx >= self.slots.len() as u64 {
            return None;
        }
        let line = std::mem::replace(&mut self.slots[idx as usize], Self::EMPTY);
        while self.slots.front() == Some(&Self::EMPTY) {
            self.slots.pop_front();
            self.base += 1;
        }
        (line != Self::EMPTY).then_some(line)
    }

    #[cfg(test)]
    fn window_len(&self) -> usize {
        self.slots.len()
    }
}

/// Size in bytes of the diagnostic tail [`System::checkpoint`] appends
/// after the hashed observable sections: `skipped` plus the five
/// [`EngineStats`] counters, one `u64` each.
pub(crate) const DIAGNOSTIC_TAIL_BYTES: usize = 7 * 8;

/// A provably-skippable stretch of upcoming memory cycles, tagged with
/// the closed-form replay it needs (see [`System::jump_horizon`]).
#[derive(Debug, Clone, Copy)]
enum Jump {
    /// The whole system is idle: replay via `advance_quiescent`.
    Quiescent(u64),
    /// Work is outstanding but provably blocked: replay via
    /// `advance_blocked`.
    Busy(u64),
}

impl Jump {
    fn len(self) -> u64 {
        match self {
            Jump::Quiescent(n) | Jump::Busy(n) => n,
        }
    }
}

/// A stepped full-system simulation.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    dram: Dram,
    sched: Box<dyn AccessScheduler>,
    cpu: Cpu,
    mem_cycle: Cycle,
    next_id: u64,
    completions: Vec<Completion>,
    /// Future read deliveries: (done_at, line address).
    pending: BinaryHeap<Reverse<(Cycle, u64)>>,
    read_lines: LineSlab,
    /// Memory cycles jumped over by [`System::advance_idle`] and
    /// [`System::advance_busy`]. Diagnostic only — deliberately excluded
    /// from [`SimReport`]'s comparison, which must hold between engines.
    skipped: u64,
    /// Event-engine observability counters (diagnostic, like `skipped`).
    engine_stats: EngineStats,
    /// Cached controller+device event horizon: `Some(e)` proves that a
    /// controller tick at any cycle in `[mem_cycle, e)` is a pure
    /// bookkeeping no-op, as long as no access is enqueued in the
    /// interim. Invalidated on every enqueue and every full tick. Purely
    /// an execution-path memo — both paths are bit-identical — so it is
    /// absent from checkpoints and recomputed lazily after a restore.
    tick_horizon: Option<Cycle>,
    /// Fruitless-fold backoff: steps to wait before the next
    /// [`AccessScheduler::next_busy_event`] attempt. Declining to attempt
    /// a jump is always safe (the cycle is stepped instead, and jumps are
    /// bit-identical to steps), so this is pure execution-path tuning for
    /// event-dense phases where the fold rarely buys a jump — like the
    /// tick-horizon memo it is absent from checkpoints.
    fold_cooldown: u64,
    /// Current backoff stride, doubled (up to [`FOLD_MAX_STRIDE`]) on
    /// every fruitless fold and reset by a profitable jump.
    fold_stride: u64,
    /// Cached minimum of `pending` (`u64::MAX` when empty): the earliest
    /// cycle a read delivery is due. Min-maintained on push, recomputed
    /// after a drain — so the per-step delivery check and the horizon
    /// probes are one integer compare. Purely an execution-path memo
    /// (always equal to `pending.peek()`), rebuilt on restore.
    next_delivery: Cycle,
    /// Opt-in wall-clock phase profile (see [`PhaseProfile`]): report-only
    /// host-time accounting, `None` unless the perf harness enables it.
    /// Never serialised — it describes the host run, not simulated state.
    profile: Option<Box<PhaseProfile>>,
}

/// A fresh busy-event fold that yields a jump at least this long resets
/// the backoff stride; shorter outcomes grow it.
const FOLD_MIN_PROFIT: u64 = 4;

/// Upper bound on the fruitless-fold backoff stride, so a phase change
/// back to sparse traffic is noticed within this many stalled steps.
const FOLD_MAX_STRIDE: u64 = 64;

impl System {
    /// Builds an idle system.
    pub fn new(cfg: &SystemConfig) -> Self {
        let sched = cfg.mechanism.build(cfg.effective_ctrl(), cfg.dram.geometry);
        Self::with_scheduler(cfg, sched)
    }

    /// Builds a system around a caller-supplied scheduler — the seam for
    /// testing robustness machinery against schedulers outside
    /// [`Mechanism`] (e.g. deliberately broken ones).
    pub fn with_scheduler(cfg: &SystemConfig, sched: Box<dyn AccessScheduler>) -> Self {
        let mut dram = Dram::new(cfg.dram, cfg.mapping);
        if cfg.checker {
            dram.enable_checker();
        }
        System {
            cfg: *cfg,
            dram,
            sched,
            cpu: Cpu::new(cfg.cpu),
            mem_cycle: 0,
            next_id: 0,
            completions: Vec::new(),
            pending: BinaryHeap::new(),
            read_lines: LineSlab::default(),
            skipped: 0,
            engine_stats: EngineStats::default(),
            tick_horizon: None,
            fold_cooldown: 0,
            fold_stride: 1,
            next_delivery: Cycle::MAX,
            profile: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Memory cycles elapsed.
    pub fn mem_cycle(&self) -> Cycle {
        self.mem_cycle
    }

    /// Instructions retired.
    pub fn retired(&self) -> u64 {
        self.cpu.retired()
    }

    /// Memory cycles jumped over by the engine so far (zero under
    /// [`Engine::CycleNoSkip`]). Counts toward [`System::mem_cycle`] like
    /// any stepped cycle.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    /// Event-engine observability counters accumulated so far.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine_stats
    }

    /// Functionally warms the caches with the configured budget. Call once
    /// before [`System::run`]; [`simulate`] does this automatically.
    pub fn warm(&mut self, workload: &mut dyn OpSource) {
        let budget = self.cfg.warm_mem_ops;
        if budget > 0 {
            self.cpu.warm_caches(workload, budget);
        }
    }

    /// Advances one memory-controller cycle: `cpu_ratio` CPU cycles, then
    /// request hand-off, then one scheduler tick.
    pub fn step(&mut self, workload: &mut dyn OpSource) {
        self.engine_stats.steps += 1;
        let t0 = Stamp::begin(self.profile.is_some());
        // 1. CPU makes progress and generates cache-miss traffic. Under the
        //    event engine, [`Cpu::run_until`] advances stalled stretches and
        //    full-width compute streaks inside the step in closed form —
        //    bit-identically to per-cycle stepping, since nothing external
        //    (read delivery, hand-off) happens between the micro-cycles of
        //    one step. The cycle engines keep the plain loop as an
        //    independent reference implementation.
        if self.cfg.engine == Engine::Event {
            self.cpu
                .run_until(self.cpu.now() + self.cfg.cpu.cpu_ratio, workload);
        } else {
            for _ in 0..self.cfg.cpu.cpu_ratio {
                self.cpu.cycle(workload);
            }
        }
        let t1 = t0.lap(self.profile.as_deref_mut(), |p| &mut p.cpu_ns);
        // 2. Hand requests to the controller while it accepts them. Reads
        //    first (they are latency-critical), then writebacks. The
        //    pending-count guards skip the virtual `can_accept` probe on the
        //    (common) steps with nothing to hand off.
        if self.cpu.pending_read_requests() != 0 {
            while self.sched.can_accept(AccessKind::Read) {
                let Some((line, critical)) = self.cpu.pop_read_request_tagged() else {
                    break;
                };
                self.enqueue(AccessKind::Read, line, critical);
            }
        }
        if self.cpu.pending_writebacks() != 0 {
            while self.sched.can_accept(AccessKind::Write) {
                let Some(line) = self.cpu.pop_writeback() else {
                    break;
                };
                self.enqueue(AccessKind::Write, line, false);
            }
        }
        let t2 = t1.lap(self.profile.as_deref_mut(), |p| &mut p.handoff_ns);
        // 3. One controller + device cycle. Below the cached tick horizon
        //    the tick is provably a pure bookkeeping no-op (and the device
        //    equally inert), so it is replayed in closed form — the cheap
        //    path that lets busy phases advance event-to-event even while
        //    the CPU is live and each cycle must still be stepped. Only an
        //    *already cached* horizon is consulted: recomputing the fold
        //    here would charge every ordinary busy cycle for it, which is
        //    exactly the cost profile the cache exists to avoid.
        match self.tick_horizon {
            Some(e) if self.mem_cycle < e => {
                self.sched.advance_blocked(self.mem_cycle, 1);
                self.engine_stats.noop_ticks += 1;
            }
            _ => {
                self.tick_horizon = None;
                self.sched
                    .tick(&mut self.dram, self.mem_cycle, &mut self.completions);
            }
        }
        for c in self.completions.drain(..) {
            if c.kind == AccessKind::Read {
                if let Some(line) = self.read_lines.remove(c.id) {
                    self.pending.push(Reverse((c.done_at, line)));
                    self.next_delivery = self.next_delivery.min(c.done_at);
                }
            }
        }
        let t3 = t2.lap(self.profile.as_deref_mut(), |p| &mut p.dram_ns);
        // 4. Deliver read data whose transfer has finished. The cached
        //    minimum makes the no-delivery step (the common case) a single
        //    integer compare instead of a heap peek through two levels of
        //    wrapper types.
        if self.next_delivery <= self.mem_cycle {
            while let Some(&Reverse((at, line))) = self.pending.peek() {
                if at > self.mem_cycle {
                    break;
                }
                self.pending.pop();
                self.cpu.complete_read(line, self.cpu.now());
            }
            self.next_delivery = self
                .pending
                .peek()
                .map_or(Cycle::MAX, |&Reverse((at, _))| at);
        }
        t3.lap(self.profile.as_deref_mut(), |p| &mut p.deliver_ns);
        self.mem_cycle += 1;
    }

    /// Turns on wall-clock phase profiling for subsequent steps (see
    /// [`PhaseProfile`]). Report-only: enabling it cannot change one bit
    /// of simulated behaviour, only how much the host clock is read.
    pub fn enable_phase_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// The accumulated phase profile, if profiling was enabled.
    pub fn phase_profile(&self) -> Option<&PhaseProfile> {
        self.profile.as_deref()
    }

    fn enqueue(&mut self, kind: AccessKind, line: u64, critical: bool) {
        let addr = PhysAddr::new(line);
        let loc = self.dram.decode(addr);
        let id = AccessId::new(self.next_id);
        self.next_id += 1;
        let access = Access::new(id, kind, addr, loc, self.mem_cycle).with_critical(critical);
        // New work can move the controller's next event earlier — but
        // only through the arms the scheduler vouches for. An arrival it
        // rules out (e.g. one landing behind an ongoing transfer that
        // pins its bank busy through the horizon) keeps the cached
        // horizon, and with it the cheap no-op tick path, alive.
        if self.tick_horizon.is_some() && self.sched.enqueue_may_advance_horizon(&access) {
            self.tick_horizon = None;
        }
        if kind == AccessKind::Read {
            self.read_lines.insert(id, line);
        }
        // Forwarded reads push a same-cycle completion, which the regular
        // delivery path below hands back to the CPU this very cycle.
        self.sched
            .enqueue(access, self.mem_cycle, &mut self.completions);
    }

    /// How many upcoming memory cycles are provably pure no-ops, or
    /// `None` when the system may make progress on the very next step.
    ///
    /// A cycle qualifies only when nothing can change during it: the CPU
    /// is fully stalled with no undelivered requests, the scheduler holds
    /// no work, no read delivery is due, and the device reports no timing
    /// event. The returned count may be enormous (a livelocked system has
    /// no next event); callers cap it with their run budget before
    /// calling [`System::advance_idle`].
    fn skip_horizon(&self, quiescent: bool) -> Option<u64> {
        if self.cfg.engine == Engine::CycleNoSkip || self.mem_cycle == 0 || !quiescent {
            return None;
        }
        if self.cpu.pending_read_requests() != 0 || self.cpu.pending_writebacks() != 0 {
            return None;
        }
        let wake = self.cpu.idle_until()?;
        let cur = self.mem_cycle;
        let r = self.cfg.cpu.cpu_ratio;
        // Step `t` runs CPU cycles `t*r + 1..=(t+1)*r`, so the retirement
        // wake-up at CPU cycle `wake` happens during step `(wake - 1) / r`.
        let mut event = if wake == u64::MAX {
            u64::MAX
        } else {
            (wake - 1) / r
        };
        event = event.min(self.next_delivery);
        // The device horizon is evaluated at the last ticked cycle
        // (`cur - 1`): an event due exactly at `cur` must force a normal
        // step, and `next_event` only reports events after its argument.
        if let Some(at) = self.dram.next_event(cur - 1) {
            event = event.min(at);
        }
        (event > cur).then(|| event - cur)
    }

    /// Jumps `n` quiescent memory cycles in one stride, bit-identically
    /// to stepping through them: CPU stall time, controller bookkeeping
    /// and the cycle counter advance in closed form, and the untouched
    /// device state is exactly what `n` no-op ticks would have left.
    /// Callers must keep `n` within [`System::skip_horizon`].
    fn advance_idle(&mut self, n: u64) {
        self.cpu.advance_stalled(n * self.cfg.cpu.cpu_ratio);
        self.sched.advance_quiescent(self.mem_cycle, n);
        self.mem_cycle += n;
        self.skipped += n;
        self.engine_stats.quiescent_jumps += 1;
        self.engine_stats.quiescent_skipped += n;
    }

    /// The controller+device event horizon, memoised: the earliest cycle
    /// at which a controller tick could differ from a pure bookkeeping
    /// no-op (or at which the device itself has a timing/refresh event),
    /// assuming no access is enqueued in the interim. `None` when the
    /// scheduler cannot prove one (its next tick may act).
    ///
    /// The cached value stays valid across steps because the contract is
    /// self-sustaining: every tick strictly below the horizon is a no-op,
    /// so it cannot move the horizon; the two things that can — an
    /// enqueue, or the full tick at the horizon itself — both clear the
    /// cache.
    fn tick_horizon(&mut self, quiescent: bool) -> Option<Cycle> {
        if self.cfg.engine != Engine::Event || self.mem_cycle == 0 || quiescent {
            return None;
        }
        if let Some(e) = self.tick_horizon {
            if self.mem_cycle < e {
                return Some(e);
            }
        }
        let last = self.mem_cycle - 1;
        let mut event = self.sched.next_busy_event(&self.dram, last)?;
        if let Some(at) = self.dram.next_event(last) {
            event = event.min(at);
        }
        self.tick_horizon = Some(event);
        Some(event)
    }

    /// How many upcoming memory cycles are provably no-ops *while the
    /// memory system is busy*, or `None` when the next step may act.
    ///
    /// This is the event engine's extension over [`System::skip_horizon`]:
    /// outstanding accesses may be in flight, but every component proves
    /// it cannot observably act before the returned horizon — the CPU is
    /// stalled past it, request hand-off is blocked (nothing pending, or
    /// the controller pool is full and stays full because nothing issues),
    /// no read delivery is due, the device reports no timing event, and
    /// the scheduler's own arbiter/selection/watchdog/adaptation fixpoint
    /// holds for the whole stretch ([`AccessScheduler::next_busy_event`]).
    fn busy_horizon(&mut self, quiescent: bool) -> Option<u64> {
        if self.cfg.engine != Engine::Event || self.mem_cycle == 0 || quiescent {
            return None;
        }
        // The cheap vetoes come first, so event-dense phases — where the
        // CPU is live and hand-off churns every step — never pay for the
        // scheduler fold below.
        //
        // Hand-off stability: an undelivered CPU request enters the
        // controller on the very next step it can accept one. Occupancy is
        // constant over a no-op stretch (slots free only when commands
        // issue), so acceptance cannot open up mid-jump either.
        if self.cpu.pending_read_requests() != 0 && self.sched.can_accept(AccessKind::Read) {
            return None;
        }
        if self.cpu.pending_writebacks() != 0 && self.sched.can_accept(AccessKind::Write) {
            return None;
        }
        let wake = self.cpu.idle_until()?;
        // The controller and device can veto outright: `None` means "the
        // next tick may act" (or it cannot prove otherwise). The fold is
        // memoised — recomputed only after an enqueue or a full tick — and
        // recomputation sits behind an exponential backoff: during dense
        // phases most folds buy no jump, and declining to attempt one is
        // always bit-identical (the cycle is simply stepped).
        let cached = self.tick_horizon.filter(|&e| self.mem_cycle < e);
        let (mut event, fresh) = match cached {
            Some(e) => (e, false),
            None => {
                if self.fold_cooldown > 0 {
                    self.fold_cooldown -= 1;
                    return None;
                }
                match self.tick_horizon(quiescent) {
                    Some(e) => (e, true),
                    None => {
                        self.fold_backoff();
                        return None;
                    }
                }
            }
        };
        let cur = self.mem_cycle;
        let r = self.cfg.cpu.cpu_ratio;
        if wake != u64::MAX {
            // Step `t` runs CPU cycles `t*r + 1..=(t+1)*r`, so the
            // retirement wake-up at CPU cycle `wake` happens during step
            // `(wake - 1) / r`.
            event = event.min((wake - 1) / r);
        }
        event = event.min(self.next_delivery);
        let n = (event > cur).then(|| event - cur);
        if fresh {
            match n {
                Some(n) if n >= FOLD_MIN_PROFIT => self.fold_stride = 1,
                // A clamped or empty jump still leaves the memo warm (the
                // cheap-tick path uses it), but the fold itself did not
                // pay: back off.
                _ => self.fold_backoff(),
            }
        }
        n
    }

    /// Registers a fruitless [`AccessScheduler::next_busy_event`] fold:
    /// skip the next `fold_stride` attempts and double the stride.
    fn fold_backoff(&mut self) {
        self.fold_cooldown = self.fold_stride;
        self.fold_stride = (self.fold_stride * 2).min(FOLD_MAX_STRIDE);
    }

    /// Jumps `n` busy memory cycles in one stride, bit-identically to
    /// stepping through them: CPU stall time, the controller's per-tick
    /// bookkeeping (occupancy samples, age tracking, watchdog clock) and
    /// the cycle counter advance in closed form. Callers must keep `n`
    /// within [`System::busy_horizon`].
    fn advance_busy(&mut self, n: u64) {
        self.cpu.advance_stalled(n * self.cfg.cpu.cpu_ratio);
        self.sched.advance_blocked(self.mem_cycle, n);
        self.mem_cycle += n;
        self.skipped += n;
        self.engine_stats.busy_jumps += 1;
        self.engine_stats.busy_skipped += n;
    }

    /// The provably skippable stretch starting at the next step, if any:
    /// quiescent horizons first (cheaper to test, larger), then busy ones.
    fn jump_horizon(&mut self) -> Option<Jump> {
        // One virtual quiescence query feeds both horizon probes (and the
        // busy path's tick-horizon fold) — they branch on opposite answers,
        // so at most one runs its body.
        let quiescent = self.sched.quiescent();
        if let Some(n) = self.skip_horizon(quiescent) {
            return Some(Jump::Quiescent(n));
        }
        self.busy_horizon(quiescent).map(Jump::Busy)
    }

    /// Advances `n` cycles of the stretch `jump` was computed for.
    fn advance_jump(&mut self, jump: Jump, n: u64) {
        match jump {
            Jump::Quiescent(_) => self.advance_idle(n),
            Jump::Busy(_) => self.advance_busy(n),
        }
    }

    /// Runs until `len` is reached.
    ///
    /// # Panics
    ///
    /// Panics with the [`RunError`] diagnostic if the system makes no
    /// forward progress for an implausibly long stretch (a livelock would
    /// otherwise hang experiments silently). Use [`System::try_run`] to
    /// handle stalls as values.
    pub fn run(&mut self, workload: &mut dyn OpSource, len: RunLength) {
        if let Err(e) = self.try_run(workload, len) {
            panic!("simulation stalled: {e}");
        }
    }

    /// Runs until `len` is reached, turning forward-progress stalls into
    /// structured errors instead of hanging or panicking.
    ///
    /// # Errors
    ///
    /// [`RunError::ControllerStall`] when the scheduler's watchdog latches
    /// a stall (outstanding accesses but no transaction issued for the
    /// configured limit); [`RunError::RetirementStall`] when the CPU stops
    /// retiring instructions for two million memory cycles although the
    /// controller itself reports no stall.
    pub fn try_run(&mut self, workload: &mut dyn OpSource, len: RunLength) -> Result<(), RunError> {
        let mut cursor = RunCursor::start(self);
        loop {
            match self.try_run_chunk(workload, len, &mut cursor, u64::MAX)? {
                ChunkOutcome::Done => return Ok(()),
                ChunkOutcome::Paused => continue,
            }
        }
    }

    /// Runs toward `len` for at most `budget` memory cycles (stepped plus
    /// skipped), pausing at a step boundary when the budget runs out.
    ///
    /// The chunk boundary is exactly where a checkpoint is taken: pausing,
    /// snapshotting, restoring into a fresh system and continuing yields
    /// the same cycle-by-cycle behaviour as an uninterrupted
    /// [`System::try_run`] — the skip-capping logic decomposes jumps
    /// bit-identically, and `cursor` carries the retirement-watchdog
    /// counters across the boundary so even the stall-declaration cycle is
    /// preserved.
    ///
    /// # Errors
    ///
    /// Same conditions as [`System::try_run`]; both error variants carry
    /// the state hash at the failure cycle.
    pub fn try_run_chunk(
        &mut self,
        workload: &mut dyn OpSource,
        len: RunLength,
        cursor: &mut RunCursor,
        budget: u64,
    ) -> Result<ChunkOutcome, RunError> {
        let mut spent = 0u64;
        match len {
            RunLength::MemCycles(n) => {
                while cursor.done_cycles < n {
                    if spent >= budget {
                        return Ok(ChunkOutcome::Paused);
                    }
                    self.step(workload);
                    cursor.done_cycles += 1;
                    spent += 1;
                    if let Some(diag) = self.stamped_stall() {
                        return Err(RunError::ControllerStall(diag));
                    }
                    // Skipped cycles cannot latch a stall: quiescent ones
                    // trivially, busy ones because the stall-latch cycle
                    // bounds every busy horizon — so jumping skips no
                    // diagnostic check that could fire.
                    if let Some(jump) = self.jump_horizon() {
                        let skip = jump
                            .len()
                            .min(n - cursor.done_cycles)
                            .min(budget.saturating_sub(spent));
                        if skip > 0 {
                            self.advance_jump(jump, skip);
                            cursor.done_cycles += skip;
                            spent += skip;
                        }
                    }
                }
            }
            RunLength::Instructions(n) => {
                while self.cpu.retired() < n {
                    if spent >= budget {
                        return Ok(ChunkOutcome::Paused);
                    }
                    self.step(workload);
                    spent += 1;
                    if let Some(diag) = self.stamped_stall() {
                        return Err(RunError::ControllerStall(diag));
                    }
                    if self.cpu.retired() == cursor.last_retired {
                        cursor.idle += 1;
                        if cursor.idle >= 2_000_000 {
                            return Err(self.retirement_stall(cursor.last_retired));
                        }
                        // Nothing retires during a skipped stretch (the
                        // CPU is stalled past its end), so the idle budget
                        // burns down cycle-for-cycle — capping the jump at
                        // the budget lands the stall error on the exact
                        // cycle per-cycle stepping would report.
                        if let Some(jump) = self.jump_horizon() {
                            let skip = jump
                                .len()
                                .min(2_000_000 - cursor.idle)
                                .min(budget.saturating_sub(spent));
                            if skip > 0 {
                                self.advance_jump(jump, skip);
                                cursor.idle += skip;
                                spent += skip;
                                if cursor.idle >= 2_000_000 {
                                    return Err(self.retirement_stall(cursor.last_retired));
                                }
                            }
                        }
                    } else {
                        cursor.idle = 0;
                        cursor.last_retired = self.cpu.retired();
                    }
                }
            }
        }
        Ok(ChunkOutcome::Done)
    }

    /// The scheduler's latched stall diagnostic with the whole-system
    /// state hash stamped in (zero when the state cannot be serialised).
    fn stamped_stall(&self) -> Option<StallDiagnostic> {
        let mut diag = self.sched.stall_diagnostic()?;
        diag.state_hash = self.state_hash().unwrap_or(0);
        Some(diag)
    }

    fn retirement_stall(&self, last_retired: u64) -> RunError {
        RunError::RetirementStall {
            mem_cycle: self.mem_cycle,
            retired: last_retired,
            state_hash: self.state_hash().unwrap_or(0),
        }
    }

    /// Produces the run's report.
    pub fn report(&self, workload_name: impl Into<String>) -> SimReport {
        SimReport {
            mechanism: self.sched.mechanism(),
            workload: workload_name.into(),
            cpu_cycles: self.cpu.now(),
            mem_cycles: self.mem_cycle,
            instructions: self.cpu.retired(),
            ctrl: self.sched.stats().clone(),
            bus: self.dram.total_stats(),
            cpu: *self.cpu.stats(),
            robustness: RobustnessReport::collect(
                self.sched.stats(),
                self.dram.protocol_violations(),
            ),
            engine: self.engine_stats,
            channels: u64::from(self.cfg.dram.geometry.channels),
        }
    }

    /// Fault-injection hook for the lockstep oracle's self-check:
    /// deterministically skews the CPU's stall-cycle accounting by
    /// `cycles`, emulating the bookkeeping bug class event-horizon
    /// skipping could introduce. The skew is observable in the state hash
    /// from this cycle on, so the oracle must pinpoint exactly the cycle
    /// it was applied.
    pub fn perturb_stall_accounting(&mut self, cycles: u64) {
        self.cpu.skew_stall_accounting(cycles);
    }

    /// The stall diagnostic latched by the scheduler's watchdog, if any,
    /// with the whole-system state hash stamped in.
    pub fn stall_diagnostic(&self) -> Option<StallDiagnostic> {
        self.stamped_stall()
    }

    /// DDR2 protocol violations recorded so far (always zero with the
    /// checker disabled).
    pub fn protocol_violations(&self) -> u64 {
        self.dram.protocol_violations()
    }

    /// Serialises the four observable components. Shared by
    /// [`System::checkpoint`], [`System::state_hash`] and
    /// [`System::component_hashes`] so they always agree byte-for-byte.
    fn observable_sections(&self) -> Result<[Vec<u8>; 4], SnapError> {
        let mut cw = SnapWriter::new();
        self.cpu.save_snap(&mut cw);
        let mut sw = SnapWriter::new();
        self.sched.save_state(&mut sw)?;
        let mut dw = SnapWriter::new();
        self.dram.save_snap(&mut dw);
        let mut yw = SnapWriter::new();
        yw.u64(self.mem_cycle);
        yw.u64(self.next_id);
        // A BinaryHeap's internal layout depends on insertion history;
        // serialise the pending deliveries sorted so two systems in the
        // same logical state produce the same bytes.
        let mut pending: Vec<(Cycle, u64)> = self.pending.iter().map(|Reverse(p)| *p).collect();
        pending.sort_unstable();
        yw.usize(pending.len());
        for (at, line) in pending {
            yw.u64(at);
            yw.u64(line);
        }
        // Completions are drained within every step, so this is empty at
        // any step boundary — written anyway so the format cannot lie.
        yw.usize(self.completions.len());
        for c in &self.completions {
            yw.u64(c.id.value());
            yw.u8(match c.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
            yw.u64(c.done_at);
            yw.u64(c.latency);
            yw.bool(c.forwarded);
        }
        yw.u64(self.read_lines.base);
        yw.usize(self.read_lines.slots.len());
        for &line in &self.read_lines.slots {
            yw.u64(line);
        }
        Ok([
            cw.into_bytes(),
            sw.into_bytes(),
            dw.into_bytes(),
            yw.into_bytes(),
        ])
    }

    /// Serialises the complete simulation state into a [`Snapshot`].
    ///
    /// Call at a step boundary (between [`System::step`] calls, or when
    /// [`System::try_run_chunk`] pauses). Restoring the snapshot into a
    /// fresh system built from the same configuration — with the workload
    /// rebuilt from its seed and fast-forwarded by the recorded op count —
    /// continues to a byte-identical [`SimReport`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] when the scheduler is a caller-supplied
    /// type without checkpoint support.
    pub fn checkpoint(&self) -> Result<Snapshot, SnapError> {
        let [cpu, sched, dram, system] = self.observable_sections()?;
        let components = ComponentHashes {
            cpu: fnv1a64(&cpu),
            sched: fnv1a64(&sched),
            dram: fnv1a64(&dram),
            system: fnv1a64(&system),
        };
        let mut w = SnapWriter::new();
        w.bytes(&cpu);
        w.bytes(&sched);
        w.bytes(&dram);
        w.bytes(&system);
        let state_hash = fnv1a64(w.as_slice());
        // Diagnostic section: skip bookkeeping and engine counters are
        // reported by `skipped_cycles`/`engine_stats` but deliberately
        // excluded from the state hash, which must agree across engines.
        w.u64(self.skipped);
        w.u64(self.engine_stats.steps);
        w.u64(self.engine_stats.quiescent_jumps);
        w.u64(self.engine_stats.quiescent_skipped);
        w.u64(self.engine_stats.busy_jumps);
        w.u64(self.engine_stats.busy_skipped);
        w.u64(self.engine_stats.noop_ticks);
        Ok(Snapshot {
            bytes: w.into_bytes(),
            state_hash,
            components,
        })
    }

    /// Restores state written by [`System::checkpoint`] into a system
    /// built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`] when the bytes
    /// do not decode against this system's configuration (wrong geometry,
    /// wrong mechanism, torn file). The system is left in an unspecified
    /// but memory-safe state on error; discard it.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let cpu = r.bytes()?;
        let sched = r.bytes()?;
        let dram = r.bytes()?;
        let system = r.bytes()?;
        let skipped = r.u64()?;
        let engine_stats = EngineStats {
            steps: r.u64()?,
            quiescent_jumps: r.u64()?,
            quiescent_skipped: r.u64()?,
            busy_jumps: r.u64()?,
            busy_skipped: r.u64()?,
            noop_ticks: r.u64()?,
        };
        r.finish()?;
        let mut cr = SnapReader::new(&cpu);
        self.cpu.load_snap(&mut cr)?;
        cr.finish()?;
        let mut sr = SnapReader::new(&sched);
        self.sched.load_state(&mut sr)?;
        sr.finish()?;
        let mut dr = SnapReader::new(&dram);
        self.dram.load_snap(&mut dr)?;
        dr.finish()?;
        let mut yr = SnapReader::new(&system);
        self.mem_cycle = yr.u64()?;
        self.next_id = yr.u64()?;
        let n_pending = yr.seq_len(16)?;
        self.pending.clear();
        for _ in 0..n_pending {
            let at = yr.u64()?;
            let line = yr.u64()?;
            self.pending.push(Reverse((at, line)));
        }
        let n_completions = yr.seq_len(25)?;
        self.completions.clear();
        for _ in 0..n_completions {
            let id = AccessId::new(yr.u64()?);
            let kind = match yr.u8()? {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => return Err(SnapError::Corrupt("bad completion kind")),
            };
            let done_at = yr.u64()?;
            let latency = yr.u64()?;
            let forwarded = yr.bool()?;
            self.completions.push(Completion {
                id,
                kind,
                done_at,
                latency,
                forwarded,
            });
        }
        self.read_lines.base = yr.u64()?;
        let n_slots = yr.seq_len(8)?;
        self.read_lines.slots.clear();
        for _ in 0..n_slots {
            self.read_lines.slots.push_back(yr.u64()?);
        }
        yr.finish()?;
        if self.read_lines.base + self.read_lines.slots.len() as u64 > self.next_id {
            return Err(SnapError::Corrupt("read-line window past the id counter"));
        }
        self.skipped = skipped;
        self.engine_stats = engine_stats;
        self.tick_horizon = None;
        self.fold_cooldown = 0;
        self.fold_stride = 1;
        // Execution-path memos: rebuild the delivery minimum from the
        // restored heap; the profile describes the host run and persists
        // across restores untouched.
        self.next_delivery = self
            .pending
            .peek()
            .map_or(Cycle::MAX, |&Reverse((at, _))| at);
        Ok(())
    }

    /// FNV-1a digest of the observable simulation state — identical for
    /// two systems whose future behaviour is identical, regardless of how
    /// they got there (stepped or skipped, fresh or restored).
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] for schedulers without checkpoint
    /// support.
    pub fn state_hash(&self) -> Result<u64, SnapError> {
        Ok(self.checkpoint_hash_parts()?.0)
    }

    /// Per-component digests of the observable state (see
    /// [`ComponentHashes`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`System::state_hash`].
    pub fn component_hashes(&self) -> Result<ComponentHashes, SnapError> {
        Ok(self.checkpoint_hash_parts()?.1)
    }

    fn checkpoint_hash_parts(&self) -> Result<(u64, ComponentHashes), SnapError> {
        let [cpu, sched, dram, system] = self.observable_sections()?;
        let components = ComponentHashes {
            cpu: fnv1a64(&cpu),
            sched: fnv1a64(&sched),
            dram: fnv1a64(&dram),
            system: fnv1a64(&system),
        };
        let mut w = SnapWriter::new();
        w.bytes(&cpu);
        w.bytes(&sched);
        w.bytes(&dram);
        w.bytes(&system);
        Ok((fnv1a64(w.as_slice()), components))
    }
}

/// Runs one simulation to completion and returns its report — the
/// one-call entry point.
///
/// # Examples
///
/// ```
/// use burst_sim::{simulate, RunLength, SystemConfig};
/// use burst_core::Mechanism;
/// use burst_workloads::SpecBenchmark;
///
/// let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52));
/// let report = simulate(&cfg, SpecBenchmark::Swim.workload(42), RunLength::Instructions(5_000));
/// assert!(report.instructions >= 5_000);
/// ```
pub fn simulate<W: OpSource>(cfg: &SystemConfig, mut workload: W, len: RunLength) -> SimReport {
    let mut sys = System::new(cfg);
    sys.warm(&mut workload);
    sys.run(&mut workload, len);
    let name = workload.name().to_string();
    sys.report(name)
}

/// [`simulate`] with forward-progress stalls surfaced as values instead of
/// panics — the entry point every sweep cell and harness binary should use
/// so a single stalled cell cannot abort the process.
///
/// # Errors
///
/// Propagates [`System::try_run`]'s [`RunError`].
pub fn try_simulate<W: OpSource>(
    cfg: &SystemConfig,
    mut workload: W,
    len: RunLength,
) -> Result<SimReport, RunError> {
    let mut sys = System::new(cfg);
    sys.warm(&mut workload);
    sys.try_run(&mut workload, len)?;
    let name = workload.name().to_string();
    Ok(sys.report(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u64) -> AccessId {
        AccessId::new(v)
    }

    #[test]
    fn line_slab_round_trips_in_order() {
        let mut slab = LineSlab::default();
        slab.insert(id(0), 64);
        slab.insert(id(1), 128);
        assert_eq!(slab.remove(id(0)), Some(64));
        assert_eq!(slab.remove(id(1)), Some(128));
        assert_eq!(slab.window_len(), 0);
    }

    #[test]
    fn line_slab_handles_write_gaps_and_out_of_order_removal() {
        let mut slab = LineSlab::default();
        // Ids 3 and 5 are writes / forwarded reads: never inserted.
        slab.insert(id(2), 200);
        slab.insert(id(4), 400);
        slab.insert(id(6), 600);
        assert_eq!(slab.remove(id(4)), Some(400));
        assert_eq!(slab.remove(id(3)), None, "gap ids hold no line");
        assert_eq!(slab.remove(id(6)), Some(600));
        assert_eq!(slab.remove(id(2)), Some(200));
        assert_eq!(slab.window_len(), 0, "window compacts once drained");
    }

    #[test]
    fn line_slab_double_remove_returns_none() {
        let mut slab = LineSlab::default();
        slab.insert(id(7), 700);
        assert_eq!(slab.remove(id(7)), Some(700));
        assert_eq!(slab.remove(id(7)), None, "a retry must not double-deliver");
    }

    fn paused_cfg() -> SystemConfig {
        SystemConfig::baseline()
            .with_mechanism(Mechanism::BurstTh(52))
            .with_warm_mem_ops(1_000)
    }

    #[test]
    fn checkpoint_restore_continues_to_identical_report() {
        use burst_workloads::{CountingSource, SpecBenchmark};
        let cfg = paused_cfg();
        let len = RunLength::Instructions(40_000);

        // Reference: one uninterrupted run.
        let mut wa = CountingSource::new(SpecBenchmark::Swim.workload(7));
        let mut a = System::new(&cfg);
        a.warm(&mut wa);
        a.try_run(&mut wa, len).unwrap();
        let reference = a.report("w");

        // Same run paused mid-flight, checkpointed, restored into a fresh
        // system with a rebuilt fast-forwarded workload, and finished.
        let mut wb = CountingSource::new(SpecBenchmark::Swim.workload(7));
        let mut b = System::new(&cfg);
        b.warm(&mut wb);
        let mut cursor = RunCursor::start(&b);
        let outcome = b.try_run_chunk(&mut wb, len, &mut cursor, 2_000).unwrap();
        assert_eq!(outcome, ChunkOutcome::Paused, "budget must pause mid-run");
        let snap = b.checkpoint().unwrap();

        let mut c = System::new(&cfg);
        c.restore(&snap.bytes).unwrap();
        assert_eq!(c.state_hash().unwrap(), snap.state_hash);
        assert_eq!(c.component_hashes().unwrap(), snap.components);
        let mut wc = CountingSource::new(SpecBenchmark::Swim.workload(7));
        wc.skip(wb.consumed());
        let mut cw = SnapWriter::new();
        cursor.save_snap(&mut cw);
        let cursor_bytes = cw.into_bytes();
        let mut cr = SnapReader::new(&cursor_bytes);
        let mut resumed = RunCursor::load_snap(&mut cr).unwrap();
        cr.finish().unwrap();
        while c.try_run_chunk(&mut wc, len, &mut resumed, 5_000).unwrap() == ChunkOutcome::Paused {}
        assert_eq!(c.report("w"), reference);

        // The original paused system finishes to the same report too.
        while b
            .try_run_chunk(&mut wb, len, &mut cursor, u64::MAX)
            .unwrap()
            == ChunkOutcome::Paused
        {}
        assert_eq!(b.report("w"), reference);
    }

    #[test]
    fn restore_rejects_truncated_and_mismatched_snapshots() {
        use burst_workloads::SpecBenchmark;
        let cfg = paused_cfg();
        let mut w = SpecBenchmark::Mcf.workload(3);
        let mut sys = System::new(&cfg);
        sys.warm(&mut w);
        sys.try_run(&mut w, RunLength::MemCycles(4_000)).unwrap();
        let snap = sys.checkpoint().unwrap();

        // Truncation anywhere must surface as an error, never a panic.
        for cut in [0, 1, snap.bytes.len() / 2, snap.bytes.len() - 1] {
            let mut fresh = System::new(&cfg);
            assert!(
                fresh.restore(&snap.bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }

        // A snapshot from a different machine shape must be rejected.
        let mut small = cfg;
        small.dram.geometry.channels = 1;
        let mut fresh = System::new(&small);
        assert!(fresh.restore(&snap.bytes).is_err());
    }

    #[test]
    fn state_hash_tracks_observable_state_only() {
        use burst_workloads::SpecBenchmark;
        let cfg = paused_cfg();
        let mut w1 = SpecBenchmark::Swim.workload(5);
        let mut s1 = System::new(&cfg);
        s1.warm(&mut w1);
        s1.try_run(&mut w1, RunLength::MemCycles(2_000)).unwrap();

        let mut w2 = SpecBenchmark::Swim.workload(5);
        let mut s2 = System::new(&cfg.with_skip(false));
        s2.warm(&mut w2);
        s2.try_run(&mut w2, RunLength::MemCycles(2_000)).unwrap();

        // Skipped cycles are diagnostic only: both engines hash alike.
        assert_eq!(s1.state_hash().unwrap(), s2.state_hash().unwrap());
        assert_eq!(
            s1.component_hashes().unwrap(),
            s2.component_hashes().unwrap()
        );

        let h = s1.state_hash().unwrap();
        s1.try_run(&mut w1, RunLength::MemCycles(500)).unwrap();
        assert_ne!(
            s1.state_hash().unwrap(),
            h,
            "advancing must change the hash"
        );
    }

    #[test]
    fn line_slab_rebases_after_draining() {
        let mut slab = LineSlab::default();
        slab.insert(id(10), 1);
        assert_eq!(slab.remove(id(10)), Some(1));
        // A long run of writes advanced the id counter far past the old
        // window; the next read must not pay for the gap.
        slab.insert(id(1_000_000), 2);
        assert_eq!(slab.window_len(), 1, "base snaps to the new id");
        assert_eq!(slab.remove(id(1_000_000)), Some(2));
        assert_eq!(
            slab.remove(id(999_999)),
            None,
            "ids below a snapped base are absent"
        );
    }
}
