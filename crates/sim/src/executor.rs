//! Dependency-free parallel executor for independent simulations.
//!
//! Every experiment driver in this crate runs a grid of `(benchmark,
//! mechanism)` cells, and each cell is an independent deterministic
//! simulation: the workload generator is seeded per cell and no state is
//! shared. [`map_parallel`] exploits that with a plain work-stealing-free
//! thread pool built on [`std::thread::scope`] — workers claim input
//! indices from a shared atomic counter, compute results locally, and the
//! collected `(index, result)` pairs are sorted by index before being
//! returned. Output order therefore never depends on thread timing: a
//! parallel run is element-for-element identical to a serial one.
//!
//! Schedulers are built *inside* the closure on the worker thread — the
//! `Box<dyn AccessScheduler>` trait objects are not `Send`, but the plain
//! config values ([`crate::SystemConfig`], `SpecBenchmark`, `Mechanism`)
//! all are, so nothing non-`Send` ever crosses a thread boundary.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used when the caller passes `jobs == 0`:
/// [`std::thread::available_parallelism`], or 1 if it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a `--jobs`-style request against the amount of work: `0` means
/// auto-detect, and there is never a point in more workers than items.
/// Shared with the supervised executor (`crate::supervisor`).
pub(crate) fn effective_jobs(jobs: usize, items: usize) -> usize {
    let requested = if jobs == 0 { default_jobs() } else { jobs };
    requested.min(items).max(1)
}

/// Applies `f` to every element of `items` on up to `jobs` worker threads
/// (`0` = auto-detect) and returns the results in input order.
///
/// `f` receives `(index, &item)` and must be safe to call concurrently;
/// simulation closures are, because each call builds its own [`crate::System`].
/// With `jobs <= 1` (or a single item) everything runs inline on the caller's
/// thread with no pool at all, which keeps single-threaded determinism checks
/// trivially comparable.
///
/// A panic in `f` propagates to the caller once all workers have stopped
/// (the behaviour of [`std::thread::scope`]).
pub fn map_parallel<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    local.push((idx, f(idx, item)));
                }
                // One lock per worker lifetime, not per item. A sibling
                // worker panicking while holding the lock poisons it, but
                // the protected Vec is never left half-written (extend is
                // the only mutation), so recover the guard rather than
                // compounding one cell's panic into a pool-wide abort.
                collected
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    if pairs.len() != items.len() {
        // Only reachable if a caller swallows a worker panic (e.g. via
        // catch_unwind around the scope); name the lost work instead of
        // returning a silently misaligned result vector.
        let have: std::collections::HashSet<usize> = pairs.iter().map(|&(i, _)| i).collect();
        let missing: Vec<usize> = (0..items.len()).filter(|i| !have.contains(i)).collect();
        // A lost result means a caller swallowed a worker panic; aborting
        // loudly beats returning a silently misaligned vector.
        // audit: allow(panic): deliberate invariant check, documented above
        panic!(
            "map_parallel lost {} of {} results (missing input indices {missing:?})",
            missing.len(),
            items.len()
        );
    }
    pairs.sort_unstable_by_key(|&(idx, _)| idx);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = map_parallel(&items, 4, |_, &x| {
            // Stagger completion so late indices often finish first.
            if x % 7 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = map_parallel(&items, 1, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
        let parallel = map_parallel(&items, 8, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c"];
        let tagged = map_parallel(&items, 0, |i, s| format!("{i}:{s}"));
        assert_eq!(tagged, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_parallel(&empty, 0, |_, &x| x).is_empty());
        assert_eq!(map_parallel(&[42u8], 16, |_, &x| x), vec![42]);
    }

    #[test]
    fn zero_jobs_autodetects() {
        assert!(default_jobs() >= 1);
        let items: Vec<u32> = (0..8).collect();
        assert_eq!(
            map_parallel(&items, 0, |_, &x| x + 1),
            (1..9).collect::<Vec<_>>()
        );
    }
}
