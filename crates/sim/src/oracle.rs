//! Lockstep reference oracle: runs the configured engine (the full
//! discrete-event engine by default) and a naive per-cycle engine side by
//! side on the same configuration and workload, comparing whole-system
//! state hashes at every epoch boundary.
//!
//! Clock jumping — quiescent event-horizon skipping and the event
//! engine's busy-period jumps alike — is *supposed* to be bit-identical
//! to per-cycle stepping; the determinism tests assert that for final
//! reports. The oracle strengthens the guarantee to *every intermediate
//! state*: a skip bug that cancels out by the end of a run — or one that
//! only corrupts a rarely-reported statistic — cannot hide from a
//! per-epoch hash comparison.
//!
//! On a mismatch the oracle does not just fail: it restores both engines
//! to the last agreed epoch boundary (using the checkpoint machinery) and
//! bisects, probing intermediate cycles until it has pinned the **first
//! divergent cycle** exactly. The resulting [`DivergenceError`] names the
//! cycle and both engines' per-component hashes, so the failing subsystem
//! is identified before anyone opens a debugger.
//!
//! The oracle's own self-test injects an artificial perturbation
//! ([`Perturbation`]) into the test engine at a chosen cycle and asserts
//! the bisection reports exactly that cycle.

use burst_snap::SnapError;
use burst_workloads::{CountingSource, OpSource};

use crate::system::{
    ChunkOutcome, ComponentHashes, RunCursor, RunError, RunLength, SimReport, System, SystemConfig,
};

/// Oracle tuning.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Memory cycles between state-hash comparisons. Smaller epochs
    /// tighten the initial bracket the bisection starts from; the default
    /// balances comparison overhead against bisection work.
    pub epoch: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { epoch: 4096 }
    }
}

/// An artificial state perturbation the oracle applies to the test
/// engine — the self-test that proves the bisection finds the exact
/// injected cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perturbation {
    /// Memory cycle at which to apply the perturbation.
    pub at: u64,
    /// What to perturb.
    pub kind: PerturbKind,
}

/// The state mutation a [`Perturbation`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbKind {
    /// Skew the CPU's stall-cycle accounting by this many cycles —
    /// emulating the bookkeeping bug class cycle skipping could
    /// introduce.
    StallAccounting(u64),
}

impl Perturbation {
    fn apply(&self, sys: &mut System) {
        match self.kind {
            PerturbKind::StallAccounting(cycles) => sys.perturb_stall_accounting(cycles),
        }
    }
}

/// The oracle's verdict on a divergence: where it first appeared and what
/// each engine's state looked like there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergenceError {
    /// First memory cycle at which the engines' state hashes differ.
    pub first_divergent_cycle: u64,
    /// Per-component hashes of the skip-enabled (test) engine there.
    pub test: ComponentHashes,
    /// Per-component hashes of the per-cycle (reference) engine there.
    pub reference: ComponentHashes,
}

impl DivergenceError {
    /// Names of the components whose hashes differ.
    pub fn divergent_components(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.test.cpu != self.reference.cpu {
            out.push("cpu");
        }
        if self.test.sched != self.reference.sched {
            out.push("sched");
        }
        if self.test.dram != self.reference.dram {
            out.push("dram");
        }
        if self.test.system != self.reference.system {
            out.push("system");
        }
        out
    }
}

impl core::fmt::Display for DivergenceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "engines diverge first at memory cycle {} in [{}]; \
             test engine: {}; reference engine: {}",
            self.first_divergent_cycle,
            self.divergent_components().join(", "),
            self.test,
            self.reference
        )
    }
}

impl std::error::Error for DivergenceError {}

/// Why an oracle run did not produce a clean report.
#[derive(Debug)]
pub enum OracleError {
    /// The engines disagree; the bisected first divergent cycle and both
    /// component-hash sets are attached.
    Divergence(DivergenceError),
    /// One of the engines latched a forward-progress failure.
    Run(RunError),
    /// The state could not be serialised for comparison.
    Snap(SnapError),
}

impl core::fmt::Display for OracleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OracleError::Divergence(d) => d.fmt(f),
            OracleError::Run(e) => write!(f, "oracle engine stalled: {e}"),
            OracleError::Snap(e) => write!(f, "oracle could not hash state: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<RunError> for OracleError {
    fn from(e: RunError) -> Self {
        OracleError::Run(e)
    }
}

impl From<SnapError> for OracleError {
    fn from(e: SnapError) -> Self {
        OracleError::Snap(e)
    }
}

/// One engine plus everything needed to re-run it from a snapshot.
struct Engine<W: OpSource> {
    sys: System,
    workload: CountingSource<W>,
    cursor: RunCursor,
}

impl<W: OpSource> Engine<W> {
    /// Advances exactly `n` memory cycles (or until the run length is
    /// reached), applying `perturb` at its exact cycle if it falls inside
    /// the stride. Returns the cycles actually advanced.
    fn advance(
        &mut self,
        len: RunLength,
        n: u64,
        perturb: Option<&Perturbation>,
    ) -> Result<u64, RunError> {
        let start = self.sys.mem_cycle();
        let target = start + n;
        if let Some(p) = perturb {
            if p.at > start && p.at <= target {
                // Stop exactly at the perturbation cycle. Budget
                // exhaustion pauses precisely there because skips are
                // capped at the remaining budget.
                let outcome = self.sys.try_run_chunk(
                    &mut self.workload,
                    len,
                    &mut self.cursor,
                    p.at - start,
                )?;
                if self.sys.mem_cycle() == p.at {
                    p.apply(&mut self.sys);
                }
                if outcome == ChunkOutcome::Done {
                    return Ok(self.sys.mem_cycle() - start);
                }
            }
        }
        let remaining = target - self.sys.mem_cycle();
        if remaining > 0 {
            self.sys
                .try_run_chunk(&mut self.workload, len, &mut self.cursor, remaining)?;
        }
        Ok(self.sys.mem_cycle() - start)
    }
}

/// Runs `cfg` under the lockstep oracle: the engine `cfg` selects (the
/// event engine by default) and a per-cycle no-skip reference engine
/// advance in [`OracleConfig::epoch`]-cycle strides, comparing state
/// hashes at every boundary, with `perturb` (a self-test fault) applied
/// to the test engine only.
///
/// On success returns the test engine's report — which the caller may
/// additionally compare against a plain [`crate::try_simulate`] run.
///
/// # Errors
///
/// [`OracleError::Divergence`] with the exact first divergent cycle and
/// both engines' component hashes when the engines disagree;
/// [`OracleError::Run`] when either engine stalls.
pub fn oracle_simulate<W, F>(
    cfg: &SystemConfig,
    make_workload: F,
    len: RunLength,
    oracle_cfg: &OracleConfig,
    perturb: Option<Perturbation>,
) -> Result<SimReport, OracleError>
where
    W: OpSource,
    F: Fn() -> W,
{
    let epoch = oracle_cfg.epoch.max(1);
    // The test engine is whatever `cfg` selects (Engine::Event unless the
    // caller overrode it); the reference is always plain per-cycle.
    let test_cfg = *cfg;
    let ref_cfg = cfg.with_engine(crate::system::Engine::CycleNoSkip);
    let build = |cfg: &SystemConfig| -> Engine<W> {
        let mut sys = System::new(cfg);
        let mut workload = CountingSource::new(make_workload());
        sys.warm(&mut workload);
        let cursor = RunCursor::start(&sys);
        Engine {
            sys,
            workload,
            cursor,
        }
    };
    let mut test = build(&test_cfg);
    let mut reference = build(&ref_cfg);
    if test.sys.state_hash()? != reference.sys.state_hash()? {
        // Construction or warm-up already disagrees — divergence at the
        // starting cycle, no bisection bracket to narrow.
        return Err(OracleError::Divergence(DivergenceError {
            first_divergent_cycle: test.sys.mem_cycle(),
            test: test.sys.component_hashes()?,
            reference: reference.sys.component_hashes()?,
        }));
    }
    loop {
        // Remember the last agreed state so a mismatch can be replayed.
        let agreed_test = test.sys.checkpoint()?;
        let agreed_ref = reference.sys.checkpoint()?;
        let agreed_test_ops = test.workload.consumed();
        let agreed_ref_ops = reference.workload.consumed();
        let agreed_test_cursor = test.cursor;
        let agreed_ref_cursor = reference.cursor;
        let start = test.sys.mem_cycle();

        let adv_t = test.advance(len, epoch, perturb.as_ref())?;
        let adv_r = reference.advance(len, epoch, None)?;
        let stride = adv_t.min(adv_r);
        let done = adv_t < epoch && adv_r < epoch && adv_t == adv_r;
        let agree = adv_t == adv_r && test.sys.state_hash()? == reference.sys.state_hash()?;
        if agree {
            if done || stride == 0 {
                return Ok(test.sys.report(test.workload.name().to_string()));
            }
            continue;
        }

        // Mismatch inside (start, start + stride']. Bisect by replaying
        // both engines from the agreed snapshot: `lo` cycles past the
        // boundary agree, `hi` cycles differ; the answer is `start + hi`.
        let hi0 = if adv_t == adv_r { stride } else { stride + 1 };
        let mut lo = 0u64;
        let mut hi = hi0;
        let probe = |k: u64| -> Result<(bool, ComponentHashes, ComponentHashes), OracleError> {
            let mut t = Engine {
                sys: System::new(&test_cfg),
                workload: CountingSource::new(make_workload()),
                cursor: agreed_test_cursor,
            };
            t.sys.restore(&agreed_test.bytes)?;
            t.workload.skip(agreed_test_ops);
            let mut r = Engine {
                sys: System::new(&ref_cfg),
                workload: CountingSource::new(make_workload()),
                cursor: agreed_ref_cursor,
            };
            r.sys.restore(&agreed_ref.bytes)?;
            r.workload.skip(agreed_ref_ops);
            let at = t.advance(len, k, perturb.as_ref())?;
            let ar = r.advance(len, k, None)?;
            let th = t.sys.component_hashes()?;
            let rh = r.sys.component_hashes()?;
            Ok((at != ar || th != rh, th, rh))
        };
        let mut verdict = None;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let (differs, th, rh) = probe(mid)?;
            if differs {
                hi = mid;
                verdict = Some((th, rh));
            } else {
                lo = mid;
            }
        }
        let (test_hashes, ref_hashes) = match verdict.filter(|_| hi < hi0) {
            Some(v) => v,
            None => {
                let (_, th, rh) = probe(hi)?;
                (th, rh)
            }
        };
        return Err(OracleError::Divergence(DivergenceError {
            first_divergent_cycle: start + hi,
            test: test_hashes,
            reference: ref_hashes,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_core::Mechanism;
    use burst_workloads::SpecBenchmark;

    fn cfg(m: Mechanism) -> SystemConfig {
        SystemConfig::baseline()
            .with_mechanism(m)
            .with_warm_mem_ops(1_000)
    }

    #[test]
    fn oracle_passes_cleanly_and_matches_plain_simulation() {
        let cfg = cfg(Mechanism::BurstTh(52));
        let len = RunLength::Instructions(20_000);
        let report = oracle_simulate(
            &cfg,
            || SpecBenchmark::Swim.workload(3),
            len,
            &OracleConfig { epoch: 512 },
            None,
        )
        .expect("engines must agree");
        let plain =
            crate::try_simulate(&cfg, SpecBenchmark::Swim.workload(3), len).expect("plain run");
        assert_eq!(report, plain);
    }

    #[test]
    fn oracle_bisects_to_the_exact_perturbed_cycle() {
        let cfg = cfg(Mechanism::BurstRp);
        let len = RunLength::Instructions(50_000);
        let at = 3_333;
        let err = oracle_simulate(
            &cfg,
            || SpecBenchmark::Mcf.workload(11),
            len,
            &OracleConfig { epoch: 1024 },
            Some(Perturbation {
                at,
                kind: PerturbKind::StallAccounting(7),
            }),
        )
        .expect_err("perturbation must be caught");
        match err {
            OracleError::Divergence(d) => {
                assert_eq!(
                    d.first_divergent_cycle, at,
                    "bisection must land on the injected cycle: {d}"
                );
                assert_eq!(
                    d.divergent_components(),
                    vec!["cpu"],
                    "only the CPU stats were skewed: {d}"
                );
            }
            other => panic!("expected divergence, got {other}"),
        }
    }
}
