//! Opt-in wall-clock phase profiling for [`crate::System::step`].
//!
//! This module is *report-only* instrumentation: it measures how host
//! wall time splits across the step's phases (CPU model, request
//! hand-off, controller+device tick, read delivery) so the perf harness
//! can publish a `phase_profile` section in `BENCH_perf.json`. Nothing
//! here ever feeds simulated timing — the stamps read the clock and
//! accumulate nanosecond counters, full stop — which is why this file
//! sits outside the burst-analyze determinism scope while
//! `system.rs` itself stays inside it.
//!
//! Profiling is off by default ([`crate::System`] holds
//! `Option<Box<PhaseProfile>>`, `None` unless enabled), so the hot path
//! pays one branch per phase boundary and takes no clock reads.

use std::time::Instant;

/// Accumulated wall-clock nanoseconds per step phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseProfile {
    /// Phase 1: CPU/cache model (`Cpu::run_until` or the per-cycle loop).
    pub cpu_ns: u64,
    /// Phase 2: request hand-off to the controller.
    pub handoff_ns: u64,
    /// Phase 3: scheduler tick + device timing + completion routing.
    pub dram_ns: u64,
    /// Phase 4: read-data delivery back to the CPU.
    pub deliver_ns: u64,
}

impl PhaseProfile {
    /// Total nanoseconds attributed across all phases.
    pub fn total_ns(&self) -> u64 {
        self.cpu_ns + self.handoff_ns + self.dram_ns + self.deliver_ns
    }
}

/// A phase-boundary timestamp. Disabled stamps (`begin(false)`) carry no
/// clock read and make every subsequent [`Stamp::lap`] free.
#[derive(Debug, Clone, Copy)]
pub struct Stamp(Option<Instant>);

impl Stamp {
    /// Opens the first phase; reads the clock only when `enabled`.
    #[inline]
    pub fn begin(enabled: bool) -> Stamp {
        Stamp(enabled.then(Instant::now))
    }

    /// Closes the current phase — charging its elapsed nanoseconds to the
    /// counter `sel` picks out of `profile` — and opens the next.
    #[inline]
    pub fn lap(
        self,
        profile: Option<&mut PhaseProfile>,
        sel: impl FnOnce(&mut PhaseProfile) -> &mut u64,
    ) -> Stamp {
        match (self.0, profile) {
            (Some(start), Some(p)) => {
                let now = Instant::now();
                *sel(p) += now.duration_since(start).as_nanos() as u64;
                Stamp(Some(now))
            }
            _ => Stamp(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stamps_accumulate_nothing() {
        let mut p = PhaseProfile::default();
        let t0 = Stamp::begin(false);
        let t1 = t0.lap(Some(&mut p), |p| &mut p.cpu_ns);
        t1.lap(Some(&mut p), |p| &mut p.dram_ns);
        assert_eq!(p.total_ns(), 0);
    }

    #[test]
    fn enabled_stamps_charge_each_phase_once() {
        let mut p = PhaseProfile::default();
        let t0 = Stamp::begin(true);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = t0.lap(Some(&mut p), |p| &mut p.cpu_ns);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t1.lap(Some(&mut p), |p| &mut p.handoff_ns);
        assert!(p.cpu_ns >= 1_000_000, "cpu_ns {}", p.cpu_ns);
        assert!(p.handoff_ns >= 1_000_000, "handoff_ns {}", p.handoff_ns);
        assert_eq!(p.dram_ns + p.deliver_ns, 0);
    }
}
