//! Append-only, fsynced sweep journal: crash-safe resume for long
//! evaluation runs.
//!
//! A journal records every *successfully completed* `(scope, benchmark,
//! mechanism)` cell of a sweep as one self-contained line holding the
//! cell's full [`SimReport`] in a lossless integer wire format. Each line
//! is flushed and fsynced before the supervisor moves on, so a run killed
//! at any instant loses at most the cell in flight. Restarting with
//! `--resume <journal>` replays the completed cells from the file and
//! simulates only the rest — and because every simulation is
//! deterministic and the wire format round-trips exactly, the resumed
//! sweep's CSV output is byte-identical to an uninterrupted run (enforced
//! by the kill-and-resume CI job).
//!
//! The file begins with a header binding it to a *config fingerprint* — a
//! hash over everything that changes cell results (instruction budget,
//! seed, benchmark list, skip toggle, binary id). Resuming against a
//! journal written under a different fingerprint is refused: stale results
//! must never leak into a differently-configured sweep.
//!
//! *Retryable* failed cells are deliberately not journalled: a resume
//! retries them from scratch, which is exactly what an operator wants
//! after fixing the cause of the failure. Cells that exhaust their retry
//! budget are *quarantined*: a `quarantine` record is appended so resumes
//! skip them (surfacing the recorded failure) instead of burning the
//! whole retry budget again on every restart.
//!
//! Format (line-oriented UTF-8, no external dependencies):
//!
//! ```text
//! burst-journal v1 fp=<16-hex-digit fingerprint>
//! ok <key> <attempts> <report-wire> [checkpoint-path]
//! quarantine <key> <failure-kind> <attempts> <payload...>
//! ```
//!
//! The optional trailing token on `ok` records the mid-run checkpoint
//! file the cell was using (see [`crate::checkpoint`]), so a resumed
//! sweep can garbage-collect checkpoints that completed cells no longer
//! need. A trailing partial line (the crash point) is ignored on resume;
//! a *duplicate* record for the same cell is structural corruption (the
//! writer never re-records a completed or quarantined cell) and is
//! rejected with [`JournalError::DuplicateCell`]. Every filesystem touch
//! goes through the injectable [`crate::simio::SimIo`] layer so the chaos
//! matrix can crash any append, fsync or resume read deterministically;
//! after a torn append the writer self-heals by prefixing the next record
//! with a newline, sacrificing the torn line instead of corrupting the
//! record that follows it.

use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use burst_core::{CtrlStats, LatencyHistogram, Mechanism, OccupancyHistogram};
use burst_dram::BusStats;

use crate::simio::{real_io, IoSite, SimIo};
use crate::supervisor::FailureKind;
use crate::{RobustnessReport, SimReport};

/// Hashes a canonical configuration description into a journal
/// fingerprint. Built by chaining [`burst_core::splitmix64`] over the
/// bytes, so it is stable across hosts and builds.
pub fn fingerprint(desc: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in desc.as_bytes() {
        h = burst_core::splitmix64(h ^ u64::from(b));
    }
    h
}

/// Why a journal could not be opened for resume.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The journal was written by a sweep with a different configuration.
    FingerprintMismatch {
        /// Fingerprint the resuming sweep expects.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
    /// The file exists but does not start with a journal header.
    NotAJournal,
    /// Two records claim the same cell — the writer never does that, so
    /// the file was hand-edited or concatenated; refusing is safer than
    /// silently picking one of two possibly-different results.
    DuplicateCell {
        /// The cell key that appears more than once.
        key: String,
    },
}

impl core::fmt::Display for JournalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal belongs to a different sweep configuration \
                 (expected fingerprint {expected:016x}, found {found:016x}); \
                 rerun without --resume or delete the journal"
            ),
            JournalError::NotAJournal => write!(f, "file is not a burst sweep journal"),
            JournalError::DuplicateCell { key } => write!(
                f,
                "journal holds more than one record for cell {key} — the \
                 file was edited or spliced; delete it and rerun"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One journalled cell: how many attempts it took and its full report.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Attempts the supervisor consumed (1 = first try).
    pub attempts: u32,
    /// The cell's complete, losslessly round-tripped report.
    pub report: SimReport,
    /// Mid-run checkpoint file the cell was writing, if checkpointing was
    /// on — stale once the cell is journalled, so resumes delete it.
    pub checkpoint: Option<PathBuf>,
}

/// A cell the supervisor gave up on: recorded so resumes skip it instead
/// of re-burning its retry budget, and surface the original failure.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Failure taxonomy bucket of the final attempt.
    pub kind: FailureKind,
    /// Attempts consumed before quarantine.
    pub attempts: u32,
    /// Human-readable payload (panic message, diagnostic summary).
    pub payload: String,
}

/// The append handle plus a dirty bit: after a failed (possibly torn)
/// append, the next record starts with a fresh newline so it cannot
/// concatenate onto the torn prefix and lose *both* records.
#[derive(Debug)]
struct Appender {
    file: File,
    dirty: bool,
}

/// An open sweep journal: completed cells loaded at resume time plus an
/// append handle that fsyncs every record.
#[derive(Debug)]
pub struct Journal {
    writer: Mutex<Appender>,
    path: PathBuf,
    fingerprint: u64,
    completed: HashMap<String, JournalEntry>,
    quarantined: HashMap<String, QuarantineEntry>,
    /// Lines skipped while loading (at most the crash-truncated tail plus
    /// anything hand-mangled); surfaced so harnesses can warn.
    ignored_lines: usize,
    io: Arc<dyn SimIo>,
}

impl Journal {
    /// Creates (truncating) a fresh journal bound to `fingerprint`.
    ///
    /// # Errors
    ///
    /// Any filesystem error creating or syncing the file.
    pub fn create(path: impl Into<PathBuf>, fingerprint: u64) -> Result<Journal, JournalError> {
        Self::create_with_io(path, fingerprint, real_io())
    }

    /// [`Journal::create`] through an injectable filesystem — the chaos
    /// seam. Production callers use [`Journal::create`].
    ///
    /// # Errors
    ///
    /// Any filesystem error creating or syncing the file.
    pub fn create_with_io(
        path: impl Into<PathBuf>,
        fingerprint: u64,
        io: Arc<dyn SimIo>,
    ) -> Result<Journal, JournalError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                // audit: allow(io-bypass): directory creation is not a labeled crash point — a failure surfaces via the write_new that follows
                std::fs::create_dir_all(parent)?;
            }
        }
        let header = format!("burst-journal v1 fp={fingerprint:016x}\n");
        let file = io.write_new(IoSite::JournalAppend, &path, header.as_bytes())?;
        io.sync(IoSite::JournalSync, &file)?;
        Ok(Journal {
            writer: Mutex::new(Appender { file, dirty: false }),
            path,
            fingerprint,
            completed: HashMap::new(),
            quarantined: HashMap::new(),
            ignored_lines: 0,
            io,
        })
    }

    /// Opens an existing journal for resume: loads every completed cell,
    /// verifies the fingerprint, and positions the handle for appending.
    /// A missing file is not an error — it becomes a fresh journal, so
    /// `--resume` is safe to use on the very first run of a pipeline.
    ///
    /// # Errors
    ///
    /// [`JournalError::FingerprintMismatch`] when the journal belongs to a
    /// differently-configured sweep, [`JournalError::NotAJournal`] when
    /// the header is absent, [`JournalError::DuplicateCell`] when two
    /// records claim one cell, or any I/O failure.
    pub fn resume(path: impl Into<PathBuf>, fingerprint: u64) -> Result<Journal, JournalError> {
        Self::resume_with_io(path, fingerprint, real_io())
    }

    /// [`Journal::resume`] through an injectable filesystem — the chaos
    /// seam. Production callers use [`Journal::resume`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Journal::resume`].
    pub fn resume_with_io(
        path: impl Into<PathBuf>,
        fingerprint: u64,
        io: Arc<dyn SimIo>,
    ) -> Result<Journal, JournalError> {
        let path = path.into();
        if !path.exists() {
            return Self::create_with_io(path, fingerprint, io);
        }
        let bytes = io.read(IoSite::JournalRead, &path)?;
        let text = String::from_utf8(bytes).map_err(|_| {
            JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "journal is not valid UTF-8",
            ))
        })?;
        let mut lines = text.split_inclusive('\n');
        let header = lines.next().unwrap_or("");
        if !header.ends_with('\n') {
            // The header itself is the crash-truncated tail: the create
            // never completed, so there is nothing to resume.
            return Err(JournalError::NotAJournal);
        }
        let found = header
            .trim_end()
            .strip_prefix("burst-journal v1 fp=")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or(JournalError::NotAJournal)?;
        if found != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                expected: fingerprint,
                found,
            });
        }
        let mut completed: HashMap<String, JournalEntry> = HashMap::new();
        let mut quarantined: HashMap<String, QuarantineEntry> = HashMap::new();
        let mut ignored_lines = 0;
        for line in lines {
            // A line without its newline is the crash-truncated tail; it
            // was never fsynced as a whole record, so drop it.
            if !line.ends_with('\n') {
                ignored_lines += 1;
                continue;
            }
            let line = line.trim_end_matches('\n');
            if line.is_empty() {
                // Deliberate re-sync padding after a torn append — see
                // the Appender dirty bit. Not corruption, not counted.
                continue;
            }
            if let Some((key, entry)) = parse_quarantine(line) {
                if completed.contains_key(&key) || quarantined.contains_key(&key) {
                    return Err(JournalError::DuplicateCell { key });
                }
                quarantined.insert(key, entry);
                continue;
            }
            match parse_record(line) {
                Some((key, entry)) => {
                    if completed.contains_key(&key) || quarantined.contains_key(&key) {
                        return Err(JournalError::DuplicateCell { key });
                    }
                    completed.insert(key, entry);
                }
                None => ignored_lines += 1,
            }
        }
        let file = io.open_append(IoSite::JournalAppend, &path)?;
        Ok(Journal {
            writer: Mutex::new(Appender { file, dirty: false }),
            path,
            fingerprint,
            completed,
            quarantined,
            ignored_lines,
            io,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fingerprint this journal is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of completed cells loaded at resume time.
    pub fn completed_cells(&self) -> usize {
        self.completed.len()
    }

    /// Lines skipped while loading (crash-truncated tail, corruption).
    pub fn ignored_lines(&self) -> usize {
        self.ignored_lines
    }

    /// The journalled entry for `key`, if that cell already completed.
    pub fn lookup(&self, key: &str) -> Option<&JournalEntry> {
        self.completed.get(key)
    }

    /// The quarantine record for `key`, if that cell exhausted its
    /// retries in an earlier run.
    pub fn lookup_quarantine(&self, key: &str) -> Option<&QuarantineEntry> {
        self.quarantined.get(key)
    }

    /// Number of quarantined cells loaded at resume time.
    pub fn quarantined_cells(&self) -> usize {
        self.quarantined.len()
    }

    /// Appends one completed cell and fsyncs before returning, so a crash
    /// immediately afterwards cannot lose the record. `key` must contain
    /// no whitespace (sweep keys are `scope/benchmark/mechanism`).
    ///
    /// # Errors
    ///
    /// Any filesystem error writing or syncing; also a key or report that
    /// cannot be represented in the line format (whitespace in names).
    pub fn record(&self, key: &str, attempts: u32, report: &SimReport) -> Result<(), JournalError> {
        self.record_with_checkpoint(key, attempts, report, None)
    }

    /// [`Journal::record`] with the cell's checkpoint-file path attached,
    /// so resumed sweeps can garbage-collect it once the cell is known
    /// complete. The path must be whitespace-free (the journal is
    /// line-and-space delimited).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Journal::record`], plus a checkpoint path
    /// containing whitespace.
    pub fn record_with_checkpoint(
        &self,
        key: &str,
        attempts: u32,
        report: &SimReport,
        checkpoint: Option<&Path>,
    ) -> Result<(), JournalError> {
        if key.chars().any(char::is_whitespace) || key.is_empty() {
            return Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("journal keys must be non-empty and whitespace-free: {key:?}"),
            )));
        }
        let ckpt = match checkpoint {
            Some(p) => {
                let s = p.to_str().unwrap_or("");
                if s.is_empty() || s.chars().any(char::is_whitespace) {
                    return Err(JournalError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("checkpoint paths must be whitespace-free UTF-8: {p:?}"),
                    )));
                }
                format!(" {s}")
            }
            None => String::new(),
        };
        let wire = report_to_wire(report)?;
        self.append_line(format!("ok {key} {attempts} {wire}{ckpt}\n"))
    }

    /// Appends a quarantine record for a cell that exhausted its retry
    /// budget: resumes will skip it and surface `kind`/`payload` instead
    /// of burning the retry budget again. Newlines in `payload` are
    /// flattened to spaces (the journal is line-delimited).
    ///
    /// # Errors
    ///
    /// Any filesystem error writing or syncing, or a key that cannot be
    /// represented in the line format.
    pub fn record_quarantine(
        &self,
        key: &str,
        kind: FailureKind,
        attempts: u32,
        payload: &str,
    ) -> Result<(), JournalError> {
        if key.chars().any(char::is_whitespace) || key.is_empty() {
            return Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("journal keys must be non-empty and whitespace-free: {key:?}"),
            )));
        }
        let payload: String = payload
            .chars()
            .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
            .collect();
        self.append_line(format!(
            "quarantine {key} {} {attempts} {payload}\n",
            kind.name()
        ))
    }

    /// Appends one whole line and fsyncs. After a failed append the
    /// writer goes dirty: the stream may end in a torn prefix with no
    /// newline, so the next record is prefixed with one — a later resume
    /// then drops the torn fragment as an (ignored) empty or garbage line
    /// instead of fusing it with the healthy record that follows.
    fn append_line(&self, line: String) -> Result<(), JournalError> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let framed = if w.dirty { format!("\n{line}") } else { line };
        if let Err(e) = self
            .io
            .append(IoSite::JournalAppend, &mut w.file, framed.as_bytes())
        {
            w.dirty = true;
            return Err(e.into());
        }
        w.dirty = false;
        self.io.sync(IoSite::JournalSync, &w.file)?;
        Ok(())
    }
}

/// Parses one `quarantine <key> <kind> <attempts> <payload...>` record.
fn parse_quarantine(line: &str) -> Option<(String, QuarantineEntry)> {
    let mut parts = line.splitn(5, ' ');
    if parts.next()? != "quarantine" {
        return None;
    }
    let key = parts.next()?.to_string();
    let kind = FailureKind::from_name(parts.next()?)?;
    let attempts: u32 = parts.next()?.parse().ok()?;
    let payload = parts.next().unwrap_or("").to_string();
    Some((
        key,
        QuarantineEntry {
            kind,
            attempts,
            payload,
        },
    ))
}

/// Parses one `ok <key> <attempts> <wire> [checkpoint-path]` record.
fn parse_record(line: &str) -> Option<(String, JournalEntry)> {
    let mut parts = line.splitn(5, ' ');
    if parts.next()? != "ok" {
        return None;
    }
    let key = parts.next()?.to_string();
    let attempts: u32 = parts.next()?.parse().ok()?;
    let report = report_from_wire(parts.next()?)?;
    let checkpoint = parts.next().map(PathBuf::from);
    Some((
        key,
        JournalEntry {
            attempts,
            report,
            checkpoint,
        },
    ))
}

// --- SimReport wire format -------------------------------------------------
//
// Fields are '|'-separated; composite fields use ';' between sub-fields and
// ',' between list elements. Every quantity is an integer (or a name), so
// the round trip is exact — which is what makes resumed CSVs byte-identical.

fn join(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn split(field: &str) -> Option<Vec<u64>> {
    if field.is_empty() {
        return Some(Vec::new());
    }
    field.split(',').map(|v| v.parse().ok()).collect()
}

fn report_to_wire(r: &SimReport) -> Result<String, JournalError> {
    for name in [r.mechanism.name().as_str(), r.workload.as_str()] {
        if name.contains('|') || name.contains('\n') || name.is_empty() {
            return Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("name not representable in journal wire format: {name:?}"),
            )));
        }
    }
    let c = &r.ctrl;
    let ctrl_scalars = join(&[
        c.reads_done,
        c.writes_done,
        c.forwards,
        c.read_latency_sum,
        c.write_latency_sum,
        c.row_hits,
        c.row_empties,
        c.row_conflicts,
        c.cycles,
        c.write_saturated_cycles,
        c.preemptions,
        c.piggybacks,
        c.faults_injected,
        c.retries,
        c.escalations,
        c.watchdog_trips,
        c.max_access_age,
    ]);
    let occ = |h: &OccupancyHistogram| format!("{};{}", h.samples(), join(h.counts()));
    let lat = |h: &LatencyHistogram| format!("{};{};{}", h.count(), h.max(), join(h.buckets()));
    let b = &r.bus;
    let bus = join(&[
        b.cmd_cycles,
        b.data_cycles,
        b.reads,
        b.writes,
        b.activates,
        b.precharges,
        b.auto_precharges,
        b.refreshes,
    ]);
    let p = &r.cpu;
    let cpu = join(&[
        p.retired,
        p.loads,
        p.stores,
        p.mem_reads,
        p.mem_writes,
        p.stall_cycles,
    ]);
    let rb = &r.robustness;
    let rob = join(&[
        rb.violations,
        rb.faults_injected,
        rb.retries,
        rb.escalations,
        rb.watchdog_trips,
        rb.max_access_age,
    ]);
    Ok(format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        r.mechanism.name(),
        r.workload,
        r.cpu_cycles,
        r.mem_cycles,
        r.instructions,
        ctrl_scalars,
        occ(&c.outstanding_reads),
        occ(&c.outstanding_writes),
        lat(&c.read_latencies),
        lat(&c.write_latencies),
        bus,
        cpu,
        rob,
        r.channels(),
    ))
}

fn parse_occ(field: &str) -> Option<OccupancyHistogram> {
    let (samples, counts) = field.split_once(';')?;
    Some(OccupancyHistogram::from_raw(
        split(counts)?,
        samples.parse().ok()?,
    ))
}

fn parse_lat(field: &str) -> Option<LatencyHistogram> {
    let mut parts = field.splitn(3, ';');
    let count = parts.next()?.parse().ok()?;
    let max = parts.next()?.parse().ok()?;
    let buckets: [u64; 32] = split(parts.next()?)?.try_into().ok()?;
    Some(LatencyHistogram::from_raw(buckets, count, max))
}

fn report_from_wire(wire: &str) -> Option<SimReport> {
    // Fixed-arity destructuring throughout: a malformed journal line (a
    // crashed writer, a truncated flush) must come back as `None`, never
    // as an out-of-range panic inside the supervisor.
    let fields: [&str; 14] = wire.split('|').collect::<Vec<&str>>().try_into().ok()?;
    let [mech_f, workload_f, cpu_cycles_f, mem_cycles_f, instructions_f, ctrl_f, occ_reads_f, occ_writes_f, lat_reads_f, lat_writes_f, bus_f, cpu_f, rb_f, channels_f] =
        fields;
    let mechanism = Mechanism::from_name(mech_f)?;
    let workload = workload_f.to_string();
    let cpu_cycles: u64 = cpu_cycles_f.parse().ok()?;
    let mem_cycles: u64 = mem_cycles_f.parse().ok()?;
    let instructions: u64 = instructions_f.parse().ok()?;
    let [reads_done, writes_done, forwards, read_latency_sum, write_latency_sum, row_hits, row_empties, row_conflicts, cycles, write_saturated_cycles, preemptions, piggybacks, faults_injected, retries, escalations, watchdog_trips, max_access_age]: [u64; 17] = split(ctrl_f)?.try_into().ok()?;
    let ctrl = CtrlStats {
        reads_done,
        writes_done,
        forwards,
        read_latency_sum,
        write_latency_sum,
        row_hits,
        row_empties,
        row_conflicts,
        cycles,
        write_saturated_cycles,
        preemptions,
        piggybacks,
        faults_injected,
        retries,
        escalations,
        watchdog_trips,
        max_access_age,
        outstanding_reads: parse_occ(occ_reads_f)?,
        outstanding_writes: parse_occ(occ_writes_f)?,
        read_latencies: parse_lat(lat_reads_f)?,
        write_latencies: parse_lat(lat_writes_f)?,
    };
    let [cmd_cycles, data_cycles, reads, writes, activates, precharges, auto_precharges, refreshes]: [u64; 8] = split(bus_f)?.try_into().ok()?;
    let bus = BusStats {
        cmd_cycles,
        data_cycles,
        reads,
        writes,
        activates,
        precharges,
        auto_precharges,
        refreshes,
    };
    let [retired, loads, stores, mem_reads, mem_writes, stall_cycles]: [u64; 6] =
        split(cpu_f)?.try_into().ok()?;
    let cpu = burst_cpu::CpuStats {
        retired,
        loads,
        stores,
        mem_reads,
        mem_writes,
        stall_cycles,
    };
    let [violations, rb_faults_injected, rb_retries, rb_escalations, rb_watchdog_trips, rb_max_access_age]: [u64; 6] = split(rb_f)?.try_into().ok()?;
    let robustness = RobustnessReport {
        violations,
        faults_injected: rb_faults_injected,
        retries: rb_retries,
        escalations: rb_escalations,
        watchdog_trips: rb_watchdog_trips,
        max_access_age: rb_max_access_age,
    };
    let channels: u64 = channels_f.parse().ok()?;
    Some(SimReport::from_parts(
        mechanism,
        workload,
        cpu_cycles,
        mem_cycles,
        instructions,
        ctrl,
        bus,
        cpu,
        robustness,
        channels,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{try_simulate, RunLength, SystemConfig};
    use burst_workloads::SpecBenchmark;
    use std::fs::OpenOptions;

    fn sample_report() -> SimReport {
        let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52));
        try_simulate(
            &cfg,
            SpecBenchmark::Swim.workload(11),
            RunLength::Instructions(3_000),
        )
        .expect("small run completes")
    }

    #[test]
    fn wire_round_trip_is_lossless() {
        let report = sample_report();
        let wire = report_to_wire(&report).expect("serialisable");
        let back = report_from_wire(&wire).expect("parseable");
        assert_eq!(report, back, "journal wire format must be exact");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = fingerprint("all/ins=120000/seed=42/skip=true");
        assert_eq!(a, fingerprint("all/ins=120000/seed=42/skip=true"));
        assert_ne!(a, fingerprint("all/ins=120000/seed=43/skip=true"));
    }

    #[test]
    fn create_record_resume_round_trip() {
        let dir = std::env::temp_dir().join("burst-journal-test-rrt");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint("test-config");
        let report = sample_report();
        {
            let j = Journal::create(&path, fp).expect("create");
            j.record("sweep/swim/Burst_TH52", 2, &report)
                .expect("record");
        }
        let j = Journal::resume(&path, fp).expect("resume");
        assert_eq!(j.completed_cells(), 1);
        assert_eq!(j.ignored_lines(), 0);
        let entry = j.lookup("sweep/swim/Burst_TH52").expect("present");
        assert_eq!(entry.attempts, 2);
        assert_eq!(entry.report, report);
        assert!(j.lookup("sweep/swim/BkInOrder").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_paths_round_trip_and_stay_optional() {
        let dir = std::env::temp_dir().join("burst-journal-test-ckpt");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint("ckpt");
        let report = sample_report();
        {
            let j = Journal::create(&path, fp).expect("create");
            j.record_with_checkpoint(
                "sweep/swim/Burst_TH52",
                1,
                &report,
                Some(Path::new("/tmp/ckpts/sweep-swim-Burst_TH52.ckpt")),
            )
            .expect("record with checkpoint");
            j.record("sweep/swim/BkInOrder", 1, &report)
                .expect("record without checkpoint");
            assert!(
                j.record_with_checkpoint(
                    "sweep/swim/Burst_RP",
                    1,
                    &report,
                    Some(Path::new("/tmp/has space.ckpt")),
                )
                .is_err(),
                "whitespace paths cannot be represented"
            );
        }
        let j = Journal::resume(&path, fp).expect("resume");
        assert_eq!(j.completed_cells(), 2);
        assert_eq!(
            j.lookup("sweep/swim/Burst_TH52").unwrap().checkpoint,
            Some(PathBuf::from("/tmp/ckpts/sweep-swim-Burst_TH52.ckpt"))
        );
        assert_eq!(j.lookup("sweep/swim/BkInOrder").unwrap().checkpoint, None);
        let entry = j.lookup("sweep/swim/Burst_TH52").unwrap();
        assert_eq!(entry.report, report, "report survives the extra token");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_fingerprint_mismatch() {
        let dir = std::env::temp_dir().join("burst-journal-test-fpm");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        Journal::create(&path, 1).expect("create");
        let err = Journal::resume(&path, 2).expect_err("must refuse");
        assert!(
            matches!(err, JournalError::FingerprintMismatch { .. }),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_drops_truncated_tail() {
        let dir = std::env::temp_dir().join("burst-journal-test-tail");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint("tail");
        let report = sample_report();
        {
            let j = Journal::create(&path, fp).expect("create");
            j.record("sweep/swim/Burst_TH52", 1, &report)
                .expect("record");
        }
        // Simulate a crash mid-append: a record missing its newline.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            write!(f, "ok sweep/swim/BkInOrder 1 trunca").expect("write");
        }
        let j = Journal::resume(&path, fp).expect("resume");
        assert_eq!(j.completed_cells(), 1, "whole records only");
        assert_eq!(j.ignored_lines(), 1, "truncated tail is counted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_of_missing_file_starts_fresh() {
        let dir = std::env::temp_dir().join("burst-journal-test-fresh");
        let path = dir.join("does-not-exist.journal");
        let _ = std::fs::remove_file(&path);
        let j = Journal::resume(&path, 7).expect("fresh journal");
        assert_eq!(j.completed_cells(), 0);
        assert!(path.exists(), "fresh journal file is created");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_duplicate_cell_records() {
        let dir = std::env::temp_dir().join("burst-journal-test-dup");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint("dup");
        let report = sample_report();
        {
            let j = Journal::create(&path, fp).expect("create");
            j.record("sweep/swim/Burst_TH52", 1, &report)
                .expect("record");
        }
        // Splice a second record for the same cell, as a hand edit or a
        // concatenation of two journals would.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open");
            let wire = report_to_wire(&report).expect("wire");
            writeln!(f, "ok sweep/swim/Burst_TH52 2 {wire}").expect("write");
        }
        let err = Journal::resume(&path, fp).expect_err("duplicates must be refused");
        assert!(
            matches!(err, JournalError::DuplicateCell { ref key } if key == "sweep/swim/Burst_TH52"),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantine_records_round_trip_and_conflict_with_ok() {
        let dir = std::env::temp_dir().join("burst-journal-test-quar");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint("quar");
        let report = sample_report();
        {
            let j = Journal::create(&path, fp).expect("create");
            j.record("sweep/swim/Burst_TH52", 1, &report)
                .expect("record");
            j.record_quarantine(
                "sweep/mcf/BkInOrder",
                FailureKind::Panic,
                3,
                "index out of\nbounds",
            )
            .expect("quarantine");
            assert!(j
                .record_quarantine("bad key", FailureKind::Panic, 1, "x")
                .is_err());
        }
        let j = Journal::resume(&path, fp).expect("resume");
        assert_eq!(j.completed_cells(), 1);
        assert_eq!(j.quarantined_cells(), 1);
        let q = j.lookup_quarantine("sweep/mcf/BkInOrder").expect("present");
        assert_eq!(q.kind, FailureKind::Panic);
        assert_eq!(q.attempts, 3);
        assert_eq!(q.payload, "index out of bounds", "newlines flattened");
        assert!(j.lookup("sweep/mcf/BkInOrder").is_none());

        // A cell cannot be both completed and quarantined.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open");
            writeln!(f, "quarantine sweep/swim/Burst_TH52 panic 2 boom").expect("write");
        }
        let err = Journal::resume(&path, fp).expect_err("conflict must be refused");
        assert!(matches!(err, JournalError::DuplicateCell { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_append_self_heals_via_newline_prefix() {
        use crate::simio::{ChaosIo, IoFaultKind, IoSite};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join("burst-journal-test-heal");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint("heal");
        let report = sample_report();
        {
            // Ops at JournalAppend: 0 = header, 1 = first record (torn),
            // 2 = second record (clean, newline-prefixed by the heal).
            let io = Arc::new(ChaosIo::scripted(
                IoSite::JournalAppend,
                IoFaultKind::Torn,
                1,
            ));
            let j = Journal::create_with_io(&path, fp, io).expect("create");
            assert!(
                j.record("sweep/swim/Burst_TH52", 1, &report).is_err(),
                "torn append must surface as an error"
            );
            j.record("sweep/swim/BkInOrder", 1, &report)
                .expect("append after the heal succeeds");
        }
        let j = Journal::resume(&path, fp).expect("resume");
        assert!(
            j.lookup("sweep/swim/BkInOrder").is_some(),
            "the record after the torn one must survive"
        );
        assert!(
            j.lookup("sweep/swim/Burst_TH52").is_none(),
            "the torn record itself is lost (and re-simulated on resume)"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_rejects_whitespace_keys() {
        let dir = std::env::temp_dir().join("burst-journal-test-keys");
        let path = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path, 3).expect("create");
        let report = sample_report();
        assert!(j.record("bad key", 1, &report).is_err());
        assert!(j.record("", 1, &report).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
