//! Injectable filesystem layer for the persistence stack — the substrate
//! of the deterministic chaos plane.
//!
//! Every filesystem operation the journal and checkpoint machinery
//! performs goes through a [`SimIo`] implementation and is labeled with
//! an [`IoSite`]. On the real path ([`RealIo`], the default everywhere)
//! each method is a direct passthrough to `std::fs` — one virtual call on
//! operations that are already syscalls, so the indirection costs nothing
//! measurable. Under test, [`ChaosIo`] turns *failure at the worst
//! moment* into a first-class, deterministically enumerable input: any
//! labeled operation can be made to fail, tear (persist a prefix, then
//! error — a crash mid-write) or silently truncate (persist a prefix and
//! report success — a lying disk), either scripted one site at a time
//! (the crash-point matrix) or driven by a seeded schedule (soak runs).
//!
//! The recovery contract the chaos matrix enforces on top of this layer:
//! after *any* single injected fault, a restarted run either resumes
//! byte-identically or fails with a structured
//! [`crate::JournalError`]/[`crate::CheckpointError`]/`FailureKind` —
//! never a panic, a hang, or a silently wrong CSV. See DESIGN.md §17 for
//! the per-site fault semantics table.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use burst_core::splitmix64;

/// A labeled crash point: one class of filesystem operation the
/// persistence stack performs. Each site is an independent axis of the
/// chaos matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoSite {
    /// Appending one record line (or the header) to the sweep journal.
    JournalAppend,
    /// Fsyncing the journal after an append.
    JournalSync,
    /// Reading the whole journal back for `--resume`.
    JournalRead,
    /// Writing a checkpoint's `.ckpt.tmp` scratch file.
    CkptTmpWrite,
    /// Fsyncing the scratch file before the atomic rename.
    CkptSync,
    /// Renaming the scratch file over the live checkpoint.
    CkptRename,
    /// Reading a checkpoint back at cell-resume time.
    CkptRead,
}

impl IoSite {
    /// Stable lower-case token used in flags, tables and matrix output.
    pub fn name(&self) -> &'static str {
        match self {
            IoSite::JournalAppend => "journal-append",
            IoSite::JournalSync => "journal-sync",
            IoSite::JournalRead => "journal-read",
            IoSite::CkptTmpWrite => "ckpt-tmp-write",
            IoSite::CkptSync => "ckpt-sync",
            IoSite::CkptRename => "ckpt-rename",
            IoSite::CkptRead => "ckpt-read",
        }
    }

    /// Parses the [`IoSite::name`] token back.
    pub fn from_name(name: &str) -> Option<IoSite> {
        IoSite::all().into_iter().find(|s| s.name() == name)
    }

    /// Every labeled site, in matrix order.
    pub fn all() -> [IoSite; 7] {
        [
            IoSite::JournalAppend,
            IoSite::JournalSync,
            IoSite::JournalRead,
            IoSite::CkptTmpWrite,
            IoSite::CkptSync,
            IoSite::CkptRename,
            IoSite::CkptRead,
        ]
    }

    /// A small stable tag mixing the site into hash keys.
    fn tag(&self) -> u64 {
        match self {
            IoSite::JournalAppend => 1,
            IoSite::JournalSync => 2,
            IoSite::JournalRead => 3,
            IoSite::CkptTmpWrite => 4,
            IoSite::CkptSync => 5,
            IoSite::CkptRename => 6,
            IoSite::CkptRead => 7,
        }
    }
}

impl core::fmt::Display for IoSite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected fault does at its site.
///
/// Not every kind is distinguishable at every site — a rename or fsync
/// has no data to tear, so `Torn`/`Truncate` degrade to `Fail` there;
/// the matrix still sweeps all three so the degradation itself is pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoFaultKind {
    /// The operation reports an error having done nothing durable.
    Fail,
    /// Writes: a prefix of the data is persisted, then the operation
    /// errors — a crash mid-write. Reads: a truncated copy comes back
    /// *with* an error.
    Torn,
    /// Writes: a prefix of the data is persisted and the operation
    /// reports *success* — a lying disk; only content validation
    /// (newline framing, hashes) can catch it. Reads: a truncated copy
    /// comes back as if it were the whole file.
    Truncate,
}

impl IoFaultKind {
    /// Stable lower-case token used in flags, tables and matrix output.
    pub fn name(&self) -> &'static str {
        match self {
            IoFaultKind::Fail => "fail",
            IoFaultKind::Torn => "torn",
            IoFaultKind::Truncate => "truncate",
        }
    }

    /// Parses the [`IoFaultKind::name`] token back.
    pub fn from_name(name: &str) -> Option<IoFaultKind> {
        IoFaultKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Every kind, in matrix order.
    pub fn all() -> [IoFaultKind; 3] {
        [IoFaultKind::Fail, IoFaultKind::Torn, IoFaultKind::Truncate]
    }
}

impl core::fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The injectable filesystem seam. Implementations must be shareable
/// across the sweep's worker threads.
pub trait SimIo: Send + Sync + core::fmt::Debug {
    /// Creates (truncating) `path` and writes `bytes`, returning the open
    /// handle so the caller can [`SimIo::sync`] it.
    fn write_new(&self, site: IoSite, path: &Path, bytes: &[u8]) -> io::Result<File>;

    /// Opens `path` for appending.
    fn open_append(&self, site: IoSite, path: &Path) -> io::Result<File>;

    /// Appends `bytes` to an open handle.
    fn append(&self, site: IoSite, file: &mut File, bytes: &[u8]) -> io::Result<()>;

    /// Forces an open handle's data to disk.
    fn sync(&self, site: IoSite, file: &File) -> io::Result<()>;

    /// Atomically renames `from` over `to`.
    fn rename(&self, site: IoSite, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads the whole of `path`.
    fn read(&self, site: IoSite, path: &Path) -> io::Result<Vec<u8>>;
}

/// The production implementation: every method is a direct passthrough.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl SimIo for RealIo {
    fn write_new(&self, _site: IoSite, path: &Path, bytes: &[u8]) -> io::Result<File> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        Ok(f)
    }

    fn open_append(&self, _site: IoSite, path: &Path) -> io::Result<File> {
        OpenOptions::new().append(true).open(path)
    }

    fn append(&self, _site: IoSite, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        file.write_all(bytes)
    }

    fn sync(&self, _site: IoSite, file: &File) -> io::Result<()> {
        file.sync_data()
    }

    fn rename(&self, _site: IoSite, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&self, _site: IoSite, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
}

/// The shared production instance, for threading through plans and
/// journals without allocating.
pub fn real_io() -> Arc<dyn SimIo> {
    Arc::new(RealIo)
}

/// How [`ChaosIo`] decides which operations fault.
#[derive(Debug, Clone)]
enum ChaosMode {
    /// Count operations per site; never fault. Used to size the matrix.
    Count,
    /// Fault exactly the `op`-th operation (0-based, per-site counter) at
    /// `site` with `kind`; everything else passes through.
    Scripted {
        site: IoSite,
        kind: IoFaultKind,
        op: u64,
    },
    /// Seeded schedule: operation `op` at `site` faults iff
    /// `splitmix64(seed ⊕ site ⊕ op) % 1000 < permille`, with the fault
    /// kind drawn from the same hash — a pure function of
    /// `(seed, site, op)`, so the schedule is identical on any host.
    Seeded {
        seed: u64,
        permille: u32,
        max_faults: u64,
    },
}

/// A deterministic chaos filesystem: wraps [`RealIo`] and injects labeled
/// faults per [`ChaosMode`]. Interior counters make each instance one
/// run's worth of schedule — build a fresh one per simulated crash.
#[derive(Debug)]
pub struct ChaosIo {
    real: RealIo,
    mode: ChaosMode,
    /// Per-site operation counters (indexed by [`IoSite::all`] order).
    counters: [AtomicU64; 7],
    /// Faults actually fired: `(site, op, kind)` in firing order.
    fired: Mutex<Vec<(IoSite, u64, IoFaultKind)>>,
    /// Total faults fired (cheap gate for `max_faults`).
    fired_count: AtomicU64,
}

impl ChaosIo {
    /// A counting instance: no faults, just per-site operation tallies.
    pub fn counting() -> ChaosIo {
        Self::with_mode(ChaosMode::Count)
    }

    /// A scripted instance faulting exactly one `(site, kind, op)` crash
    /// point — the matrix enumerator's workhorse.
    pub fn scripted(site: IoSite, kind: IoFaultKind, op: u64) -> ChaosIo {
        Self::with_mode(ChaosMode::Scripted { site, kind, op })
    }

    /// A seeded instance with the default hostility (80‰ per operation,
    /// at most 4 faults per run so every run can still converge).
    pub fn seeded(seed: u64) -> ChaosIo {
        Self::seeded_with(seed, 80, 4)
    }

    /// A seeded instance with explicit rate and fault budget.
    pub fn seeded_with(seed: u64, permille: u32, max_faults: u64) -> ChaosIo {
        Self::with_mode(ChaosMode::Seeded {
            seed,
            permille,
            max_faults,
        })
    }

    fn with_mode(mode: ChaosMode) -> ChaosIo {
        ChaosIo {
            real: RealIo,
            mode,
            counters: Default::default(),
            fired: Mutex::new(Vec::new()),
            fired_count: AtomicU64::new(0),
        }
    }

    /// Operations seen so far at `site`.
    pub fn ops_at(&self, site: IoSite) -> u64 {
        self.counters[site.tag() as usize - 1].load(Ordering::SeqCst)
    }

    /// Per-site operation counts, in [`IoSite::all`] order.
    pub fn op_counts(&self) -> Vec<(IoSite, u64)> {
        IoSite::all()
            .into_iter()
            .map(|s| (s, self.ops_at(s)))
            .collect()
    }

    /// Every fault fired so far, in firing order — the schedule two
    /// same-seeded runs must agree on exactly.
    pub fn fault_log(&self) -> Vec<(IoSite, u64, IoFaultKind)> {
        self.fired.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Claims the next operation number at `site` and decides whether it
    /// faults (and how).
    fn decide(&self, site: IoSite) -> (u64, Option<IoFaultKind>) {
        let op = self.counters[site.tag() as usize - 1].fetch_add(1, Ordering::SeqCst);
        let kind = match self.mode {
            ChaosMode::Count => None,
            ChaosMode::Scripted {
                site: s,
                kind,
                op: o,
            } => (s == site && o == op).then_some(kind),
            ChaosMode::Seeded {
                seed,
                permille,
                max_faults,
            } => {
                let h = splitmix64(
                    seed.wrapping_mul(0xA076_1D64_78BD_642F)
                        ^ site.tag().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (op << 8),
                );
                if h % 1000 < u64::from(permille)
                    && self.fired_count.load(Ordering::SeqCst) < max_faults
                {
                    // Draw the kind from independent bits of the same hash.
                    Some(IoFaultKind::all()[(h >> 32) as usize % 3])
                } else {
                    None
                }
            }
        };
        if let Some(k) = kind {
            self.fired_count.fetch_add(1, Ordering::SeqCst);
            let mut log = self.fired.lock().unwrap_or_else(|e| e.into_inner());
            log.push((site, op, k));
        }
        (op, kind)
    }

    fn injected_err(site: IoSite, op: u64, kind: IoFaultKind) -> io::Error {
        io::Error::other(format!(
            "chaos: injected {kind} fault at {site} (operation {op})"
        ))
    }

    /// The deterministic persisted-prefix length of a torn/truncated
    /// write: roughly half, varied by operation number so boundary cases
    /// (empty prefix, almost-whole prefix) all occur across a sweep.
    fn torn_len(bytes: usize, op: u64) -> usize {
        if bytes == 0 {
            return 0;
        }
        (splitmix64(op.wrapping_add(0x5EED)) as usize) % bytes
    }
}

impl SimIo for ChaosIo {
    fn write_new(&self, site: IoSite, path: &Path, bytes: &[u8]) -> io::Result<File> {
        match self.decide(site) {
            (_, None) => self.real.write_new(site, path, bytes),
            (op, Some(IoFaultKind::Fail)) => Err(Self::injected_err(site, op, IoFaultKind::Fail)),
            (op, Some(IoFaultKind::Torn)) => {
                let _ =
                    self.real
                        .write_new(site, path, &bytes[..Self::torn_len(bytes.len(), op)])?;
                Err(Self::injected_err(site, op, IoFaultKind::Torn))
            }
            (op, Some(IoFaultKind::Truncate)) => {
                self.real
                    .write_new(site, path, &bytes[..Self::torn_len(bytes.len(), op)])
            }
        }
    }

    fn open_append(&self, site: IoSite, path: &Path) -> io::Result<File> {
        // Nothing to tear on an open: every kind degrades to Fail.
        match self.decide(site) {
            (_, None) => self.real.open_append(site, path),
            (op, Some(kind)) => Err(Self::injected_err(site, op, kind)),
        }
    }

    fn append(&self, site: IoSite, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        match self.decide(site) {
            (_, None) => self.real.append(site, file, bytes),
            (op, Some(IoFaultKind::Fail)) => Err(Self::injected_err(site, op, IoFaultKind::Fail)),
            (op, Some(IoFaultKind::Torn)) => {
                self.real
                    .append(site, file, &bytes[..Self::torn_len(bytes.len(), op)])?;
                Err(Self::injected_err(site, op, IoFaultKind::Torn))
            }
            (op, Some(IoFaultKind::Truncate)) => {
                self.real
                    .append(site, file, &bytes[..Self::torn_len(bytes.len(), op)])
            }
        }
    }

    fn sync(&self, site: IoSite, file: &File) -> io::Result<()> {
        // An fsync either reaches the platters or it doesn't: every kind
        // degrades to Fail (the data may still be in the page cache, which
        // RealIo already wrote — exactly the ambiguity a real fsync
        // failure leaves behind).
        match self.decide(site) {
            (_, None) => self.real.sync(site, file),
            (op, Some(kind)) => Err(Self::injected_err(site, op, kind)),
        }
    }

    fn rename(&self, site: IoSite, from: &Path, to: &Path) -> io::Result<()> {
        // A POSIX rename is atomic: it happens or it doesn't. Fail/Torn
        // leave `from` in place and error; Truncate models the nastier
        // "rename lost but reported durable" by *deleting* the scratch
        // file and reporting success — the live file silently keeps its
        // previous content.
        match self.decide(site) {
            (_, None) => self.real.rename(site, from, to),
            (op, Some(IoFaultKind::Truncate)) => {
                let _ = std::fs::remove_file(from);
                let _ = op;
                Ok(())
            }
            (op, Some(kind)) => Err(Self::injected_err(site, op, kind)),
        }
    }

    fn read(&self, site: IoSite, path: &Path) -> io::Result<Vec<u8>> {
        match self.decide(site) {
            (_, None) => self.real.read(site, path),
            (op, Some(IoFaultKind::Fail)) => Err(Self::injected_err(site, op, IoFaultKind::Fail)),
            (op, Some(IoFaultKind::Torn)) => Err(Self::injected_err(site, op, IoFaultKind::Torn)),
            (op, Some(IoFaultKind::Truncate)) => {
                let mut bytes = self.real.read(site, path)?;
                bytes.truncate(Self::torn_len(bytes.len(), op));
                Ok(bytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_and_kind_names_round_trip() {
        for s in IoSite::all() {
            assert_eq!(IoSite::from_name(s.name()), Some(s));
        }
        for k in IoFaultKind::all() {
            assert_eq!(IoFaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(IoSite::from_name("warp"), None);
        assert_eq!(IoFaultKind::from_name("warp"), None);
    }

    #[test]
    fn counting_mode_counts_and_never_faults() {
        let dir = std::env::temp_dir().join("burst-simio-count");
        std::fs::create_dir_all(&dir).unwrap();
        let io = ChaosIo::counting();
        let p = dir.join("a.bin");
        let f = io.write_new(IoSite::CkptTmpWrite, &p, b"hello").unwrap();
        io.sync(IoSite::CkptSync, &f).unwrap();
        io.write_new(IoSite::CkptTmpWrite, &p, b"again").unwrap();
        assert_eq!(io.ops_at(IoSite::CkptTmpWrite), 2);
        assert_eq!(io.ops_at(IoSite::CkptSync), 1);
        assert_eq!(io.ops_at(IoSite::JournalAppend), 0);
        assert!(io.fault_log().is_empty());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn scripted_fault_fires_exactly_once_at_its_op() {
        let dir = std::env::temp_dir().join("burst-simio-script");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("s.bin");
        let io = ChaosIo::scripted(IoSite::CkptTmpWrite, IoFaultKind::Fail, 1);
        assert!(io.write_new(IoSite::CkptTmpWrite, &p, b"zero").is_ok());
        assert!(io.write_new(IoSite::CkptTmpWrite, &p, b"one").is_err());
        assert!(io.write_new(IoSite::CkptTmpWrite, &p, b"two").is_ok());
        assert_eq!(
            io.fault_log(),
            vec![(IoSite::CkptTmpWrite, 1, IoFaultKind::Fail)]
        );
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn torn_write_persists_a_proper_prefix_then_errors() {
        let dir = std::env::temp_dir().join("burst-simio-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.bin");
        let data = vec![7u8; 64];
        let io = ChaosIo::scripted(IoSite::CkptTmpWrite, IoFaultKind::Torn, 0);
        assert!(io.write_new(IoSite::CkptTmpWrite, &p, &data).is_err());
        let on_disk = std::fs::read(&p).unwrap();
        assert!(on_disk.len() < data.len(), "a strict prefix persisted");
        assert_eq!(on_disk, data[..on_disk.len()]);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn truncate_read_lies_about_success() {
        let dir = std::env::temp_dir().join("burst-simio-lies");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("l.bin");
        std::fs::write(&p, vec![9u8; 128]).unwrap();
        let io = ChaosIo::scripted(IoSite::CkptRead, IoFaultKind::Truncate, 0);
        let got = io.read(IoSite::CkptRead, &p).unwrap();
        assert!(got.len() < 128, "truncated content returned as success");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn seeded_schedule_is_a_pure_function_of_the_seed() {
        let dir = std::env::temp_dir().join("burst-simio-seeded");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        let drive = |io: &ChaosIo| {
            for _ in 0..200 {
                let _ = io.write_new(IoSite::CkptTmpWrite, &p, b"payload-bytes");
                let _ = io.read(IoSite::JournalRead, &p);
            }
        };
        let a = ChaosIo::seeded_with(1234, 100, u64::MAX);
        let b = ChaosIo::seeded_with(1234, 100, u64::MAX);
        drive(&a);
        drive(&b);
        assert_eq!(a.fault_log(), b.fault_log());
        assert!(!a.fault_log().is_empty(), "10% over 400 ops must fire");
        let c = ChaosIo::seeded_with(4321, 100, u64::MAX);
        drive(&c);
        assert_ne!(a.fault_log(), c.fault_log(), "seeds must differ");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn seeded_fault_budget_is_bounded() {
        let dir = std::env::temp_dir().join("burst-simio-budget");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("b.bin");
        let io = ChaosIo::seeded_with(7, 1000, 3);
        for _ in 0..100 {
            let _ = io.write_new(IoSite::CkptTmpWrite, &p, b"zz");
        }
        assert_eq!(io.fault_log().len(), 3, "max_faults caps the schedule");
        let _ = std::fs::remove_file(&p);
    }
}
