//! Chip-multiprocessor extension (paper Section 6): several cores with
//! private cache hierarchies sharing one memory controller and DRAM
//! device. The paper predicts access reordering grows more important as
//! the controller sees more concurrent outstanding accesses — this module
//! lets the claim be measured.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use burst_core::{Access, AccessId, AccessKind, AccessScheduler, Completion};
use burst_cpu::Cpu;
use burst_dram::{Cycle, Dram, PhysAddr};
use burst_workloads::OpSource;

use crate::{SimReport, SystemConfig};

/// A multi-core system: one CPU per workload, shared controller and DRAM.
#[derive(Debug)]
pub struct CmpSystem {
    cfg: SystemConfig,
    dram: Dram,
    sched: Box<dyn AccessScheduler>,
    cpus: Vec<Cpu>,
    mem_cycle: Cycle,
    next_id: u64,
    completions: Vec<Completion>,
    pending: BinaryHeap<Reverse<(Cycle, usize, u64)>>,
    owners: BTreeMap<AccessId, (usize, u64)>,
    /// Round-robin pointer for fair request hand-off across cores.
    rr: usize,
}

impl CmpSystem {
    /// Builds a `cores`-way CMP sharing the configured memory subsystem.
    /// Each core's physical addresses are offset into its own slice of the
    /// address space (private heaps, as distinct processes would see).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cfg: &SystemConfig, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        let mut dram = Dram::new(cfg.dram, cfg.mapping);
        if cfg.checker {
            dram.enable_checker();
        }
        CmpSystem {
            cfg: *cfg,
            dram,
            sched: cfg.mechanism.build(cfg.effective_ctrl(), cfg.dram.geometry),
            cpus: (0..cores).map(|_| Cpu::new(cfg.cpu)).collect(),
            mem_cycle: 0,
            next_id: 0,
            completions: Vec::new(),
            pending: BinaryHeap::new(),
            owners: BTreeMap::new(),
            rr: 0,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cpus.len()
    }

    /// Instructions retired by core `i`.
    pub fn retired(&self, i: usize) -> u64 {
        self.cpus[i].retired()
    }

    /// Total instructions retired across cores.
    pub fn total_retired(&self) -> u64 {
        self.cpus.iter().map(|c| c.retired()).sum()
    }

    /// Memory cycles elapsed.
    pub fn mem_cycle(&self) -> Cycle {
        self.mem_cycle
    }

    /// Functionally warms every core's caches from its workload.
    pub fn warm(&mut self, workloads: &mut [Box<dyn OpSource>]) {
        assert_eq!(workloads.len(), self.cpus.len());
        if self.cfg.warm_mem_ops > 0 {
            for (cpu, w) in self.cpus.iter_mut().zip(workloads.iter_mut()) {
                cpu.warm_caches(&mut **w, self.cfg.warm_mem_ops);
            }
        }
    }

    /// Offsets core `i`'s addresses into a private slice of physical
    /// memory (bits above the benchmarks' 3 GB footprint cycle per core).
    fn translate(&self, core: usize, line: u64) -> u64 {
        // Rotate by a large odd page multiple per core so cores collide in
        // banks (shared DRAM) but not in lines (private data).
        line.wrapping_add(core as u64 * 0x2654_3000) % (4u64 << 30)
    }

    /// Advances one memory cycle for the whole chip.
    pub fn step(&mut self, workloads: &mut [Box<dyn OpSource>]) {
        assert_eq!(workloads.len(), self.cpus.len());
        for (cpu, w) in self.cpus.iter_mut().zip(workloads.iter_mut()) {
            for _ in 0..self.cfg.cpu.cpu_ratio {
                cpu.cycle(&mut **w);
            }
        }
        // Fair round-robin hand-off: reads first, then writebacks.
        let cores = self.cpus.len();
        for offset in 0..cores {
            let core = (self.rr + offset) % cores;
            while self.sched.can_accept(AccessKind::Read) {
                let Some((line, critical)) = self.cpus[core].pop_read_request_tagged() else {
                    break;
                };
                self.enqueue(core, AccessKind::Read, line, critical);
            }
        }
        for offset in 0..cores {
            let core = (self.rr + offset) % cores;
            while self.sched.can_accept(AccessKind::Write) {
                let Some(line) = self.cpus[core].pop_writeback() else {
                    break;
                };
                self.enqueue(core, AccessKind::Write, line, false);
            }
        }
        self.rr = (self.rr + 1) % cores;

        self.sched
            .tick(&mut self.dram, self.mem_cycle, &mut self.completions);
        for c in self.completions.drain(..) {
            if c.kind == AccessKind::Read {
                if let Some((core, line)) = self.owners.remove(&c.id) {
                    self.pending.push(Reverse((c.done_at, core, line)));
                }
            }
        }
        while let Some(&Reverse((at, core, line))) = self.pending.peek() {
            if at > self.mem_cycle {
                break;
            }
            self.pending.pop();
            let now = self.cpus[core].now();
            self.cpus[core].complete_read(line, now);
        }
        self.mem_cycle += 1;
    }

    fn enqueue(&mut self, core: usize, kind: AccessKind, line: u64, critical: bool) {
        let phys = self.translate(core, line);
        let addr = PhysAddr::new(phys);
        let loc = self.dram.decode(addr);
        let id = AccessId::new(self.next_id);
        self.next_id += 1;
        if kind == AccessKind::Read {
            self.owners.insert(id, (core, line));
        }
        let access = Access::new(id, kind, addr, loc, self.mem_cycle).with_critical(critical);
        self.sched
            .enqueue(access, self.mem_cycle, &mut self.completions);
    }

    /// Runs until the *total* retired instruction count reaches `target`.
    ///
    /// # Panics
    ///
    /// Panics on livelock (no retirement progress for two million cycles).
    pub fn run_total_instructions(&mut self, workloads: &mut [Box<dyn OpSource>], target: u64) {
        let mut last = self.total_retired();
        let mut idle = 0u64;
        while self.total_retired() < target {
            self.step(workloads);
            let now = self.total_retired();
            if now == last {
                idle += 1;
                if idle >= 2_000_000 {
                    match self.sched.stall_diagnostic() {
                        Some(diag) => panic!("CMP memory controller stall: {diag}"),
                        None => panic!(
                            "CMP livelock: no retirement for 2M memory cycles at cycle {}",
                            self.mem_cycle
                        ),
                    }
                }
            } else {
                idle = 0;
                last = now;
            }
        }
    }

    /// Runs until *every* core has retired at least `target` instructions.
    ///
    /// # Panics
    ///
    /// Panics on livelock (no retirement progress for two million cycles).
    pub fn run_per_core_instructions(&mut self, workloads: &mut [Box<dyn OpSource>], target: u64) {
        let mut last = self.total_retired();
        let mut idle = 0u64;
        while self.cpus.iter().any(|c| c.retired() < target) {
            self.step(workloads);
            let now = self.total_retired();
            if now == last {
                idle += 1;
                if idle >= 2_000_000 {
                    match self.sched.stall_diagnostic() {
                        Some(diag) => panic!("CMP memory controller stall: {diag}"),
                        None => panic!(
                            "CMP livelock: no retirement for 2M memory cycles at cycle {}",
                            self.mem_cycle
                        ),
                    }
                }
            } else {
                idle = 0;
                last = now;
            }
        }
    }

    /// Aggregate report over the shared memory subsystem. Per-core IPCs
    /// are available via [`CmpSystem::retired`] and the shared
    /// `mem_cycle`.
    pub fn report(&self, name: impl Into<String>) -> SimReport {
        let mut cpu_stats = burst_cpu::CpuStats::default();
        for c in &self.cpus {
            let s = c.stats();
            cpu_stats.retired += s.retired;
            cpu_stats.loads += s.loads;
            cpu_stats.stores += s.stores;
            cpu_stats.mem_reads += s.mem_reads;
            cpu_stats.mem_writes += s.mem_writes;
            cpu_stats.stall_cycles += s.stall_cycles;
        }
        SimReport::from_parts(
            self.cfg.mechanism,
            name.into(),
            self.cpus.iter().map(|c| c.now()).max().unwrap_or(0),
            self.mem_cycle,
            self.total_retired(),
            self.sched.stats().clone(),
            self.dram.total_stats(),
            cpu_stats,
            crate::RobustnessReport::collect(self.sched.stats(), self.dram.protocol_violations()),
            u64::from(self.cfg.dram.geometry.channels),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunLength;
    use burst_core::Mechanism;
    use burst_workloads::SpecBenchmark;

    fn workloads(n: usize) -> Vec<Box<dyn OpSource>> {
        let all = SpecBenchmark::all16();
        (0..n)
            .map(|i| Box::new(all[i * 3 % 16].workload(7 + i as u64)) as Box<dyn OpSource>)
            .collect()
    }

    #[test]
    fn dual_core_runs_and_both_cores_progress() {
        let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52));
        let mut sys = CmpSystem::new(&cfg, 2);
        let mut w = workloads(2);
        sys.warm(&mut w);
        sys.run_per_core_instructions(&mut w, 5_000);
        assert!(
            sys.retired(0) >= 5_000,
            "core 0 starved: {}",
            sys.retired(0)
        );
        assert!(
            sys.retired(1) >= 5_000,
            "core 1 starved: {}",
            sys.retired(1)
        );
        let r = sys.report("cmp2");
        assert!(r.reads() > 0);
        assert_eq!(r.instructions, sys.total_retired());
    }

    #[test]
    fn quad_core_contends_more_than_single() {
        let run = |cores: usize| -> f64 {
            let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BkInOrder);
            let mut sys = CmpSystem::new(&cfg, cores);
            let mut w = workloads(cores);
            sys.warm(&mut w);
            sys.run_total_instructions(&mut w, 8_000 * cores as u64);
            sys.report("x").ctrl.avg_read_latency()
        };
        let single = run(1);
        let quad = run(4);
        assert!(
            quad > single,
            "4-core contention must raise read latency: {quad:.1} vs {single:.1}"
        );
    }

    #[test]
    fn single_core_cmp_matches_system_shape() {
        let cfg = SystemConfig::baseline().with_mechanism(Mechanism::Burst);
        let mut sys = CmpSystem::new(&cfg, 1);
        let mut w: Vec<Box<dyn OpSource>> = vec![Box::new(SpecBenchmark::Swim.workload(42))];
        sys.warm(&mut w);
        sys.run_total_instructions(&mut w, 5_000);
        let cmp_report = sys.report("swim");

        let direct = crate::simulate(
            &cfg,
            SpecBenchmark::Swim.workload(42),
            RunLength::Instructions(5_000),
        );
        // Address translation differs (core offset 0 => identical), so the
        // runs must agree exactly.
        assert_eq!(cmp_report.mem_cycles, direct.mem_cycles);
        assert_eq!(cmp_report.reads(), direct.reads());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CmpSystem::new(&SystemConfig::baseline(), 0);
    }
}
