//! CSV export of simulation results, for plotting the paper's figures with
//! external tools (gnuplot, matplotlib, spreadsheets).
//!
//! All exports are plain RFC-4180-ish CSV with a header row; fields never
//! contain commas, so no quoting is required.

use crate::experiments::{
    CellFailure, Fig10Row, Fig12Row, Fig7Row, Fig9Row, OutstandingRow, Sweep,
};
use crate::report::NoRowsError;
use crate::SimReport;

/// Serialises one [`SimReport`] per row.
///
/// # Examples
///
/// ```
/// use burst_sim::{simulate, RunLength, SystemConfig};
/// use burst_sim::export::reports_to_csv;
/// use burst_workloads::SpecBenchmark;
///
/// let r = simulate(&SystemConfig::baseline(), SpecBenchmark::Gzip.workload(1),
///                  RunLength::Instructions(2_000));
/// let csv = reports_to_csv(&[r]);
/// assert!(csv.starts_with("mechanism,workload,"));
/// assert_eq!(csv.lines().count(), 2);
/// ```
pub fn reports_to_csv(reports: &[SimReport]) -> String {
    let mut out = String::from(
        "mechanism,workload,instructions,cpu_cycles,mem_cycles,ipc,reads,writes,\
         avg_read_latency,avg_write_latency,read_p50,read_p95,read_p99,\
         row_hit_rate,row_conflict_rate,row_empty_rate,\
         addr_bus_util,data_bus_util,write_saturation,preemptions,piggybacks,forwards,\
         protocol_violations,faults_injected,fault_retries,escalations,watchdog_trips,\
         max_access_age\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{},{:.4},{},{},{:.2},{:.2},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{},{},{},{}\n",
            r.mechanism.name(),
            r.workload,
            r.instructions,
            r.cpu_cycles,
            r.mem_cycles,
            r.ipc(),
            r.reads(),
            r.writes(),
            r.ctrl.avg_read_latency(),
            r.ctrl.avg_write_latency(),
            r.ctrl.read_latencies.p50(),
            r.ctrl.read_latencies.p95(),
            r.ctrl.read_latencies.p99(),
            r.ctrl.row_hit_rate(),
            r.ctrl.row_conflict_rate(),
            r.ctrl.row_empty_rate(),
            r.addr_bus_utilization(),
            r.data_bus_utilization(),
            r.ctrl.write_saturation_rate(),
            r.ctrl.preemptions,
            r.ctrl.piggybacks,
            r.ctrl.forwards,
            r.robustness.violations,
            r.robustness.faults_injected,
            r.robustness.retries,
            r.robustness.escalations,
            r.robustness.watchdog_trips,
            r.robustness.max_access_age,
        ));
    }
    out
}

/// Serialises a whole sweep, one row per (benchmark, mechanism) cell.
pub fn sweep_to_csv(sweep: &Sweep) -> String {
    let reports: Vec<SimReport> = sweep.cells.iter().map(|c| c.report.clone()).collect();
    reports_to_csv(&reports)
}

/// Figure 7 rows as CSV.
pub fn fig7_to_csv(rows: &[Fig7Row]) -> String {
    let mut out = String::from("mechanism,read_latency,write_latency\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.2},{:.2}\n",
            r.mechanism.name(),
            r.read_latency,
            r.write_latency
        ));
    }
    out
}

/// Figure 9 rows as CSV.
pub fn fig9_to_csv(rows: &[Fig9Row]) -> String {
    let mut out = String::from("mechanism,row_hit,row_conflict,row_empty,addr_bus,data_bus\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.mechanism.name(),
            r.row_hit,
            r.row_conflict,
            r.row_empty,
            r.addr_bus,
            r.data_bus
        ));
    }
    out
}

/// Figure 10 rows as CSV (wide format: one column per mechanism).
///
/// # Errors
///
/// Returns [`NoRowsError`] when `rows` is empty: the header's mechanism
/// columns come from the first row, so an empty input would silently
/// export a header-less, data-less file.
pub fn fig10_to_csv(rows: &[Fig10Row]) -> Result<String, NoRowsError> {
    let first = rows.first().ok_or(NoRowsError {
        what: "the Figure 10 CSV",
    })?;
    let mechanisms: Vec<String> = first.normalized.iter().map(|(m, _)| m.name()).collect();
    let mut out = String::from("benchmark");
    for m in &mechanisms {
        out.push(',');
        out.push_str(m);
    }
    out.push('\n');
    for r in rows {
        out.push_str(r.benchmark.name());
        for (_, v) in &r.normalized {
            out.push_str(&format!(",{v:.4}"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Figure 12 rows as CSV.
pub fn fig12_to_csv(rows: &[Fig12Row]) -> String {
    let mut out = String::from("point,read_latency,write_latency,normalized_exec\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.4}\n",
            r.mechanism.name(),
            r.read_latency,
            r.write_latency,
            r.normalized_exec
        ));
    }
    out
}

/// The salvage CSV of a supervised sweep: one row per cell — completed
/// *and* failed — so a partially successful run still leaves a complete
/// machine-readable account of the grid. Completed cells carry `ok` status
/// with `-` placeholders in the failure columns; failed cells carry the
/// taxonomy kind, attempt count and a comma/newline-sanitised diagnostic.
/// Journalled cells that exhausted their retries report status
/// `quarantined` instead of `failed`: they will be skipped, not retried,
/// on the next `--resume`.
pub fn salvage_to_csv(sweep: &Sweep, failures: &[CellFailure]) -> String {
    let mut out = String::from("benchmark,mechanism,status,kind,attempts,detail\n");
    for c in &sweep.cells {
        out.push_str(&format!(
            "{},{},ok,-,-,-\n",
            c.benchmark.name(),
            c.mechanism.name()
        ));
    }
    for f in failures {
        let detail: String = f
            .payload
            .chars()
            .map(|ch| match ch {
                ',' => ';',
                '\n' | '\r' => ' ',
                other => other,
            })
            .collect();
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            f.benchmark.name(),
            f.mechanism.name(),
            if f.quarantined {
                "quarantined"
            } else {
                "failed"
            },
            f.kind.name(),
            f.attempts,
            detail
        ));
    }
    out
}

/// Figure 8/11 distributions as CSV (long format: mechanism, kind,
/// occupancy, fraction).
pub fn outstanding_to_csv(rows: &[OutstandingRow]) -> String {
    let mut out = String::from("mechanism,kind,occupancy,fraction\n");
    for r in rows {
        for (kind, series) in [("read", &r.reads), ("write", &r.writes)] {
            for (n, &frac) in series.iter().enumerate() {
                if frac > 0.0 {
                    out.push_str(&format!(
                        "{},{},{},{:.6}\n",
                        r.mechanism.name(),
                        kind,
                        n,
                        frac
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Sweep;
    use crate::RunLength;
    use burst_core::Mechanism;
    use burst_workloads::SpecBenchmark;

    fn mini_sweep() -> Sweep {
        Sweep::run(
            &[SpecBenchmark::Gzip],
            &[Mechanism::BkInOrder, Mechanism::BurstTh(52)],
            RunLength::Instructions(2_000),
            1,
        )
    }

    #[test]
    fn sweep_csv_has_header_and_rows() {
        let csv = sweep_to_csv(&mini_sweep());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 cells");
        assert!(lines[0].starts_with("mechanism,workload"));
        assert!(lines[1].contains("gzip"));
        // Same column count on every row.
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
        }
    }

    #[test]
    fn fig_csvs_are_well_formed() {
        let sweep = mini_sweep();
        for csv in [
            fig7_to_csv(&sweep.fig7_rows()),
            fig9_to_csv(&sweep.fig9_rows()),
            fig10_to_csv(&sweep.fig10_rows()).expect("sweep has rows"),
        ] {
            let lines: Vec<&str> = csv.lines().collect();
            assert!(lines.len() >= 2, "header plus data: {csv}");
            let cols = lines[0].split(',').count();
            assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));
        }
    }

    #[test]
    fn outstanding_csv_long_format() {
        let rows = crate::experiments::fig8(SpecBenchmark::Gzip, RunLength::Instructions(2_000), 1);
        let csv = outstanding_to_csv(&rows);
        assert!(csv.starts_with("mechanism,kind,occupancy,fraction\n"));
        assert!(csv.contains(",read,"));
        assert!(csv.contains(",write,"));
    }

    #[test]
    fn fig10_csv_reports_empty_rows() {
        let err = fig10_to_csv(&[]).unwrap_err();
        assert!(err.to_string().contains("no rows"), "{err}");
    }

    #[test]
    fn report_csv_includes_robustness_columns() {
        let csv = sweep_to_csv(&mini_sweep());
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with("max_access_age"), "header: {header}");
        assert!(header.contains("protocol_violations"));
        assert!(header.contains("watchdog_trips"));
    }

    #[test]
    fn salvage_csv_lists_ok_and_failed_cells() {
        use crate::experiments::CellFailure;
        use crate::supervisor::FailureKind;
        let sweep = mini_sweep();
        let failures = vec![CellFailure {
            scope: "sweep".into(),
            benchmark: SpecBenchmark::Swim,
            mechanism: Mechanism::Burst,
            kind: FailureKind::Panic,
            attempts: 3,
            payload: "boom, with commas\nand newlines".into(),
            quarantined: false,
        }];
        let csv = salvage_to_csv(&sweep, &failures);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 ok + 1 failed");
        assert!(lines[1].contains(",ok,-,-,-"));
        let failed = lines[3];
        assert!(failed.starts_with("swim,Burst,failed,panic,3,"));
        assert!(!failed.contains("boom,"), "commas sanitised: {failed}");
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn no_commas_inside_fields() {
        let csv = sweep_to_csv(&mini_sweep());
        // Workload and mechanism names never contain commas by construction.
        for line in csv.lines().skip(1) {
            assert!(!line.contains(",,"), "empty field in {line}");
        }
    }
}
