//! Prints the wall-clock phase profile of one event-engine run — a quick
//! way to see where step time goes for a given workload/mechanism pair.
//!
//! ```text
//! cargo run --release -p burst-sim --example phase_profile [swim|mcf] [instructions]
//! ```

use burst_core::Mechanism;
use burst_sim::{Engine, RunLength, System, SystemConfig};
use burst_workloads::SpecBenchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = match args.get(1).map(String::as_str) {
        Some("mcf") => SpecBenchmark::Mcf,
        _ => SpecBenchmark::Swim,
    };
    let instructions: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300_000);
    let cfg = SystemConfig::baseline()
        .with_mechanism(Mechanism::BurstTh(52))
        .with_engine(Engine::Event);
    let mut workload = bench.workload(42);
    let mut sys = System::new(&cfg);
    sys.warm(&mut workload);
    sys.enable_phase_profile();
    let t0 = std::time::Instant::now();
    sys.run(&mut workload, RunLength::Instructions(instructions));
    let wall = t0.elapsed();
    let p = *sys.phase_profile().expect("profiling enabled");
    let total = p.total_ns().max(1);
    println!(
        "{} {} instr: wall {:.3}s, {} mem cycles, {:.3} Mc/s",
        bench.name(),
        instructions,
        wall.as_secs_f64(),
        sys.mem_cycle(),
        sys.mem_cycle() as f64 / 1e6 / wall.as_secs_f64()
    );
    for (name, ns) in [
        ("cpu", p.cpu_ns),
        ("handoff", p.handoff_ns),
        ("dram", p.dram_ns),
        ("deliver", p.deliver_ns),
    ] {
        println!(
            "  {name:8} {:>8.1} ms  {:>5.1}%",
            ns as f64 / 1e6,
            ns as f64 * 100.0 / total as f64
        );
    }
    println!(
        "  profiled {:.1} ms of {:.1} ms wall (rest: jumps, warm, harness)",
        total as f64 / 1e6,
        wall.as_secs_f64() * 1e3
    );
}
