//! Integration tests of the chaos plane: journal truncation at every
//! byte offset, seeded fault-schedule determinism, quarantine-based
//! graceful degradation and checkpoint scratch-file garbage collection.

use std::path::PathBuf;
use std::sync::Arc;

use burst_core::Mechanism;
use burst_sim::experiments::Sweep;
use burst_sim::export::sweep_to_csv;
use burst_sim::journal::fingerprint;
use burst_sim::{
    cell_key, ChaosIo, CheckpointPlan, FailureKind, IoSite, Journal, RunLength, SimIo,
    SupervisorConfig,
};
use burst_workloads::SpecBenchmark;
use proptest::prelude::*;

const BENCHES: [SpecBenchmark; 1] = [SpecBenchmark::Swim];
const MECHS: [Mechanism; 2] = [Mechanism::BkInOrder, Mechanism::BurstTh(52)];
const RUN: RunLength = RunLength::Instructions(1_200);
const SEED: u64 = 11;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("burst-chaos-test-{}-{name}", std::process::id()))
}

fn fp() -> u64 {
    fingerprint("chaos integration sweep v1")
}

fn sup() -> SupervisorConfig {
    SupervisorConfig {
        max_retries: 2,
        backoff_base_ms: 0,
        ..SupervisorConfig::default()
    }
}

fn run_with_journal(journal: &Journal) -> burst_sim::Supervised<Sweep> {
    Sweep::run_supervised(
        "sweep",
        &burst_sim::SystemConfig::baseline(),
        &BENCHES,
        &MECHS,
        RUN,
        SEED,
        1,
        &sup(),
        Some(journal),
        None,
    )
}

/// A complete journal's raw bytes plus the reference CSV its sweep
/// produced. Computed once and shared: several tests replay it and the
/// underlying sweep is the expensive part.
fn complete_journal_bytes() -> &'static (Vec<u8>, String) {
    static FIXTURE: std::sync::OnceLock<(Vec<u8>, String)> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let path = tmp("complete.journal");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, fp()).expect("create journal");
        let sup = run_with_journal(&journal);
        assert!(sup.failures.is_empty(), "clean run must complete");
        let reference = sweep_to_csv(&sup.value);
        drop(journal);
        let bytes = std::fs::read(&path).expect("read journal back");
        let _ = std::fs::remove_file(&path);
        (bytes, reference)
    })
}

/// The truncation contract at one byte offset: resuming the prefix
/// either yields a sweep whose CSV is byte-identical to the reference,
/// or refuses with a structured `JournalError`. Never a panic, never a
/// silently different CSV.
///
/// Every offset performs a real resume (the parser sees every possible
/// prefix), but the rerun after a successful resume is memoized by the
/// restored state: `run_supervised` is deterministic given (journal
/// state, config) — pinned by the determinism suite — and a truncated
/// prefix can only restore one of a handful of cell subsets, so
/// re-simulating per offset would burn minutes re-proving the same
/// equality.
fn check_truncation_at(bytes: &[u8], reference: &str, offset: usize, scratch: &PathBuf) {
    use std::collections::HashMap;
    use std::sync::Mutex;
    /// Memoized rerun results keyed by the restored-state signature.
    type RerunCache = HashMap<Vec<String>, (String, bool)>;
    static RERUNS: Mutex<Option<RerunCache>> = Mutex::new(None);

    let _ = std::fs::remove_file(scratch);
    std::fs::write(scratch, &bytes[..offset]).expect("write truncated copy");
    match Journal::resume(scratch, fp()) {
        Ok(journal) => {
            let mut state: Vec<String> = Vec::new();
            for &b in &BENCHES {
                for &m in &MECHS {
                    let key = cell_key("sweep", b, m);
                    if journal.lookup(&key).is_some() {
                        state.push(format!("ok {key}"));
                    }
                    if journal.lookup_quarantine(&key).is_some() {
                        state.push(format!("quarantine {key}"));
                    }
                }
            }
            let cached = RERUNS
                .lock()
                .unwrap()
                .get_or_insert_with(HashMap::new)
                .get(&state)
                .cloned();
            let (csv, clean) = match cached {
                Some(hit) => hit,
                None => {
                    let sup = run_with_journal(&journal);
                    let entry = (sweep_to_csv(&sup.value), sup.failures.is_empty());
                    RERUNS
                        .lock()
                        .unwrap()
                        .get_or_insert_with(HashMap::new)
                        .insert(state, entry.clone());
                    entry
                }
            };
            assert!(clean, "offset {offset}: resumed run failed");
            assert_eq!(
                csv, reference,
                "offset {offset}: resumed CSV differs from the reference"
            );
        }
        Err(e) => {
            // Structured refusal: the error formats and names the journal
            // problem instead of unwinding.
            let msg = e.to_string();
            assert!(!msg.is_empty(), "offset {offset}: empty error message");
        }
    }
    let _ = std::fs::remove_file(scratch);
}

/// Exhaustive: every byte offset of a complete journal, including 0 and
/// the full length.
#[test]
fn journal_truncated_at_every_byte_offset_resumes_or_refuses() {
    let (bytes, reference) = complete_journal_bytes();
    let scratch = tmp("truncated-exhaustive.journal");
    for offset in 0..=bytes.len() {
        check_truncation_at(bytes, reference, offset, &scratch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same contract under random offsets (redundant with the
    /// exhaustive sweep today, but keeps holding if the journal grows
    /// beyond what exhaustion can afford).
    #[test]
    fn journal_truncation_contract_holds_at_random_offsets(raw in 0usize..1_000_000) {
        let (bytes, reference) = complete_journal_bytes();
        let offset = raw % (bytes.len() + 1);
        let scratch = tmp("truncated-prop.journal");
        check_truncation_at(bytes, reference, offset, &scratch);
    }
}

/// Drives a fixed operation sequence against a `ChaosIo` and returns the
/// faults it fired.
fn drive_schedule(io: &ChaosIo, dir: &PathBuf) -> Vec<(IoSite, u64, burst_sim::IoFaultKind)> {
    std::fs::create_dir_all(dir).expect("mkdir");
    let a = dir.join("a");
    let b = dir.join("b");
    for round in 0..24u64 {
        let payload = vec![b'x'; 64 + round as usize];
        if let Ok(f) = io.write_new(IoSite::CkptTmpWrite, &a, &payload) {
            let _ = io.sync(IoSite::CkptSync, &f);
        }
        let _ = io.rename(IoSite::CkptRename, &a, &b);
        let _ = io.read(IoSite::CkptRead, &b);
        if let Ok(mut f) = io.write_new(IoSite::JournalAppend, &a, b"header\n") {
            let _ = io.append(IoSite::JournalAppend, &mut f, b"record\n");
            let _ = io.sync(IoSite::JournalSync, &f);
        }
        let _ = io.read(IoSite::JournalRead, &a);
    }
    let _ = std::fs::remove_dir_all(dir);
    io.fault_log()
}

/// Acceptance: the seeded fault schedule is a pure function of the seed —
/// the same seed over the same operation sequence fires the identical
/// `(site, op, kind)` list.
#[test]
fn seeded_chaos_schedule_is_deterministic() {
    let first = drive_schedule(&ChaosIo::seeded_with(77, 400, 1_000), &tmp("sched-a"));
    let second = drive_schedule(&ChaosIo::seeded_with(77, 400, 1_000), &tmp("sched-b"));
    assert!(
        !first.is_empty(),
        "a 40% schedule over ~168 operations must fire at least once"
    );
    assert_eq!(first, second, "same seed, same fault schedule");
}

/// Acceptance: quarantined cells are skipped on resume — their recorded
/// failure is surfaced verbatim (same kind, attempts and payload) and
/// the stale checkpoint they left behind is garbage-collected.
#[test]
fn resume_skips_quarantined_cells_and_gcs_their_checkpoints() {
    let dir = tmp("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("sweep.journal");
    let journal = Journal::create(&path, fp()).expect("create");
    let key = cell_key("sweep", SpecBenchmark::Swim, Mechanism::BurstTh(52));
    journal
        .record_quarantine(&key, FailureKind::Panic, 3, "injected panic (cell 1)")
        .expect("quarantine record");
    drop(journal);

    let journal = Journal::resume(&path, fp()).expect("resume");
    assert_eq!(journal.quarantined_cells(), 1);
    let plan = CheckpointPlan::new(500, dir.clone(), fp());
    let stale = plan.cell_path("sweep", SpecBenchmark::Swim, Mechanism::BurstTh(52));
    std::fs::write(&stale, b"stale checkpoint").expect("plant stale ckpt");
    let sup = Sweep::run_supervised(
        "sweep",
        &burst_sim::SystemConfig::baseline(),
        &BENCHES,
        &MECHS,
        RUN,
        SEED,
        1,
        &sup(),
        Some(&journal),
        Some(&plan),
    );
    assert_eq!(sup.failures.len(), 1, "the quarantined cell is surfaced");
    let f = &sup.failures[0];
    assert!(f.quarantined);
    assert_eq!(f.kind, FailureKind::Panic);
    assert_eq!(f.attempts, 3, "attempts come from the record, not a re-run");
    assert_eq!(f.payload, "injected panic (cell 1)");
    assert_eq!(f.mechanism, Mechanism::BurstTh(52));
    assert_eq!(
        sup.value.cells.len(),
        1,
        "only the healthy cell was simulated"
    );
    assert!(!stale.exists(), "the quarantined cell's checkpoint is GCed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: orphaned `*.ckpt.tmp` scratch files from writes that
/// crashed mid-protocol are removed when a plan starts, while real
/// checkpoints and unrelated files survive.
#[test]
fn orphaned_checkpoint_scratch_files_are_garbage_collected() {
    let dir = tmp("orphans");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let orphan_a = dir.join("sweep-swim-BkInOrder.ckpt.tmp");
    let orphan_b = dir.join("sweep-swim-Burst_TH52.ckpt.tmp");
    let keep_ckpt = dir.join("sweep-swim-BkInOrder.ckpt");
    let keep_other = dir.join("notes.txt");
    for p in [&orphan_a, &orphan_b, &keep_ckpt, &keep_other] {
        std::fs::write(p, b"x").expect("plant file");
    }
    let plan = CheckpointPlan::new(500, dir.clone(), fp());
    assert_eq!(plan.gc_orphans(), 2, "exactly the two scratch files");
    assert!(!orphan_a.exists() && !orphan_b.exists());
    assert!(keep_ckpt.exists(), "real checkpoints survive");
    assert!(keep_other.exists(), "unrelated files survive");

    // The supervised entry point runs the same GC before sweeping.
    std::fs::write(&orphan_a, b"x").expect("replant");
    let sup = Sweep::run_supervised(
        "sweep",
        &burst_sim::SystemConfig::baseline(),
        &BENCHES,
        &[Mechanism::BkInOrder],
        RUN,
        SEED,
        1,
        &sup(),
        None,
        Some(&plan),
    );
    assert!(sup.failures.is_empty());
    assert!(
        !orphan_a.exists(),
        "run_supervised GCs orphans before the sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: a scripted mid-matrix fault leaves state a *clean* resume
/// recovers to the reference CSV — the sim-level slice of the bench
/// crate's full crash-point matrix, pinned here so `cargo test -p
/// burst-sim` alone exercises one end-to-end chaos cycle.
#[test]
fn scripted_torn_append_recovers_on_clean_resume() {
    let dir = tmp("torn-cycle");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("sweep.journal");
    let (_, reference) = complete_journal_bytes();
    let reference = reference.clone();

    let io: Arc<dyn SimIo> = Arc::new(ChaosIo::scripted(
        IoSite::JournalAppend,
        burst_sim::IoFaultKind::Torn,
        1,
    ));
    let journal = Journal::create_with_io(&path, fp(), Arc::clone(&io)).expect("create");
    let faulted = run_with_journal(&journal);
    assert!(
        faulted.failures.is_empty(),
        "a journal write fault must not fail the sweep itself"
    );
    drop(journal);

    let journal = Journal::resume(&path, fp()).expect("clean resume");
    let recovered = run_with_journal(&journal);
    assert!(recovered.failures.is_empty());
    assert_eq!(
        sweep_to_csv(&recovered.value),
        reference,
        "clean resume after a torn append reproduces the reference CSV"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
