//! Determinism guarantees of the parallel executor and the dense read-line
//! slab: a sweep must produce byte-identical exports at any `--jobs` value,
//! and read-line tracking must survive write-queue forwarding and
//! fault-injected retries.

use burst_core::{FaultConfig, Mechanism};
use burst_sim::experiments::Sweep;
use burst_sim::{export, map_parallel, simulate, RunLength, SystemConfig};
use burst_workloads::SpecBenchmark;

const LEN: RunLength = RunLength::Instructions(4_000);

/// The tentpole guarantee: a parallel sweep is *byte-identical* to a serial
/// one. `jobs = 4` forces a real thread pool even on single-core CI runners
/// (the executor clamps only to the item count, not the core count).
#[test]
fn parallel_sweep_csv_is_byte_identical_to_serial() {
    let benchmarks = [SpecBenchmark::Swim, SpecBenchmark::Gcc];
    let mechanisms = [
        Mechanism::BkInOrder,
        Mechanism::BurstTh(52),
        Mechanism::Intel,
    ];
    let serial = Sweep::run_with_jobs(&benchmarks, &mechanisms, LEN, 42, 1);
    let parallel = Sweep::run_with_jobs(&benchmarks, &mechanisms, LEN, 42, 4);
    assert_eq!(
        export::sweep_to_csv(&serial),
        export::sweep_to_csv(&parallel),
        "sweep export must not depend on the job count"
    );
    // Cell identity, not just aggregate equality: same order, same reports.
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.benchmark, p.benchmark);
        assert_eq!(s.mechanism, p.mechanism);
        assert_eq!(s.report.cpu_cycles, p.report.cpu_cycles);
        assert_eq!(s.report.mem_cycles, p.report.mem_cycles);
    }
}

/// Oversubscription must change nothing either: more workers than cells.
#[test]
fn oversubscribed_sweep_matches_serial() {
    let benchmarks = [SpecBenchmark::Art];
    let mechanisms = [Mechanism::BurstWp, Mechanism::RowHit];
    let serial = Sweep::run_with_jobs(&benchmarks, &mechanisms, LEN, 7, 1);
    let wide = Sweep::run_with_jobs(&benchmarks, &mechanisms, LEN, 7, 64);
    assert_eq!(export::sweep_to_csv(&serial), export::sweep_to_csv(&wide));
}

/// `map_parallel` hands closures the simulator actually uses (building a
/// full `System` per call) and still keeps input order.
#[test]
fn map_parallel_runs_simulations_in_input_order() {
    let mechanisms = [Mechanism::BkInOrder, Mechanism::BurstTh(52)];
    let reports = map_parallel(&mechanisms, 2, |_, &m| {
        let cfg = SystemConfig::baseline().with_mechanism(m);
        simulate(&cfg, SpecBenchmark::Swim.workload(42), LEN)
    });
    assert_eq!(reports[0].mechanism, Mechanism::BkInOrder);
    assert_eq!(reports[1].mechanism, Mechanism::BurstTh(52));
}

/// Regression for the dense read-line slab (which replaced a HashMap): a
/// workload exercising both write-queue forwarding (reads satisfied without
/// a slab removal via the DRAM path… they still enqueue + complete in the
/// same cycle) and fault-injected retries (completions arriving long after
/// enqueue, out of id order) must deliver every read. A lost line address
/// would starve the CPU and trip the stall panic inside `simulate`.
#[test]
fn read_line_slab_survives_forwards_and_retries() {
    let faults = FaultConfig {
        seed: 9,
        read_error_permille: 60,
        write_retry_permille: 60,
        max_retries: 3,
    };
    // bzip2 re-reads recently written lines, so its reads hit the write
    // queue and forward; Burst_WP drains writes eagerly, keeping both paths
    // active in one run.
    let cfg = SystemConfig::baseline()
        .with_mechanism(Mechanism::BurstWp)
        .with_checker(true)
        .with_faults(Some(faults));
    let report = simulate(
        &cfg,
        SpecBenchmark::Bzip2.workload(11),
        RunLength::Instructions(8_000),
    );
    assert!(
        report.ctrl.forwards > 0,
        "workload must exercise forwarding"
    );
    assert!(
        report.robustness.faults_injected > 0,
        "workload must exercise retries"
    );
    assert!(report.reads() > 0);
    // Identical to a re-run: slab bookkeeping is deterministic state, and
    // retried completions must not double-deliver or drop lines.
    let again = simulate(
        &cfg,
        SpecBenchmark::Bzip2.workload(11),
        RunLength::Instructions(8_000),
    );
    assert_eq!(report.cpu_cycles, again.cpu_cycles);
    assert_eq!(report.mem_cycles, again.mem_cycles);
    assert_eq!(report.reads(), again.reads());
}
