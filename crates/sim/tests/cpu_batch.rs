//! Property test for the batched CPU model: [`Cpu::run_until`] must be
//! bit-identical to stepping [`Cpu::cycle`] the same number of times —
//! byte-equal snapshots, identical request/writeback streams — for random
//! instruction mixes, random epoch strides and random memory latencies.
//!
//! This is the randomized sibling of the fixed-scenario equivalence tests
//! in `burst_cpu`: proptest explores streak boundaries, stall wake-ups
//! landing mid-epoch, and completion timing the hand-picked cases cannot
//! enumerate. The full-system analogue (whole-`System` engine equivalence
//! on random seeds) lives in `cycle_skip.rs`.

use burst_cpu::{Cpu, CpuConfig};
use burst_snap::SnapWriter;
use burst_workloads::{Op, ReplaySource};
use proptest::prelude::*;

/// A weighted random instruction: compute-heavy with every memory flavour
/// represented, over a footprint small enough to re-touch lines (hits and
/// misses both occur).
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0u64..256).prop_map(|(kind, i)| match kind {
        0..=3 => Op::Compute,
        4 | 5 => Op::load(i << 9),
        6 => Op::Store { addr: i << 9 },
        _ => Op::dependent_load(i << 9),
    })
}

proptest! {
    // Each case runs two full CPU models in lockstep: keep cases modest.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn run_until_is_bit_identical_to_per_cycle(
        ops in prop::collection::vec(op_strategy(), 1..64),
        strides in prop::collection::vec(1u64..97, 2..24),
        latency in 0u64..300,
    ) {
        let mut reference = Cpu::new(CpuConfig::baseline());
        let mut batched = Cpu::new(CpuConfig::baseline());
        let mut src_a = ReplaySource::new("a", ops.clone());
        let mut src_b = ReplaySource::new("b", ops);
        // (ready_at, line): one in-flight queue serves both cores, since
        // their request streams are asserted equal every epoch.
        let mut inflight: Vec<(u64, u64)> = Vec::new();
        for &stride in &strides {
            let target = reference.now() + stride;
            while reference.now() < target {
                reference.cycle(&mut src_a);
            }
            batched.run_until(target, &mut src_b);
            prop_assert_eq!(reference.now(), batched.now());
            loop {
                let a = reference.pop_read_request_tagged();
                let b = batched.pop_read_request_tagged();
                prop_assert_eq!(a, b, "request streams diverge");
                let Some((line, _)) = a else { break };
                inflight.push((reference.now() + latency, line));
            }
            loop {
                let a = reference.pop_writeback();
                let b = batched.pop_writeback();
                prop_assert_eq!(a, b, "writeback streams diverge");
                if a.is_none() {
                    break;
                }
            }
            let now = reference.now();
            let mut still_pending = Vec::new();
            for (at, line) in inflight.drain(..) {
                if at <= now {
                    reference.complete_read(line, at);
                    batched.complete_read(line, at);
                } else {
                    still_pending.push((at, line));
                }
            }
            inflight = still_pending;
            let mut wa = SnapWriter::new();
            let mut wb = SnapWriter::new();
            reference.save_snap(&mut wa);
            batched.save_snap(&mut wb);
            prop_assert_eq!(
                wa.into_bytes(),
                wb.into_bytes(),
                "snapshots diverge at cycle {}",
                now
            );
        }
    }
}
