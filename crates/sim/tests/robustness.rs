//! Integration tests of the robustness layer: protocol checker wiring,
//! deterministic fault injection, and the forward-progress watchdog at the
//! full-system level.

use burst_core::{
    Access, AccessKind, AccessScheduler, Completion, CtrlStats, EnqueueOutcome, FaultConfig,
    Mechanism, Outstanding, StallDiagnostic, WatchdogConfig,
};
use burst_dram::{Cycle, Dram};
use burst_sim::{simulate, RunError, RunLength, System, SystemConfig};
use burst_workloads::SpecBenchmark;

#[test]
fn checker_defaults_on_in_debug_builds() {
    let cfg = SystemConfig::baseline();
    assert_eq!(cfg.checker, cfg!(debug_assertions));
    assert!(cfg.faults.is_none(), "fault-free by default");
}

/// Acceptance: with the checker shadowing every command, all Table 4
/// mechanisms run protocol-clean on a real workload.
#[test]
fn all_paper_mechanisms_protocol_clean() {
    for m in Mechanism::all_paper() {
        let cfg = SystemConfig::baseline()
            .with_mechanism(m)
            .with_checker(true);
        let r = simulate(
            &cfg,
            SpecBenchmark::Swim.workload(11),
            RunLength::Instructions(3_000),
        );
        assert_eq!(
            r.robustness.violations,
            0,
            "{}: DDR2 protocol violations on swim",
            m.name()
        );
    }
}

/// Acceptance: fault-injected runs with a fixed seed are deterministic —
/// the same seed reproduces the same `RobustnessReport` — and complete.
#[test]
fn fault_runs_are_deterministic_and_complete() {
    let faults = FaultConfig {
        seed: 7,
        read_error_permille: 80,
        write_retry_permille: 80,
        max_retries: 4,
    };
    let cfg = SystemConfig::baseline()
        .with_mechanism(Mechanism::BurstTh(52))
        .with_checker(true)
        .with_faults(Some(faults));
    cfg.validate().expect("fault config is valid");
    let run = || {
        simulate(
            &cfg,
            SpecBenchmark::Swim.workload(11),
            RunLength::Instructions(8_000),
        )
    };
    let a = run();
    let b = run();
    assert!(
        a.robustness.faults_injected > 0,
        "injection must actually fire"
    );
    assert_eq!(a.robustness.retries, a.robustness.faults_injected);
    assert_eq!(
        a.robustness, b.robustness,
        "same seed must reproduce the same report"
    );
    assert_eq!(
        a.robustness.violations, 0,
        "retries must stay protocol-clean"
    );
    assert_eq!(a.reads(), b.reads());
    assert_eq!(a.writes(), b.writes());
}

#[test]
fn different_fault_seeds_differ() {
    let base = SystemConfig::baseline()
        .with_mechanism(Mechanism::BurstTh(52))
        .with_checker(true);
    let report = |seed| {
        let faults = FaultConfig {
            seed,
            read_error_permille: 80,
            write_retry_permille: 80,
            max_retries: 4,
        };
        simulate(
            &base.with_faults(Some(faults)),
            SpecBenchmark::Swim.workload(11),
            RunLength::Instructions(8_000),
        )
        .robustness
    };
    assert_ne!(
        report(1),
        report(2),
        "distinct seeds should produce distinct fault plans"
    );
}

/// A scheduler that accepts accesses but never issues a transaction — the
/// pathological case the watchdog exists to catch.
#[derive(Debug)]
struct DeadScheduler {
    stats: CtrlStats,
    outstanding: Outstanding,
    first: Option<(burst_core::AccessId, Cycle)>,
    stall: Option<StallDiagnostic>,
    limit: Cycle,
}

impl DeadScheduler {
    fn new(limit: Cycle) -> Self {
        DeadScheduler {
            stats: CtrlStats::new(256),
            outstanding: Outstanding::default(),
            first: None,
            stall: None,
            limit,
        }
    }
}

impl AccessScheduler for DeadScheduler {
    fn mechanism(&self) -> Mechanism {
        Mechanism::BkInOrder
    }

    fn can_accept(&self, _kind: AccessKind) -> bool {
        true
    }

    fn enqueue(
        &mut self,
        access: Access,
        now: Cycle,
        _completions: &mut Vec<Completion>,
    ) -> EnqueueOutcome {
        match access.kind {
            AccessKind::Read => self.outstanding.reads += 1,
            AccessKind::Write => self.outstanding.writes += 1,
        }
        self.first.get_or_insert((access.id, now));
        EnqueueOutcome::Queued
    }

    fn tick(&mut self, dram: &mut Dram, now: Cycle, _completions: &mut Vec<Completion>) {
        dram.tick(now);
        if self.stall.is_none() && self.outstanding.total() > 0 {
            if let Some((id, since)) = self.first {
                if now.saturating_sub(since) > self.limit {
                    self.stall = Some(StallDiagnostic {
                        since,
                        at: now,
                        reads: self.outstanding.reads,
                        writes: self.outstanding.writes,
                        oldest_id: Some(id),
                        oldest_age: now - since,
                        state_hash: 0,
                    });
                }
            }
        }
    }

    fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    fn outstanding(&self) -> Outstanding {
        self.outstanding
    }

    fn stall_diagnostic(&self) -> Option<StallDiagnostic> {
        self.stall
    }
}

/// Acceptance: a no-progress stall surfaces as a structured diagnostic
/// error from `try_run` instead of hanging or tripping a bare assert.
#[test]
fn stalled_controller_returns_diagnostic_error() {
    let cfg = SystemConfig::baseline();
    let mut sys = System::with_scheduler(&cfg, Box::new(DeadScheduler::new(500)));
    let mut workload = SpecBenchmark::Swim.workload(11);
    let err = sys
        .try_run(&mut workload, RunLength::Instructions(1_000_000))
        .expect_err("a dead controller must be reported, not spun on");
    match err {
        RunError::ControllerStall(diag) => {
            assert!(
                diag.reads + diag.writes > 0,
                "stall with nothing outstanding: {diag}"
            );
            assert!(
                diag.at - diag.since > 500,
                "stall declared too early: {diag}"
            );
            assert!(diag.oldest_id.is_some());
            let msg = err.to_string();
            assert!(
                msg.contains("no forward progress"),
                "diagnostic text: {msg}"
            );
        }
        other => panic!("expected a controller stall, got {other:?}"),
    }
    assert!(
        sys.stall_diagnostic().is_some(),
        "diagnostic stays latched on the system"
    );
}

/// The watchdog's escalation bound holds end-to-end: with a small
/// escalation age, no access in a full-system run exceeds the bound.
#[test]
fn escalation_bounds_access_age_in_full_system() {
    let mut cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52));
    cfg.ctrl.watchdog = WatchdogConfig {
        escalate_age: 2_000,
        stall_limit: 1_000_000,
    };
    let r = simulate(
        &cfg,
        SpecBenchmark::Swim.workload(11),
        RunLength::Instructions(8_000),
    );
    assert!(
        r.robustness.max_access_age <= 2_000 + 10_000,
        "max access age {} exceeds escalation bound",
        r.robustness.max_access_age
    );
    assert_eq!(r.robustness.watchdog_trips, 0);
}
