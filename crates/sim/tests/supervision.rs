//! Integration tests of the sweep supervision layer: crash isolation,
//! deadline enforcement, retry convergence under injected transient
//! faults, and journal-based resume producing byte-identical output.

use std::time::Duration;

use burst_core::Mechanism;
use burst_sim::experiments::Sweep;
use burst_sim::export::sweep_to_csv;
use burst_sim::journal::fingerprint;
use burst_sim::{
    supervise, CellOutcome, FailureKind, Journal, RunLength, SupervisorConfig, SystemConfig,
    TransientFaultPlan,
};
use burst_workloads::SpecBenchmark;

fn no_backoff() -> SupervisorConfig {
    SupervisorConfig {
        backoff_base_ms: 0,
        ..SupervisorConfig::default()
    }
}

/// Acceptance: a panicking cell becomes a structured `Failed` record while
/// every sibling completes, and outcomes stay in submission order.
#[test]
fn panicking_cell_is_isolated_and_siblings_complete_in_order() {
    let items: Vec<u32> = (0..8).collect();
    let cfg = SupervisorConfig {
        max_retries: 1,
        ..no_backoff()
    };
    let outcomes = supervise(&items, 4, &cfg, |_, &x, _| {
        if x == 3 {
            panic!("cell {x} exploded");
        }
        Ok(x * 10)
    });
    assert_eq!(outcomes.len(), items.len());
    for (i, outcome) in outcomes.into_iter().enumerate() {
        if i == 3 {
            match outcome {
                CellOutcome::Failed {
                    kind,
                    attempts,
                    payload,
                } => {
                    assert_eq!(kind, FailureKind::Panic);
                    assert_eq!(attempts, 2, "one retry was granted");
                    assert!(payload.contains("exploded"), "payload: {payload}");
                }
                other => panic!("cell 3 must fail, got {other:?}"),
            }
        } else {
            assert_eq!(outcome.value(), Some(i as u32 * 10));
        }
    }
}

/// A cell that overruns its wall-clock deadline is reported as
/// `FailureKind::Deadline` without blocking its siblings.
#[test]
fn deadline_expiry_is_isolated() {
    let items: Vec<u32> = (0..4).collect();
    let cfg = SupervisorConfig {
        deadline: Some(Duration::from_millis(50)),
        max_retries: 0,
        ..no_backoff()
    };
    let outcomes = supervise(&items, 2, &cfg, |_, &x, _| {
        if x == 1 {
            std::thread::sleep(Duration::from_millis(400));
        }
        Ok(x)
    });
    for (i, outcome) in outcomes.into_iter().enumerate() {
        if i == 1 {
            match outcome {
                CellOutcome::Failed { kind, attempts, .. } => {
                    assert_eq!(kind, FailureKind::Deadline);
                    assert_eq!(attempts, 1);
                }
                other => panic!("cell 1 must time out, got {other:?}"),
            }
        } else {
            assert_eq!(outcome.value(), Some(i as u32));
        }
    }
}

/// Outcomes come back in item order regardless of worker count.
#[test]
fn outcomes_preserve_item_order_across_job_counts() {
    let items: Vec<u64> = (0..32).collect();
    for jobs in [1usize, 3, 8] {
        let outcomes = supervise(&items, jobs, &no_backoff(), |_, &x, _| Ok(x + 1));
        let values: Vec<u64> = outcomes
            .into_iter()
            .map(|o| o.value().expect("all cells succeed"))
            .collect();
        assert_eq!(values, (1..=32).collect::<Vec<u64>>(), "jobs={jobs}");
    }
}

/// Proptest-style acceptance: across many fault-plan seeds, a sweep whose
/// attempts fail transiently converges — after retries — to exactly the
/// reports of a fault-free sweep. The injection plan's `max_failures`
/// bound guarantees convergence whenever the supervisor grants at least
/// that many retries.
#[test]
fn injected_transient_faults_converge_to_fault_free_sweep() {
    let base = SystemConfig::baseline();
    let benches = [SpecBenchmark::Swim, SpecBenchmark::Gzip];
    let mechs = [Mechanism::BkInOrder, Mechanism::BurstTh(52)];
    let len = RunLength::Instructions(2_000);
    let clean = Sweep::run_supervised(
        "t",
        &base,
        &benches,
        &mechs,
        len,
        11,
        2,
        &no_backoff(),
        None,
        None,
    );
    assert!(clean.ok(), "fault-free sweep completes");
    let want: Vec<_> = clean.value.cells.iter().map(|c| &c.report).collect();
    for seed in 0..8u64 {
        let sup = SupervisorConfig {
            max_retries: 3,
            inject: Some(TransientFaultPlan {
                seed,
                fail_permille: 400,
                max_failures: 3,
            }),
            ..no_backoff()
        };
        let faulty =
            Sweep::run_supervised("t", &base, &benches, &mechs, len, 11, 2, &sup, None, None);
        assert!(
            faulty.ok(),
            "seed {seed}: retries must absorb transient faults: {:?}",
            faulty.failures
        );
        assert_eq!(faulty.resumed, 0);
        let got: Vec<_> = faulty.value.cells.iter().map(|c| &c.report).collect();
        assert_eq!(got, want, "seed {seed}: reports must match fault-free run");
    }
}

/// End-to-end crash simulation at the library level: journal a sweep,
/// truncate the file mid-record as a crash would, resume, and demand a
/// byte-identical CSV versus the uninterrupted run.
#[test]
fn truncated_journal_resume_reproduces_byte_identical_csv() {
    let dir = std::env::temp_dir().join(format!("burst-supervision-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sweep.journal");
    let _ = std::fs::remove_file(&path);

    let base = SystemConfig::baseline();
    let benches = [SpecBenchmark::Swim, SpecBenchmark::Gzip];
    let mechs = [
        Mechanism::BkInOrder,
        Mechanism::RowHit,
        Mechanism::BurstTh(52),
    ];
    let len = RunLength::Instructions(2_000);
    let total = benches.len() * mechs.len();
    let run = |journal: Option<&Journal>| {
        Sweep::run_supervised(
            "t",
            &base,
            &benches,
            &mechs,
            len,
            11,
            2,
            &no_backoff(),
            journal,
            None,
        )
    };

    let clean = run(None);
    assert!(clean.ok());
    let want = sweep_to_csv(&clean.value);

    let fp = fingerprint("supervision itest v1");
    {
        let journal = Journal::create(&path, fp).expect("create journal");
        assert!(run(Some(&journal)).ok());
    }
    // Simulate a SIGKILL mid-append: chop the file inside the last record,
    // leaving a partial line with no trailing newline.
    let bytes = std::fs::read(&path).expect("read journal");
    assert!(bytes.ends_with(b"\n"));
    std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate journal");

    let journal = Journal::resume(&path, fp).expect("resume journal");
    assert!(journal.completed_cells() < total, "tail record was dropped");
    assert!(journal.completed_cells() > 0, "whole records survive");
    assert_eq!(journal.ignored_lines(), 1, "exactly the truncated tail");

    let resumed = run(Some(&journal));
    assert!(resumed.ok());
    assert_eq!(resumed.resumed, journal.completed_cells());
    assert_eq!(
        sweep_to_csv(&resumed.value),
        want,
        "resumed CSV must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
