//! Event-engine contract tests.
//!
//! Two layers of defence for the discrete-event core:
//!
//! 1. A property test of the [`AccessScheduler`] busy-event contract at
//!    the component level: after arbitrary traffic, the event reported by
//!    `next_busy_event` is never stale (it lies strictly after the cycle
//!    it was evaluated at) and never overshot — replaying the blocked
//!    stretch with `advance_blocked` leaves the scheduler bit-identical
//!    to ticking every cycle, and the device untouched.
//! 2. End-to-end equivalence of every figure pipeline: each experiment
//!    driver run under [`Engine::Event`] must export byte-identical CSVs
//!    to the per-cycle reference engine.

use burst_core::{Access, AccessId, AccessKind, AccessScheduler, CtrlConfig, Mechanism};
use burst_dram::{AddressMapping, Dram, DramConfig, Loc, PhysAddr};
use burst_sim::experiments::{fig11_with_config, fig12_with_config, fig8_with_config, Sweep};
use burst_sim::export::{
    fig10_to_csv, fig12_to_csv, fig7_to_csv, fig9_to_csv, outstanding_to_csv, sweep_to_csv,
};
use burst_sim::{Engine, RunLength, SystemConfig};
use burst_snap::{SnapReader, SnapWriter};
use burst_workloads::SpecBenchmark;
use proptest::prelude::*;

fn all_mechanisms() -> Vec<Mechanism> {
    let mut v = Mechanism::all_paper().to_vec();
    v.extend([
        Mechanism::BurstDyn,
        Mechanism::BurstCrit,
        Mechanism::AdaptiveHistory,
    ]);
    v
}

// ---------------------------------------------------------------------------
// Component-level contract: next_busy_event / advance_blocked.
// ---------------------------------------------------------------------------

/// One request of the random traffic pattern: where it lands, its
/// direction, and how many cycles to tick before offering the next one.
#[derive(Debug, Clone, Copy)]
struct Req {
    bank: u8,
    row: u32,
    col: u32,
    write: bool,
    gap: u8,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (0u8..4, 0u32..8, 0u32..16, any::<bool>(), 0u8..12).prop_map(|(bank, row, col, write, gap)| {
        Req {
            bank,
            row,
            // Bus-width units; stay inside the small geometry's 256 columns.
            col: col * 8,
            write,
            gap,
        }
    })
}

fn scheduler_bytes(sched: &dyn AccessScheduler) -> Vec<u8> {
    let mut w = SnapWriter::new();
    sched
        .save_state(&mut w)
        .expect("in-tree schedulers support checkpointing");
    w.into_bytes()
}

fn dram_bytes(dram: &Dram) -> Vec<u8> {
    let mut w = SnapWriter::new();
    dram.save_snap(&mut w);
    w.into_bytes()
}

fn clone_scheduler(
    mechanism: Mechanism,
    cfg: CtrlConfig,
    dcfg: &DramConfig,
    bytes: &[u8],
) -> Box<dyn AccessScheduler> {
    let mut twin = mechanism.build(cfg, dcfg.geometry);
    let mut r = SnapReader::new(bytes);
    twin.load_state(&mut r).expect("snapshot round-trips");
    r.finish().expect("snapshot fully consumed");
    twin
}

fn clone_dram(dcfg: &DramConfig, bytes: &[u8]) -> Dram {
    let mut twin = Dram::new(*dcfg, AddressMapping::PageInterleaving);
    let mut r = SnapReader::new(bytes);
    twin.load_snap(&mut r).expect("device snapshot round-trips");
    r.finish().expect("device snapshot fully consumed");
    twin
}

/// Validates the busy-event contract at cycle `now` (the next cycle to be
/// ticked): the reported event must lie strictly after `now - 1`, no
/// completion may surface strictly before it, and batch-replaying the
/// blocked stretch must be bit-identical to ticking through it.
fn check_busy_event_contract(
    mechanism: Mechanism,
    cfg: CtrlConfig,
    dcfg: &DramConfig,
    sched: &mut Box<dyn AccessScheduler>,
    dram: &Dram,
    now: u64,
) -> Result<(), TestCaseError> {
    if sched.quiescent() {
        return Ok(());
    }
    let last = now - 1;
    let Some(event) = sched.next_busy_event(dram, last) else {
        return Ok(());
    };
    // Never stale: the event lies strictly after the cycle it was
    // evaluated at (event == now means "step the next cycle", which is
    // valid; event <= last would replay an already-executed cycle).
    prop_assert!(
        event > last,
        "{}: stale busy event {event} at last ticked cycle {last}",
        mechanism.name()
    );
    // The jump is also bounded by the device horizon, exactly as the
    // system's busy_horizon folds it.
    let bound = dram.next_event(last).map_or(event, |d| event.min(d));
    // Cap the replay so pathological horizons stay cheap to verify.
    let n = bound.saturating_sub(now).min(64);
    if n == 0 {
        return Ok(());
    }

    let sched_snap = scheduler_bytes(sched.as_ref());
    let dram_snap = dram_bytes(dram);
    let mut ticker = clone_scheduler(mechanism, cfg, dcfg, &sched_snap);
    let mut dram_twin = clone_dram(dcfg, &dram_snap);
    let mut completions = Vec::new();
    for t in now..now + n {
        ticker.tick(&mut dram_twin, t, &mut completions);
        prop_assert!(
            completions.is_empty(),
            "{}: completion at cycle {t} inside blocked stretch ending at {event}",
            mechanism.name()
        );
    }
    let mut jumper = clone_scheduler(mechanism, cfg, dcfg, &sched_snap);
    jumper.advance_blocked(now, n);
    prop_assert_eq!(
        scheduler_bytes(ticker.as_ref()),
        scheduler_bytes(jumper.as_ref()),
        "{}: advance_blocked({now}, {n}) diverged from ticking",
        mechanism.name()
    );
    // The device must sit still across the whole blocked stretch: the
    // system never ticks it inside a busy jump.
    prop_assert_eq!(
        dram_bytes(&dram_twin),
        dram_snap,
        "{}: device state changed before its own horizon",
        mechanism.name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The busy-event contract holds for every scheduler under random
    /// traffic: never stale, never overshot, batch replay bit-identical.
    #[test]
    fn next_busy_event_is_never_stale_and_never_overshot(
        mech_idx in 0usize..11,
        reqs in prop::collection::vec(req_strategy(), 1..24),
    ) {
        let mechanism = all_mechanisms()[mech_idx];
        let cfg = CtrlConfig::baseline();
        let dcfg = DramConfig::small();
        let mut dram = Dram::new(dcfg, AddressMapping::PageInterleaving);
        let mut sched = mechanism.build(cfg, dcfg.geometry);
        let mut completions = Vec::new();
        let mut now: u64 = 0;
        let mut next_id: u64 = 0;

        for req in &reqs {
            let kind = if req.write { AccessKind::Write } else { AccessKind::Read };
            if sched.can_accept(kind) {
                let loc = Loc::new(0, 0, req.bank, req.row, req.col);
                // A loc-derived address so repeated locations exercise
                // write-queue forwarding.
                let addr = PhysAddr::new(
                    (u64::from(req.bank) << 40) | (u64::from(req.row) << 20) | u64::from(req.col),
                );
                let access = Access::new(AccessId::new(next_id), kind, addr, loc, now);
                next_id += 1;
                sched.enqueue(access, now, &mut completions);
                completions.clear();
            }
            for _ in 0..=req.gap {
                sched.tick(&mut dram, now, &mut completions);
                completions.clear();
                now += 1;
            }
            check_busy_event_contract(mechanism, cfg, &dcfg, &mut sched, &dram, now)?;
        }

        // Drain, re-validating the contract periodically until quiescence.
        let mut guard = 0u64;
        while !sched.quiescent() {
            sched.tick(&mut dram, now, &mut completions);
            completions.clear();
            now += 1;
            if guard.is_multiple_of(16) {
                check_busy_event_contract(mechanism, cfg, &dcfg, &mut sched, &dram, now)?;
            }
            guard += 1;
            prop_assert!(guard < 100_000, "{}: drain did not converge", mechanism.name());
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end: every figure pipeline exports identical CSVs per engine.
// ---------------------------------------------------------------------------

fn base(engine: Engine) -> SystemConfig {
    SystemConfig::baseline().with_engine(engine)
}

const ENGINES: [Engine; 2] = [Engine::Event, Engine::CycleNoSkip];

#[test]
fn sweep_figures_are_engine_invariant() {
    // One grid feeds Figures 7, 9 and 10 (BkInOrder included so the
    // Figure 10 normalisation baseline exists).
    let benchmarks = [SpecBenchmark::Swim, SpecBenchmark::Mcf];
    let mechanisms = [
        Mechanism::BkInOrder,
        Mechanism::RowHit,
        Mechanism::Burst,
        Mechanism::BurstTh(52),
    ];
    let len = RunLength::Instructions(1_200);
    let csvs: Vec<[String; 4]> = ENGINES
        .iter()
        .map(|&engine| {
            let sweep = Sweep::run_with_config(&base(engine), &benchmarks, &mechanisms, len, 9, 1);
            [
                sweep_to_csv(&sweep),
                fig7_to_csv(&sweep.fig7_rows()),
                fig9_to_csv(&sweep.fig9_rows()),
                fig10_to_csv(&sweep.fig10_rows()).expect("BkInOrder baseline present"),
            ]
        })
        .collect();
    assert_eq!(csvs[0], csvs[1], "sweep CSVs differ between engines");
}

#[test]
fn outstanding_figures_are_engine_invariant() {
    let len = RunLength::Instructions(1_000);
    let csvs: Vec<[String; 2]> = ENGINES
        .iter()
        .map(|&engine| {
            [
                outstanding_to_csv(&fig8_with_config(
                    &base(engine),
                    SpecBenchmark::Swim,
                    len,
                    11,
                    1,
                )),
                outstanding_to_csv(&fig11_with_config(
                    &base(engine),
                    SpecBenchmark::Mcf,
                    len,
                    11,
                    1,
                )),
            ]
        })
        .collect();
    assert_eq!(csvs[0], csvs[1], "outstanding CSVs differ between engines");
}

#[test]
fn threshold_sweep_is_engine_invariant() {
    let len = RunLength::Instructions(600);
    let csvs: Vec<String> = ENGINES
        .iter()
        .map(|&engine| {
            fig12_to_csv(&fig12_with_config(
                &base(engine),
                &[SpecBenchmark::Swim],
                len,
                3,
                1,
            ))
        })
        .collect();
    assert_eq!(csvs[0], csvs[1], "Figure 12 CSV differs between engines");
}
