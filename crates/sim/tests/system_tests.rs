//! Integration tests of the simulation harness itself.

use burst_core::Mechanism;
use burst_sim::experiments::{fig12_mechanisms, fig8_mechanisms, Sweep};
use burst_sim::{simulate, RunLength, SystemConfig};
use burst_workloads::SpecBenchmark;

#[test]
fn baseline_config_matches_table3() {
    let cfg = SystemConfig::baseline();
    assert_eq!(cfg.cpu.rob_size, 196);
    assert_eq!(cfg.cpu.width, 8);
    assert_eq!(cfg.cpu.lsq_size, 32);
    assert_eq!(cfg.cpu.cpu_ratio, 10, "4 GHz CPU / 400 MHz memory clock");
    assert_eq!(cfg.ctrl.pool_capacity, 256);
    assert_eq!(cfg.ctrl.write_capacity, 64);
    assert_eq!(cfg.dram.geometry.total_banks(), 32);
}

#[test]
fn reads_and_writes_balance_cpu_and_controller() {
    let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52));
    let r = simulate(
        &cfg,
        SpecBenchmark::Swim.workload(3),
        RunLength::Instructions(10_000),
    );
    // Every controller read was requested by the CPU; forwarded reads never
    // reach DRAM but are counted as controller completions.
    assert!(r.reads() <= r.cpu.mem_reads + r.ctrl.forwards);
    // Controller writes come from CPU writebacks (some may still be queued
    // at the end of the run).
    assert!(r.writes() <= r.cpu.mem_writes);
    // Forwarded reads never reach the device: DRAM column reads are at
    // most the non-forwarded completions (in-flight ones excluded).
    assert!(r.bus.reads <= r.reads());
    // Every activate belongs to some row empty/conflict service.
    assert!(r.bus.activates >= r.ctrl.row_empties + r.ctrl.row_conflicts - 64);
}

#[test]
fn warm_caches_affect_write_traffic() {
    let cold = SystemConfig::baseline().with_warm_mem_ops(0);
    let warm = SystemConfig::baseline(); // default warming
    let cold_r = simulate(
        &cold,
        SpecBenchmark::Swim.workload(3),
        RunLength::Instructions(8_000),
    );
    let warm_r = simulate(
        &warm,
        SpecBenchmark::Swim.workload(3),
        RunLength::Instructions(8_000),
    );
    assert!(
        warm_r.writes() > cold_r.writes() * 2,
        "warming must enable writeback traffic: warm {} vs cold {}",
        warm_r.writes(),
        cold_r.writes()
    );
}

#[test]
fn sweep_cell_lookup() {
    let sweep = Sweep::run(
        &[SpecBenchmark::Gzip],
        &[Mechanism::BkInOrder, Mechanism::Burst],
        RunLength::Instructions(2_000),
        1,
    );
    assert!(sweep.cell(SpecBenchmark::Gzip, Mechanism::Burst).is_some());
    assert!(sweep.cell(SpecBenchmark::Swim, Mechanism::Burst).is_none());
    assert_eq!(sweep.mechanisms().len(), 2);
    assert_eq!(sweep.benchmarks(), vec![SpecBenchmark::Gzip]);
}

#[test]
fn fig8_and_fig12_mechanism_lists() {
    assert_eq!(fig8_mechanisms().len(), 6);
    let sweep = fig12_mechanisms();
    assert_eq!(sweep.len(), 12);
    assert_eq!(sweep[0], Mechanism::Burst);
    assert_eq!(*sweep.last().unwrap(), Mechanism::BurstRp);
}

#[test]
fn dynamic_threshold_mechanism_runs() {
    let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstDyn);
    let r = simulate(
        &cfg,
        SpecBenchmark::Lucas.workload(5),
        RunLength::Instructions(10_000),
    );
    assert_eq!(r.mechanism, Mechanism::BurstDyn);
    assert!(r.reads() > 0);
    // The dynamic variant must stay in the same performance ballpark as
    // the static optimum (it adapts around it).
    let th = simulate(
        &SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52)),
        SpecBenchmark::Lucas.workload(5),
        RunLength::Instructions(10_000),
    );
    let ratio = r.cpu_cycles as f64 / th.cpu_cycles as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "Burst_DYN vs TH52 ratio {ratio:.2}"
    );
}

#[test]
fn effective_bandwidth_is_sane() {
    let cfg = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(52));
    let r = simulate(
        &cfg,
        SpecBenchmark::Swim.workload(3),
        RunLength::Instructions(10_000),
    );
    let gbs = r.effective_bandwidth_gbs(400e6, 8);
    // The theoretical peak of dual-channel DDR2-800 is 12.8 GB/s; a single
    // run must land strictly below it and above zero.
    assert!(gbs > 0.0);
    assert!(
        gbs < 12.8,
        "bandwidth {gbs:.1} GB/s exceeds the dual-channel peak"
    );
}

#[test]
fn ipc_bounded_by_width() {
    let cfg = SystemConfig::baseline();
    let r = simulate(
        &cfg,
        SpecBenchmark::Mesa.workload(1),
        RunLength::Instructions(10_000),
    );
    assert!(r.ipc() <= 8.0, "IPC {} exceeds the 8-wide core", r.ipc());
}

#[test]
fn validate_accepts_baseline_and_rejects_nonsense() {
    assert!(SystemConfig::baseline().validate().is_ok());

    let mut bad = SystemConfig::baseline();
    bad.dram.geometry.channels = 3;
    let err = bad
        .validate()
        .expect_err("3 channels is not a power of two");
    assert!(err.to_string().contains("power of two"));

    let mut bad = SystemConfig::baseline();
    bad.ctrl.write_capacity = 0;
    assert!(bad.validate().is_err());

    let mut bad = SystemConfig::baseline();
    bad.ctrl.write_capacity = 1024;
    assert!(
        bad.validate().is_err(),
        "write capacity above pool capacity"
    );

    let mut bad = SystemConfig::baseline().with_mechanism(Mechanism::BurstTh(1000));
    assert!(bad.validate().is_err(), "threshold above write capacity");
    bad = bad.with_mechanism(Mechanism::BurstTh(52));
    assert!(bad.validate().is_ok());

    let mut bad = SystemConfig::baseline();
    bad.cpu.cpu_ratio = 0;
    assert!(bad.validate().is_err());
}
