//! Acceptance tests for the checkpoint/restore layer and the lockstep
//! oracle: a run paused at an arbitrary memory cycle — mid-burst,
//! mid-refresh, wherever the budget lands — then checkpointed to disk,
//! reloaded and continued must produce a byte-identical [`SimReport`];
//! and the oracle must pass cleanly over the full paper mechanism set
//! while pinpointing the exact first divergent cycle under an artificial
//! perturbation.

use burst_core::Mechanism;
use burst_sim::journal::fingerprint;
use burst_sim::{
    oracle_simulate, try_simulate, Checkpoint, ChunkOutcome, OracleConfig, OracleError,
    PerturbKind, Perturbation, RunCursor, RunLength, System, SystemConfig,
};
use burst_workloads::{CountingSource, SpecBenchmark};
use proptest::prelude::*;

fn config(mechanism: Mechanism) -> SystemConfig {
    SystemConfig::baseline()
        .with_mechanism(mechanism)
        .with_warm_mem_ops(1_000)
}

proptest! {
    // Each case runs two full simulations plus a disk round-trip: keep
    // the case count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Restore-then-continue equals never-interrupted, for random seeds,
    /// mechanisms and pause cycles. The pause budget is an arbitrary
    /// memory-cycle count, so checkpoints land mid-burst and mid-refresh
    /// as often as anywhere else.
    #[test]
    fn checkpoint_restore_round_trip_is_byte_identical(
        seed in any::<u64>(),
        mech_idx in 0usize..8,
        bench_idx in 0usize..3,
        pause in 200u64..4_000,
    ) {
        let mechanism = Mechanism::all_paper()[mech_idx];
        let bench = [
            SpecBenchmark::Mcf,
            SpecBenchmark::Swim,
            SpecBenchmark::Parser,
        ][bench_idx];
        let cfg = config(mechanism);
        let len = RunLength::Instructions(1_500);
        let reference = try_simulate(&cfg, bench.workload(seed), len)
            .expect("reference run");

        // Run until the pause budget expires, checkpoint through the
        // full on-disk format, then abandon the first system.
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "burst-ckpt-prop-{}-{seed:x}-{mech_idx}-{bench_idx}-{pause}.ckpt",
            std::process::id()
        ));
        let fp = fingerprint("checkpoint proptest");
        let mut sys = System::new(&cfg);
        let mut w = CountingSource::new(bench.workload(seed));
        sys.warm(&mut w);
        let mut cursor = RunCursor::start(&sys);
        let outcome = sys
            .try_run_chunk(&mut w, len, &mut cursor, pause)
            .expect("paused run");
        if outcome == ChunkOutcome::Done {
            // The whole run fit inside the budget: nothing to restore,
            // the direct report must already match.
            prop_assert_eq!(sys.report(bench.name()), reference);
            return Ok(());
        }
        Checkpoint::capture(&sys, fp, w.consumed(), cursor)
            .expect("capture")
            .save(&path)
            .expect("save");
        drop(sys);

        // Reload from disk into a fresh system and continue to the end.
        let ckpt = Checkpoint::load(&path, fp).expect("load");
        let _ = std::fs::remove_file(&path);
        let mut sys = System::new(&cfg);
        ckpt.restore_into(&mut sys).expect("restore");
        let mut w = CountingSource::new(bench.workload(seed));
        w.skip(ckpt.ops_consumed);
        let mut cursor = ckpt.cursor;
        loop {
            match sys
                .try_run_chunk(&mut w, len, &mut cursor, u64::MAX)
                .expect("continued run")
            {
                ChunkOutcome::Done => break,
                ChunkOutcome::Paused => {}
            }
        }
        prop_assert_eq!(
            sys.report(bench.name()),
            reference,
            "restored run diverged for {} on {}",
            mechanism.name(),
            bench.name()
        );
    }
}

/// The acceptance gate for `--oracle`: every paper mechanism's
/// skip-enabled engine stays in lockstep with the naive per-cycle engine
/// to the end of the run, and the oracle's report equals the plain one.
#[test]
fn oracle_passes_cleanly_on_the_full_paper_mechanism_set() {
    let len = RunLength::Instructions(4_000);
    for m in Mechanism::all_paper() {
        let cfg = config(m);
        let oracle = oracle_simulate(
            &cfg,
            || SpecBenchmark::Swim.workload(9),
            len,
            &OracleConfig { epoch: 1_024 },
            None,
        )
        .unwrap_or_else(|e| panic!("oracle failed for {}: {e}", m.name()));
        let plain = try_simulate(&cfg, SpecBenchmark::Swim.workload(9), len).expect("plain run");
        assert_eq!(oracle, plain, "oracle must not perturb {}", m.name());
    }
}

/// Bisection precision: a perturbation injected at one exact cycle is
/// reported at that exact cycle, for several cycles and epochs (the
/// perturbation cycle falls at different offsets inside the epoch).
#[test]
fn oracle_bisects_perturbations_to_their_exact_cycle() {
    for (at, epoch) in [(2_111u64, 512u64), (5_000, 2_048), (7_777, 1_000)] {
        let err = oracle_simulate(
            &config(Mechanism::BurstTh(52)),
            || SpecBenchmark::Mcf.workload(21),
            RunLength::Instructions(30_000),
            &OracleConfig { epoch },
            Some(Perturbation {
                at,
                kind: PerturbKind::StallAccounting(3),
            }),
        )
        .expect_err("perturbed engines must diverge");
        match err {
            OracleError::Divergence(d) => {
                assert_eq!(
                    d.first_divergent_cycle, at,
                    "bisection missed the perturbed cycle (epoch {epoch})"
                );
                assert_eq!(d.divergent_components(), vec!["cpu"]);
            }
            other => panic!("expected a divergence, got {other}"),
        }
    }
}
