//! Determinism gate for clock jumping: skipping cycles — quiescent
//! stretches under [`Engine::Cycle`], quiescent *and* busy stretches
//! under the full discrete-event [`Engine::Event`] — must be invisible in
//! every output. A run under any engine must produce a [`SimReport`]
//! equal field by field to the per-cycle reference — statistics,
//! histograms, robustness counters, everything — for every mechanism, and
//! the device's `next_event` horizon must never overshoot a cycle in
//! which a tick would have changed state.

use burst_core::Mechanism;
use burst_dram::{Channel, Command, Cycle, Dir, DramConfig, Loc, RowState};
use burst_sim::{simulate, Engine, RunLength, System, SystemConfig};
use burst_workloads::SpecBenchmark;
use proptest::prelude::*;

/// All mechanisms, paper set plus extensions — every `AccessScheduler`
/// implementation must honour the batch-advance contract.
fn all_mechanisms() -> Vec<Mechanism> {
    let mut v = Mechanism::all_paper().to_vec();
    v.extend([
        Mechanism::BurstDyn,
        Mechanism::BurstCrit,
        Mechanism::AdaptiveHistory,
    ]);
    v
}

fn config(mechanism: Mechanism, engine: Engine) -> SystemConfig {
    SystemConfig::baseline()
        .with_mechanism(mechanism)
        .with_warm_mem_ops(5_000)
        .with_engine(engine)
}

#[test]
fn every_engine_is_bit_identical_on_idle_heavy_workload() {
    // mcf is 80% pointer chase (MLP 1): the CPU spends most of its time
    // fully stalled, so this workload maximises skipping opportunity.
    for m in all_mechanisms() {
        let reference = simulate(
            &config(m, Engine::CycleNoSkip),
            SpecBenchmark::Mcf.workload(7),
            RunLength::Instructions(2_000),
        );
        for engine in [Engine::Cycle, Engine::Event] {
            let report = simulate(
                &config(m, engine),
                SpecBenchmark::Mcf.workload(7),
                RunLength::Instructions(2_000),
            );
            assert_eq!(
                report,
                reference,
                "engine {engine} changed the report for {}",
                m.name()
            );
        }
    }
}

#[test]
fn event_engine_is_bit_identical_on_bandwidth_bound_workload() {
    // swim streams with high MLP: the memory system is busy almost
    // throughout, so this workload exercises the event engine's
    // busy-period jumps (quiescent skipping barely fires here).
    for m in all_mechanisms() {
        let reference = simulate(
            &config(m, Engine::CycleNoSkip),
            SpecBenchmark::Swim.workload(13),
            RunLength::Instructions(2_000),
        );
        let event = simulate(
            &config(m, Engine::Event),
            SpecBenchmark::Swim.workload(13),
            RunLength::Instructions(2_000),
        );
        assert_eq!(
            event,
            reference,
            "event engine changed the report for {}",
            m.name()
        );
    }
}

#[test]
fn every_engine_is_bit_identical_in_mem_cycles_mode() {
    // MemCycles mode exercises the budget-capped skip loop: the jump must
    // stop exactly at the cycle budget, never overshoot it.
    for m in [Mechanism::BkInOrder, Mechanism::BurstTh(52)] {
        let reference = simulate(
            &config(m, Engine::CycleNoSkip),
            SpecBenchmark::Mcf.workload(11),
            RunLength::MemCycles(40_000),
        );
        for engine in [Engine::Cycle, Engine::Event] {
            let report = simulate(
                &config(m, engine),
                SpecBenchmark::Mcf.workload(11),
                RunLength::MemCycles(40_000),
            );
            assert_eq!(report.mem_cycles, 40_000, "budget must be exact");
            assert_eq!(
                report,
                reference,
                "engine {engine} changed the report for {}",
                m.name()
            );
        }
    }
}

#[test]
fn skip_actually_engages_on_idle_heavy_workload() {
    // Guard against the equality tests passing vacuously because the
    // horizon never fires: on a pointer chase a large share of cycles
    // must be jumped, not stepped.
    let cfg = config(Mechanism::BurstTh(52), Engine::Cycle);
    let mut workload = SpecBenchmark::Mcf.workload(7);
    let mut sys = System::new(&cfg);
    sys.warm(&mut workload);
    sys.run(&mut workload, RunLength::Instructions(2_000));
    assert!(
        sys.skipped_cycles() > sys.mem_cycle() / 4,
        "only {} of {} cycles were skipped on an idle-heavy workload",
        sys.skipped_cycles(),
        sys.mem_cycle()
    );

    let mut workload = SpecBenchmark::Mcf.workload(7);
    let mut off = System::new(&cfg.with_engine(Engine::CycleNoSkip));
    off.warm(&mut workload);
    off.run(&mut workload, RunLength::Instructions(2_000));
    assert_eq!(
        off.skipped_cycles(),
        0,
        "the no-skip engine must never jump"
    );
}

#[test]
fn event_engine_actually_takes_busy_jumps() {
    // The busy-skip analogue of the vacuity guard: the event engine must
    // take real busy-period jumps, and its counters must account for
    // every cycle of the run.
    //
    // Calibration note: a bandwidth-bound stream (swim) is the WRONG
    // workload for a coverage floor. Its busy phases are event-dense by
    // nature — an arrival, delivery or transaction issue lands on almost
    // every cycle, so the horizon's veto arms correctly refuse to jump
    // (measured: 20 of 6369 cycles jumped at this budget; a 10% floor can
    // never hold and would only pass if the fold over-jumped, i.e. if it
    // were WRONG). Swim therefore checks only that the machinery engages
    // at all and that the accounting is exact. The coverage floor lives
    // on the pointer chase below, where stalled spans between bursts make
    // provable busy stretches common (measured: ~3.4% of cycles at this
    // budget; floored at 2% for headroom across timing-neutral refactors).
    let cfg = config(Mechanism::BurstTh(52), Engine::Event);
    let mut workload = SpecBenchmark::Swim.workload(7);
    let mut sys = System::new(&cfg);
    sys.warm(&mut workload);
    sys.run(&mut workload, RunLength::Instructions(5_000));
    let stats = sys.engine_stats();
    assert!(
        stats.busy_jumps > 0,
        "no busy jumps on a bandwidth-bound workload: {stats:?}"
    );
    assert_eq!(
        stats.steps + stats.skipped(),
        sys.mem_cycle(),
        "every cycle must be either stepped or jumped"
    );
    assert_eq!(sys.skipped_cycles(), stats.skipped());

    // Coverage floor on the idle-heavy workload: busy jumps must carry a
    // macroscopic share of the run, proving the fold finds real stretches.
    let mut workload = SpecBenchmark::Mcf.workload(7);
    let mut chase = System::new(&cfg);
    chase.warm(&mut workload);
    chase.run(&mut workload, RunLength::Instructions(2_000));
    let chase_stats = chase.engine_stats();
    assert!(
        chase_stats.busy_jumps > 0,
        "no busy jumps on a pointer chase: {chase_stats:?}"
    );
    assert!(
        chase_stats.busy_skipped > chase.mem_cycle() / 50,
        "busy jumps covered only {} of {} cycles",
        chase_stats.busy_skipped,
        chase.mem_cycle()
    );
    assert_eq!(
        chase_stats.steps + chase_stats.skipped(),
        chase.mem_cycle(),
        "every cycle must be either stepped or jumped"
    );

    // The cycle engine must never take busy jumps on the same run.
    let mut workload = SpecBenchmark::Swim.workload(7);
    let mut cyc = System::new(&cfg.with_engine(Engine::Cycle));
    cyc.warm(&mut workload);
    cyc.run(&mut workload, RunLength::Instructions(5_000));
    assert_eq!(cyc.engine_stats().busy_jumps, 0);
}

/// A request the greedy driver will execute: bank, row, col, read/write.
#[derive(Debug, Clone, Copy)]
struct Req {
    bank: u8,
    row: u32,
    col: u32,
    write: bool,
}

fn req_strategy(banks: u8, rows: u32, cols: u32) -> impl Strategy<Value = Req> {
    (0..banks, 0..rows, 0..cols, any::<bool>()).prop_map(|(bank, row, col, write)| Req {
        bank,
        row,
        col: col * 8,
        write,
    })
}

/// Greedily executes requests in order on one channel (ticking every
/// cycle), returning the channel and the last ticked cycle.
fn drive(cfg: DramConfig, reqs: &[Req]) -> (Channel, Cycle) {
    let mut ch = Channel::new(cfg);
    let mut now: Cycle = 0;
    for r in reqs {
        let loc = Loc::new(0, 0, r.bank, r.row, r.col);
        let dir = if r.write { Dir::Write } else { Dir::Read };
        loop {
            ch.tick(now);
            let cmd = match ch.row_state(loc) {
                RowState::Hit => Command::Column {
                    loc,
                    dir,
                    auto_precharge: false,
                },
                RowState::Empty => Command::Activate(loc),
                RowState::Conflict => Command::Precharge(loc),
            };
            if ch.can_issue(&cmd, now) {
                ch.issue(&cmd, now);
                if cmd.is_column() {
                    break;
                }
            }
            now += 1;
            assert!(now < 1_000_000, "driver stuck");
        }
        now += 1; // command bus: one command per cycle
    }
    ch.tick(now);
    (ch, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Channel::next_event` never overshoots: after any legal command
    /// history, every tick strictly before the reported horizon leaves
    /// the channel bit-identical (no refresh marked, performed or
    /// rescheduled, no window expired observably).
    #[test]
    fn channel_next_event_never_overshoots(
        reqs in prop::collection::vec(req_strategy(4, 16, 8), 1..30),
    ) {
        let mut cfg = DramConfig::small();
        // A short refresh interval puts several refresh events inside the
        // probed window, the hardest part of the horizon computation.
        cfg.timing.t_refi = 150;
        let (mut ch, now) = drive(cfg, &reqs);
        let Some(event) = ch.next_event(now) else {
            return Ok(());
        };
        prop_assert!(event > now, "horizon must be in the future");
        let snapshot = format!("{ch:?}");
        for t in now + 1..event {
            ch.tick(t);
        }
        prop_assert_eq!(
            format!("{ch:?}"),
            snapshot,
            "a tick before the horizon changed channel state"
        );
    }

}

proptest! {
    // Three full simulations per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full-system equivalence on random seeds and mechanisms: the engine
    /// choice must never change a report, whatever the traffic pattern.
    #[test]
    fn engine_equivalence_on_random_seeds(
        seed in any::<u64>(),
        mech_idx in 0usize..11,
        bench_idx in 0usize..3,
    ) {
        let mechanism = all_mechanisms()[mech_idx];
        let bench = [
            SpecBenchmark::Mcf,
            SpecBenchmark::Swim,
            SpecBenchmark::Parser,
        ][bench_idx];
        let len = RunLength::Instructions(800);
        let reference = simulate(
            &config(mechanism, Engine::CycleNoSkip), bench.workload(seed), len);
        for engine in [Engine::Cycle, Engine::Event] {
            let report = simulate(&config(mechanism, engine), bench.workload(seed), len);
            prop_assert_eq!(&report, &reference, "engine {} diverged", engine);
        }
    }
}
