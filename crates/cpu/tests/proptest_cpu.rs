//! Property-based tests of the cache hierarchy and the CPU limit model.

use burst_cpu::{Cache, CacheConfig, Cpu, CpuConfig, Hierarchy, HierarchyConfig, MemAccessResult};
use burst_workloads::{Op, ReplaySource};
use proptest::prelude::*;
use std::collections::HashSet;

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        ways: 2,
        line_bytes: 64,
    }) // 8 sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After inserting a line it is resident; evictions only report lines
    /// that were previously resident; a line never evicts itself.
    #[test]
    fn cache_insert_evict_invariants(lines in prop::collection::vec(0u64..64, 1..200)) {
        let mut c = tiny_cache();
        let mut resident: HashSet<u64> = HashSet::new();
        for &l in &lines {
            let addr = l * 64;
            if let Some(ev) = c.insert(addr, false) {
                prop_assert!(resident.remove(&ev.addr), "evicted non-resident {:#x}", ev.addr);
                prop_assert_ne!(ev.addr, addr, "line evicted itself");
            }
            resident.insert(addr);
            prop_assert!(c.contains(addr), "just-inserted line missing");
        }
        // The model and the shadow set agree on residency.
        for &l in resident.iter() {
            prop_assert!(c.contains(l));
        }
        // Capacity: at most ways*sets lines resident.
        prop_assert!(resident.len() <= 16);
    }

    /// A dirty eviction implies the line was written (inserted dirty or
    /// dirtied by a store lookup); clean lines never report writebacks.
    #[test]
    fn cache_dirty_tracking(ops in prop::collection::vec((0u64..32, any::<bool>()), 1..200)) {
        let mut c = tiny_cache();
        let mut dirtied: HashSet<u64> = HashSet::new();
        for &(l, store) in &ops {
            let addr = l * 64;
            if c.lookup(addr, store) {
                if store {
                    dirtied.insert(addr);
                }
            } else if let Some(ev) = c.insert(addr, store) {
                if ev.dirty {
                    prop_assert!(
                        dirtied.remove(&ev.addr),
                        "dirty eviction of never-written line {:#x}", ev.addr
                    );
                } else {
                    dirtied.remove(&ev.addr);
                }
                if store {
                    dirtied.insert(addr);
                }
            } else if store {
                dirtied.insert(addr);
            }
        }
    }

    /// Hierarchy: miss -> fill -> hit for any line; writebacks only for
    /// lines that passed through a store.
    #[test]
    fn hierarchy_miss_fill_hit(lines in prop::collection::vec(0u64..4096, 1..100)) {
        let mut h = Hierarchy::new(HierarchyConfig::baseline());
        for &l in &lines {
            let addr = l * 64;
            match h.access(addr, false) {
                MemAccessResult::Miss { line } => {
                    prop_assert_eq!(line, addr);
                    h.fill(line, false);
                    prop_assert!(matches!(
                        h.access(addr, false),
                        MemAccessResult::L1Hit
                    ));
                }
                MemAccessResult::L1Hit | MemAccessResult::L2Hit => {}
            }
        }
        // Pure loads: no writebacks ever.
        prop_assert_eq!(h.pending_writebacks(), 0);
    }

    /// The CPU never exceeds its structural limits and always drains once
    /// memory answers: a fundamental liveness property.
    #[test]
    fn cpu_liveness_and_limits(ops in prop::collection::vec(0u8..12, 8..200)) {
        let cfg = CpuConfig::baseline();
        let mut cpu = Cpu::new(cfg);
        // Map op codes onto a mix of compute/loads/stores over a handful of
        // lines, including dependent loads.
        let trace: Vec<Op> = ops
            .iter()
            .map(|&o| match o {
                0..=3 => Op::Compute,
                4..=6 => Op::load(u64::from(o) * (1 << 22)),
                7..=8 => Op::dependent_load(u64::from(o) * (1 << 23)),
                _ => Op::Store { addr: u64::from(o) * (1 << 21) },
            })
            .collect();
        let mut src = ReplaySource::new("prop", trace);
        let target = 2_000u64;
        let mut guard = 0u64;
        while cpu.retired() < target {
            cpu.cycle(&mut src);
            prop_assert!(cpu.outstanding_misses() <= cfg.lsq_size);
            // Answer memory instantly.
            while let Some(line) = cpu.pop_read_request() {
                cpu.complete_read(line, cpu.now());
            }
            while cpu.pop_writeback().is_some() {}
            guard += 1;
            prop_assert!(guard < 1_000_000, "CPU livelocked");
        }
        prop_assert!(cpu.retired() >= target);
    }

    /// Instant-memory executions retire at least one instruction per
    /// `width` cycles on average once warmed up (no artificial stalls).
    #[test]
    fn cpu_throughput_reasonable(seed_ops in prop::collection::vec(0u8..4, 4..40)) {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let trace: Vec<Op> = seed_ops
            .iter()
            .map(|&o| if o == 0 { Op::load(u64::from(o) * 4096) } else { Op::Compute })
            .collect();
        let mut src = ReplaySource::new("mixed", trace);
        for _ in 0..2_000 {
            cpu.cycle(&mut src);
            while let Some(line) = cpu.pop_read_request() {
                cpu.complete_read(line, cpu.now());
            }
            while cpu.pop_writeback().is_some() {}
        }
        prop_assert!(cpu.retired() > 1_000, "retired only {}", cpu.retired());
    }
}
