//! # burst-cpu
//!
//! The CPU-side substrate of the burst scheduling reproduction: a
//! set-associative write-back cache hierarchy (128 KB 2-way L1D, 2 MB
//! 16-way L2, 64 B lines) and an out-of-order core *limit model* (196-entry
//! ROB, 8-wide, 32-entry LSQ) matching the paper's baseline machine
//! (Table 3).
//!
//! The limit model reproduces the CPU/memory coupling the paper's
//! evaluation depends on — see `DESIGN.md` for the substitution rationale:
//!
//! * loads that miss L2 block in-order retirement until main memory
//!   returns their line (read latency is on the critical path);
//! * stores are posted, but dirty writebacks become main-memory writes;
//! * at most `lsq_size` misses are outstanding (bounded MLP, the 0-35
//!   x-axis of the paper's Figure 8a);
//! * a saturated memory controller back-pressures dispatch (the CPU
//!   pipeline stall that write piggybacking exists to avoid).
//!
//! ## Example
//!
//! ```
//! use burst_cpu::{Cpu, CpuConfig};
//! use burst_workloads::{Op, ReplaySource};
//!
//! let mut cpu = Cpu::new(CpuConfig::baseline());
//! let mut src = ReplaySource::new("demo", vec![Op::load(0x4000), Op::Compute]);
//! cpu.cycle(&mut src);
//! // The cold load missed: main memory is asked for the line.
//! assert_eq!(cpu.pop_read_request(), Some(0x4000));
//! cpu.complete_read(0x4000, cpu.now());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod core;
mod hierarchy;

pub use crate::core::{Cpu, CpuConfig, CpuStats};
pub use cache::{Cache, CacheConfig, CacheStats, Eviction};
pub use hierarchy::{Hierarchy, HierarchyConfig, MemAccessResult};
