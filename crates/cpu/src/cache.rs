//! Set-associative write-back, write-allocate cache with LRU replacement.
//!
//! The hot paths (`lookup`, `insert`) run once per memory instruction of
//! every simulated workload, so the implementation keeps the ways in one
//! flat contiguous array (set-major, way-minor — the exact order the
//! snapshot format has always used), precomputes shift/mask forms of the
//! set/tag split when the geometry is a power of two (the baseline L1 and
//! L2 both are), and memoizes the last line hit so repeated touches skip
//! the set scan. None of this changes a single observable bit: the same
//! way is found, the same LRU/dirty updates apply, the same counters move.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's L1 data cache: 128 KB, 2-way, 64 B lines (Table 3).
    pub fn l1d_baseline() -> Self {
        CacheConfig {
            size_bytes: 128 * 1024,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// The paper's L2 cache: 2 MB, 16-way, 64 B lines (Table 3).
    pub fn l2_baseline() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }
}

/// A line evicted to make room for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// Whether the victim held modified data (needs writing back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Per-level hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions produced by allocations.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How the line address splits into a set index and a tag. Both forms are
/// pure functions of the configured geometry.
#[derive(Debug, Clone, Copy)]
enum SetSplit {
    /// `sets` is a power of two: mask for the index, shift for the tag.
    Pow2 { mask: u64, shift: u32 },
    /// Arbitrary set count: divide/modulo.
    Generic { sets: u64 },
}

/// A set-associative write-back cache.
///
/// # Examples
///
/// ```
/// use burst_cpu::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1d_baseline());
/// assert!(!c.lookup(0x1000, false));       // cold miss
/// c.insert(0x1000, false);
/// assert!(c.lookup(0x1000, true));         // hit, now dirty
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig, // snap: derived(construction input; restore re-supplies it)
    /// All ways, set-major then way-minor — the iteration order of the
    /// snapshot format.
    ways: Vec<Way>,
    n_sets: usize,   // snap: derived(geometry, recomputed from cfg)
    split: SetSplit, // snap: derived(geometry, recomputed from cfg)
    line_shift: u32, // snap: derived(geometry, recomputed from cfg)
    /// Last line-aligned address that hit, and the flat way index holding
    /// it. Verified before use (valid bit + tag compare), so a stale memo
    /// degrades to the full set scan and never changes the outcome.
    memo_addr: u64, // snap: derived(lookup accelerator; invalidated on restore)
    memo_way: u32,   // snap: derived(lookup accelerator; invalidated on restore)
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or has a non-power-of-
    /// two line size.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        let split = if (sets as u64).is_power_of_two() {
            SetSplit::Pow2 {
                mask: sets as u64 - 1,
                shift: (sets as u64).trailing_zeros(),
            }
        } else {
            SetSplit::Generic { sets: sets as u64 }
        };
        Cache {
            ways: vec![Way::default(); sets * cfg.ways],
            n_sets: sets,
            split,
            line_shift: cfg.line_bytes.trailing_zeros(),
            memo_addr: u64::MAX,
            memo_way: 0,
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the hit/miss counters (e.g. after functional warming).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        match self.split {
            SetSplit::Pow2 { mask, shift } => ((line & mask) as usize, line >> shift),
            SetSplit::Generic { sets } => ((line % sets) as usize, line / sets),
        }
    }

    /// Reconstructs the line-aligned address held by (`set`, `tag`).
    #[inline]
    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        let line = match self.split {
            SetSplit::Pow2 { shift, .. } => (tag << shift) | set as u64,
            SetSplit::Generic { sets } => tag * sets + set as u64,
        };
        line << self.line_shift
    }

    /// Looks up `addr`; on a hit updates LRU and, if `make_dirty`, marks the
    /// line modified. Returns whether the line was present. Counts toward
    /// hit/miss statistics.
    pub fn lookup(&mut self, addr: u64, make_dirty: bool) -> bool {
        self.tick += 1;
        let (set, tag) = self.split(addr);
        // Same line as last time? The memoized way is re-verified, so this
        // is purely a shortcut to the scan below.
        if self.memo_addr == addr {
            let way = &mut self.ways[self.memo_way as usize];
            if way.valid && way.tag == tag {
                way.lru = self.tick;
                if make_dirty {
                    way.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        let base = set * self.cfg.ways;
        for i in base..base + self.cfg.ways {
            let way = &mut self.ways[i];
            if way.valid && way.tag == tag {
                way.lru = self.tick;
                if make_dirty {
                    way.dirty = true;
                }
                self.memo_addr = addr;
                self.memo_way = i as u32;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Whether `addr` is present, without touching LRU or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.split(addr);
        let base = set * self.cfg.ways;
        self.ways[base..base + self.cfg.ways]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Allocates a line for `addr` (write-allocate fill), evicting the LRU
    /// way if the set is full. If the line is already present it is updated
    /// in place. Returns the eviction, if any.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.split(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.ways[base..base + self.cfg.ways];
        // Already present: refresh.
        if let Some(i) = ways.iter().position(|w| w.valid && w.tag == tag) {
            let way = &mut ways[i];
            way.lru = tick;
            way.dirty |= dirty;
            self.memo_addr = addr;
            self.memo_way = (base + i) as u32;
            return None;
        }
        // Free way?
        if let Some(i) = ways.iter().position(|w| !w.valid) {
            ways[i] = Way {
                tag,
                valid: true,
                dirty,
                lru: tick,
            };
            self.memo_addr = addr;
            self.memo_way = (base + i) as u32;
            return None;
        }
        // Evict LRU.
        let i = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.lru)
            .map(|(i, _)| i)
            .expect("ways is non-empty");
        let victim = &mut ways[i];
        let victim_tag = victim.tag;
        let victim_dirty = victim.dirty;
        *victim = Way {
            tag,
            valid: true,
            dirty,
            lru: tick,
        };
        self.memo_addr = addr;
        self.memo_way = (base + i) as u32;
        if victim_dirty {
            self.stats.writebacks += 1;
        }
        Some(Eviction {
            addr: self.line_addr(set, victim_tag),
            dirty: victim_dirty,
        })
    }

    /// Serialises every way's tag/valid/dirty/LRU state plus counters for
    /// a checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        w.usize(self.n_sets);
        w.usize(self.cfg.ways);
        // Flat storage is set-major, way-minor: identical byte order to the
        // historical nested per-set layout.
        for way in &self.ways {
            w.u64(way.tag);
            w.bool(way.valid);
            w.bool(way.dirty);
            w.u64(way.lru);
        }
        w.u64(self.tick);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.writebacks);
    }

    /// Restores state written by [`Cache::save_snap`] into a cache of the
    /// same geometry; a dimension mismatch is rejected as corrupt.
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        use burst_snap::SnapError;
        if r.seq_len(1)? != self.n_sets || r.usize()? != self.cfg.ways {
            return Err(SnapError::Corrupt("cache geometry mismatch"));
        }
        for way in &mut self.ways {
            way.tag = r.u64()?;
            way.valid = r.bool()?;
            way.dirty = r.bool()?;
            way.lru = r.u64()?;
        }
        // The restored contents need not match what the memo described.
        self.memo_addr = u64::MAX;
        self.tick = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.writebacks = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn baseline_configs_match_table3() {
        let l1 = CacheConfig::l1d_baseline();
        assert_eq!(l1.sets(), 1024);
        let l2 = CacheConfig::l2_baseline();
        assert_eq!(l2.sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(0, false));
        c.insert(0, false);
        assert!(c.lookup(0, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 receives lines 0, 256 (4 sets * 64 = 256 stride), 512.
        c.insert(0, false);
        c.insert(256, false);
        // Touch line 0 so 256 becomes LRU.
        assert!(c.lookup(0, false));
        let ev = c.insert(512, false).expect("set is full");
        assert_eq!(ev.addr, 256);
        assert!(!ev.dirty);
        assert!(c.contains(0));
        assert!(c.contains(512));
        assert!(!c.contains(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.lookup(0, true)); // dirty it
        c.insert(256, false);
        let ev = c.insert(512, false).expect("evicts");
        // LRU is line 0 (touched before 256? No: 0 inserted, looked up
        // (tick 2), 256 inserted tick 3 -> LRU is 0 at tick 2... lookup
        // refreshed 0, insert(256) is newer, so victim is 0.
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty, "dirty victim must be written back");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn insert_existing_line_merges_dirty() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.insert(0, true).is_none(), "re-insert refreshes in place");
        c.insert(256, false);
        // Set 0 holds {0 (older), 256}; inserting 512 evicts line 0, which
        // must carry the dirty bit merged by the second insert.
        let ev = c.insert(512, false).expect("evicts LRU");
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty, "dirty bit merged on re-insert");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.insert(0, false); // set 0
        c.insert(64, false); // set 1
        c.insert(128, false); // set 2
        assert!(c.contains(0) && c.contains(64) && c.contains(128));
    }

    #[test]
    fn eviction_address_reconstruction() {
        let mut c = tiny();
        let addr = 0x1234u64 & !63; // some line
        c.insert(addr, true);
        let (set, _) = (addr / 64 % 4, ());
        // Fill the same set with two more lines to force eviction of addr.
        let stride = 4 * 64;
        c.insert(addr + stride, false);
        let ev = c.insert(addr + 2 * stride, false).expect("evicts");
        assert_eq!(ev.addr, addr, "victim address must round-trip (set {set})");
        assert!(ev.dirty);
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        c.insert(0, false);
        c.lookup(0, false);
        c.lookup(64, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_power_of_two_sets_split_correctly() {
        // 3 sets x 2 ways: exercises the generic divide/modulo split.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 3 * 2 * 64,
            ways: 2,
            line_bytes: 64,
        });
        // Lines 0 and 3 share set 0; line 1 is set 1.
        c.insert(0, true);
        c.insert(3 * 64, false);
        c.insert(64, false);
        assert!(c.contains(0) && c.contains(3 * 64) && c.contains(64));
        // A third set-0 line evicts LRU line 0 and round-trips its address.
        let ev = c.insert(6 * 64, false).expect("set 0 full");
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn memo_survives_eviction_of_memoized_line() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.lookup(0, false)); // memoize line 0
                                     // Evict line 0 (set 0 holds two newer lines).
        c.insert(256, false);
        c.insert(512, false);
        // The stale memo must not report a phantom hit.
        assert!(!c.lookup(0, false));
        assert!(c.lookup(512, false));
    }

    #[test]
    fn repeated_hits_use_memo_with_identical_counters() {
        let mut a = tiny();
        let mut b = tiny();
        a.insert(64, false);
        b.insert(64, false);
        for _ in 0..5 {
            assert!(a.lookup(64, false));
            // Defeat the memo in `b` by touching another set in between;
            // both caches must still agree on every counter and LRU value.
            assert!(b.lookup(64, false));
        }
        assert_eq!(a.stats(), b.stats());
        let mut wa = burst_snap::SnapWriter::new();
        let mut wb = burst_snap::SnapWriter::new();
        a.save_snap(&mut wa);
        b.save_snap(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }
}
