//! Set-associative write-back, write-allocate cache with LRU replacement.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's L1 data cache: 128 KB, 2-way, 64 B lines (Table 3).
    pub fn l1d_baseline() -> Self {
        CacheConfig {
            size_bytes: 128 * 1024,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// The paper's L2 cache: 2 MB, 16-way, 64 B lines (Table 3).
    pub fn l2_baseline() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }
}

/// A line evicted to make room for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// Whether the victim held modified data (needs writing back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Per-level hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions produced by allocations.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative write-back cache.
///
/// # Examples
///
/// ```
/// use burst_cpu::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1d_baseline());
/// assert!(!c.lookup(0x1000, false));       // cold miss
/// c.insert(0x1000, false);
/// assert!(c.lookup(0x1000, true));         // hit, now dirty
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or has a non-power-of-
    /// two line size.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        Cache {
            cfg,
            sets: vec![vec![Way::default(); cfg.ways]; sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the hit/miss counters (e.g. after functional warming).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Looks up `addr`; on a hit updates LRU and, if `make_dirty`, marks the
    /// line modified. Returns whether the line was present. Counts toward
    /// hit/miss statistics.
    pub fn lookup(&mut self, addr: u64, make_dirty: bool) -> bool {
        self.tick += 1;
        let (set, tag) = self.split(addr);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.lru = self.tick;
                if make_dirty {
                    way.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Whether `addr` is present, without touching LRU or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.split(addr);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Allocates a line for `addr` (write-allocate fill), evicting the LRU
    /// way if the set is full. If the line is already present it is updated
    /// in place. Returns the eviction, if any.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let sets_len = self.sets.len() as u64;
        let (set, tag) = self.split(addr);
        let ways = &mut self.sets[set];
        // Already present: refresh.
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = tick;
            way.dirty |= dirty;
            return None;
        }
        // Free way?
        if let Some(way) = ways.iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag,
                valid: true,
                dirty,
                lru: tick,
            };
            return None;
        }
        // Evict LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("ways is non-empty");
        let evicted = Eviction {
            addr: (victim.tag * sets_len + set as u64) * self.cfg.line_bytes,
            dirty: victim.dirty,
        };
        *victim = Way {
            tag,
            valid: true,
            dirty,
            lru: tick,
        };
        if evicted.dirty {
            self.stats.writebacks += 1;
        }
        Some(evicted)
    }

    /// Serialises every way's tag/valid/dirty/LRU state plus counters for
    /// a checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        w.usize(self.sets.len());
        w.usize(self.cfg.ways);
        for set in &self.sets {
            for way in set {
                w.u64(way.tag);
                w.bool(way.valid);
                w.bool(way.dirty);
                w.u64(way.lru);
            }
        }
        w.u64(self.tick);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.writebacks);
    }

    /// Restores state written by [`Cache::save_snap`] into a cache of the
    /// same geometry; a dimension mismatch is rejected as corrupt.
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        use burst_snap::SnapError;
        if r.seq_len(1)? != self.sets.len() || r.usize()? != self.cfg.ways {
            return Err(SnapError::Corrupt("cache geometry mismatch"));
        }
        for set in &mut self.sets {
            for way in set {
                way.tag = r.u64()?;
                way.valid = r.bool()?;
                way.dirty = r.bool()?;
                way.lru = r.u64()?;
            }
        }
        self.tick = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.writebacks = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn baseline_configs_match_table3() {
        let l1 = CacheConfig::l1d_baseline();
        assert_eq!(l1.sets(), 1024);
        let l2 = CacheConfig::l2_baseline();
        assert_eq!(l2.sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(0, false));
        c.insert(0, false);
        assert!(c.lookup(0, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 receives lines 0, 256 (4 sets * 64 = 256 stride), 512.
        c.insert(0, false);
        c.insert(256, false);
        // Touch line 0 so 256 becomes LRU.
        assert!(c.lookup(0, false));
        let ev = c.insert(512, false).expect("set is full");
        assert_eq!(ev.addr, 256);
        assert!(!ev.dirty);
        assert!(c.contains(0));
        assert!(c.contains(512));
        assert!(!c.contains(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.lookup(0, true)); // dirty it
        c.insert(256, false);
        let ev = c.insert(512, false).expect("evicts");
        // LRU is line 0 (touched before 256? No: 0 inserted, looked up
        // (tick 2), 256 inserted tick 3 -> LRU is 0 at tick 2... lookup
        // refreshed 0, insert(256) is newer, so victim is 0.
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty, "dirty victim must be written back");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn insert_existing_line_merges_dirty() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.insert(0, true).is_none(), "re-insert refreshes in place");
        c.insert(256, false);
        // Set 0 holds {0 (older), 256}; inserting 512 evicts line 0, which
        // must carry the dirty bit merged by the second insert.
        let ev = c.insert(512, false).expect("evicts LRU");
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty, "dirty bit merged on re-insert");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.insert(0, false); // set 0
        c.insert(64, false); // set 1
        c.insert(128, false); // set 2
        assert!(c.contains(0) && c.contains(64) && c.contains(128));
    }

    #[test]
    fn eviction_address_reconstruction() {
        let mut c = tiny();
        let addr = 0x1234u64 & !63; // some line
        c.insert(addr, true);
        let (set, _) = (addr / 64 % 4, ());
        // Fill the same set with two more lines to force eviction of addr.
        let stride = 4 * 64;
        c.insert(addr + stride, false);
        let ev = c.insert(addr + 2 * stride, false).expect("evicts");
        assert_eq!(ev.addr, addr, "victim address must round-trip (set {set})");
        assert!(ev.dirty);
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        c.insert(0, false);
        c.lookup(0, false);
        c.lookup(64, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
