//! The two-level data-cache hierarchy of the baseline machine (Table 3):
//! a 128 KB 2-way L1 data cache backed by a 2 MB 16-way unified L2, both
//! write-back / write-allocate with 64 B lines.
//!
//! Instruction fetch is assumed to hit the L1 instruction cache (SPEC-style
//! workloads have negligible I-cache miss traffic); see `DESIGN.md`.

use std::collections::VecDeque;

use crate::{Cache, CacheConfig};

/// Outcome of a data access against the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccessResult {
    /// Hit in the L1 data cache.
    L1Hit,
    /// Missed L1, hit L2 (the line is promoted to L1).
    L2Hit,
    /// Missed both levels; main memory must supply `line`.
    Miss {
        /// Line-aligned address to fetch.
        line: u64,
    },
}

/// L1 + L2 data hierarchy producing main-memory read misses and dirty
/// writebacks.
///
/// # Examples
///
/// ```
/// use burst_cpu::{Hierarchy, HierarchyConfig, MemAccessResult};
///
/// let mut h = Hierarchy::new(HierarchyConfig::baseline());
/// assert!(matches!(h.access(0x5000, false), MemAccessResult::Miss { .. }));
/// h.fill(0x5000, false);
/// assert_eq!(h.access(0x5000, false), MemAccessResult::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1d: Cache,
    l2: Cache,
    writebacks: VecDeque<u64>,
}

/// Configuration of both cache levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L2 unified cache geometry.
    pub l2: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's baseline hierarchy (Table 3).
    pub fn baseline() -> Self {
        HierarchyConfig {
            l1d: CacheConfig::l1d_baseline(),
            l2: CacheConfig::l2_baseline(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::baseline()
    }
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            writebacks: VecDeque::new(),
        }
    }

    /// The L1 data cache (for statistics).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L2 cache (for statistics).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.l1d.config().line_bytes - 1)
    }

    /// Inserts a line into L2, queueing a memory writeback if a dirty
    /// victim falls out.
    fn put_l2(&mut self, line: u64, dirty: bool) {
        if let Some(ev) = self.l2.insert(line, dirty) {
            if ev.dirty {
                self.writebacks.push_back(ev.addr);
            }
        }
    }

    /// Inserts a line into L1, cascading the victim into L2.
    fn put_l1(&mut self, line: u64, dirty: bool) {
        if let Some(ev) = self.l1d.insert(line, dirty) {
            if ev.dirty {
                self.put_l2(ev.addr, true);
            }
        }
    }

    /// Performs a load (`is_store == false`) or store against the
    /// hierarchy. Stores are write-allocate: a store miss returns
    /// [`MemAccessResult::Miss`] and the fill must be completed with
    /// [`Hierarchy::fill`]`(line, true)`.
    pub fn access(&mut self, addr: u64, is_store: bool) -> MemAccessResult {
        let line = self.line_of(addr);
        if self.l1d.lookup(line, is_store) {
            return MemAccessResult::L1Hit;
        }
        if self.l2.lookup(line, false) {
            self.put_l1(line, is_store);
            return MemAccessResult::L2Hit;
        }
        MemAccessResult::Miss { line }
    }

    /// Completes a main-memory fill of `line`; `dirty` marks a store-miss
    /// fill (the line is immediately modified).
    pub fn fill(&mut self, line: u64, dirty: bool) {
        let line = self.line_of(line);
        self.put_l2(line, false);
        self.put_l1(line, dirty);
    }

    /// Takes the next dirty line awaiting writeback to main memory.
    pub fn pop_writeback(&mut self) -> Option<u64> {
        self.writebacks.pop_front()
    }

    /// Number of queued writebacks.
    pub fn pending_writebacks(&self) -> usize {
        self.writebacks.len()
    }

    /// Zeroes both levels' hit/miss counters and drops queued writebacks
    /// (used after functional warming).
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.writebacks.clear();
    }

    /// Serialises both cache levels and the writeback queue for a
    /// checkpoint.
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        self.l1d.save_snap(w);
        self.l2.save_snap(w);
        w.usize(self.writebacks.len());
        for &line in &self.writebacks {
            w.u64(line);
        }
    }

    /// Restores state written by [`Hierarchy::save_snap`] into a hierarchy
    /// of the same geometry.
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        self.l1d.load_snap(r)?;
        self.l2.load_snap(r)?;
        let n = r.seq_len(8)?;
        self.writebacks.clear();
        for _ in 0..n {
            self.writebacks.push_back(r.u64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 256,
                ways: 2,
                line_bytes: 64,
            }, // 2 sets
            l2: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                line_bytes: 64,
            }, // 8 sets
        })
    }

    #[test]
    fn miss_fill_hit_cycle() {
        let mut h = tiny();
        assert_eq!(h.access(100, false), MemAccessResult::Miss { line: 64 });
        h.fill(64, false);
        assert_eq!(h.access(100, false), MemAccessResult::L1Hit);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = tiny();
        h.fill(0, false);
        // Evict line 0 from tiny L1 (2 sets x 2 ways; set = line % 2).
        // Lines 0, 128, 256 all map to L1 set 0.
        h.fill(128, false);
        h.fill(256, false);
        assert!(!h.l1d().contains(0), "L1 evicted line 0");
        assert!(h.l2().contains(0), "L2 retains line 0");
        assert_eq!(h.access(0, false), MemAccessResult::L2Hit);
        assert!(h.l1d().contains(0), "promoted back to L1");
    }

    #[test]
    fn dirty_line_cascades_to_memory_writeback() {
        let mut h = tiny();
        // Dirty a line, then evict it through both levels.
        h.fill(0, true); // store-miss fill: dirty in L1
                         // Evict from L1 set 0 (stride 128).
        h.fill(128, false);
        h.fill(256, false);
        // Line 0 is now dirty in L2 (L2 set = line % 8 -> lines 0, 512,
        // 1024 share L2 set 0). Evict it from L2.
        h.fill(512, false);
        h.fill(1024, false);
        let mut wbs = Vec::new();
        while let Some(w) = h.pop_writeback() {
            wbs.push(w);
        }
        assert!(wbs.contains(&0), "dirty line 0 must reach memory: {wbs:?}");
    }

    #[test]
    fn clean_evictions_produce_no_writebacks() {
        let mut h = tiny();
        for i in 0..32 {
            h.fill(i * 64, false);
        }
        assert_eq!(h.pending_writebacks(), 0);
    }

    #[test]
    fn store_hit_dirties_without_traffic() {
        let mut h = tiny();
        h.fill(0, false);
        assert_eq!(h.access(0, true), MemAccessResult::L1Hit);
        assert_eq!(h.pending_writebacks(), 0);
        // Evicting it later produces the writeback.
        h.fill(128, false);
        h.fill(256, false); // L1 eviction of dirty 0 -> L2
        h.fill(512, false);
        h.fill(1024, false); // L2 eviction -> memory
        assert!(h.pending_writebacks() > 0);
    }

    #[test]
    fn access_aligns_to_line() {
        let mut h = tiny();
        assert_eq!(h.access(0x7f, false), MemAccessResult::Miss { line: 0x40 });
    }
}
