//! Out-of-order CPU limit model: a 196-entry ROB retiring 8 instructions
//! per cycle in order, a 32-entry LSQ bounding outstanding misses (MSHRs),
//! and non-blocking caches — the properties of the paper's baseline CPU
//! (Table 3) that access reordering mechanisms interact with.
//!
//! The model captures exactly the coupling the paper studies: loads that
//! miss the hierarchy block retirement until main memory returns data;
//! stores are posted; dirty writebacks generate main-memory writes; a
//! saturated memory controller back-pressures dispatch and stalls the
//! pipeline.
//!
//! Two driving interfaces exist. [`Cpu::cycle`] is the reference path: one
//! exact CPU cycle per call. [`Cpu::run_until`] is the batch path: it
//! advances to a deadline using closed-form fast paths — full-stall spans
//! (via [`Cpu::idle_until`]) and full-width compute streaks — and falls
//! back to the per-cycle path at any boundary. The batch path is
//! bit-identical to the per-cycle path by construction; DESIGN.md §16
//! documents the invariants, and the `cpu_batch_equiv` proptest compares
//! full snapshot byte streams of both paths over random op streams.

use std::collections::VecDeque;

use burst_workloads::{Op, OpSource};

use crate::{Hierarchy, HierarchyConfig, MemAccessResult};

/// CPU model configuration (paper Table 3: 4 GHz, 8-way, 32 LSQ, 196 ROB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuConfig {
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Dispatch and retire width (instructions per CPU cycle).
    pub width: usize,
    /// Load/store queue size: the maximum outstanding main-memory misses.
    pub lsq_size: usize,
    /// CPU cycles per memory-controller cycle (4 GHz / 400 MHz = 10).
    pub cpu_ratio: u64,
    /// L1 data hit latency in CPU cycles.
    pub l1_latency: u64,
    /// L2 hit latency in CPU cycles.
    pub l2_latency: u64,
    /// Writeback-queue length above which dispatch stalls (models FSB and
    /// controller back-pressure on the CPU).
    pub writeback_stall: usize,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
}

impl CpuConfig {
    /// The paper's baseline machine (Table 3).
    pub fn baseline() -> Self {
        CpuConfig {
            rob_size: 196,
            width: 8,
            lsq_size: 32,
            cpu_ratio: 10,
            l1_latency: 3,
            l2_latency: 15,
            writeback_stall: 16,
            hierarchy: HierarchyConfig::baseline(),
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::baseline()
    }
}

/// Aggregate CPU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub retired: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Main-memory read requests issued (L2 misses).
    pub mem_reads: u64,
    /// Main-memory writes issued (dirty L2 writebacks).
    pub mem_writes: u64,
    /// CPU cycles with dispatch fully stalled.
    pub stall_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Completed; retirable at the stored CPU cycle.
    Ready(u64),
    /// Waiting for a main-memory line.
    WaitMem(u64),
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    state: EntryState,
}

/// Fixed-capacity ring buffer of in-flight ROB entries. Compared to a
/// `VecDeque`, the capacity never reallocates and front pops in the
/// compute-streak closed form are plain index arithmetic.
#[derive(Debug, Clone)]
struct RobRing {
    buf: Vec<RobEntry>, // snap: derived(entries serialised in order by Cpu::save_snap)
    head: usize,        // snap: derived(ring geometry, not observable)
    len: usize,         // snap: derived(length serialised by Cpu::save_snap)
}

impl RobRing {
    fn new(capacity: usize) -> Self {
        RobRing {
            buf: vec![
                RobEntry {
                    state: EntryState::Ready(0)
                };
                capacity.max(1)
            ],
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// Physical index of logical position `i` (`i < capacity`, so one
    /// conditional wrap suffices — the capacity need not be a power of
    /// two).
    #[inline]
    fn phys(&self, i: usize) -> usize {
        let mut p = self.head + i;
        if p >= self.buf.len() {
            p -= self.buf.len();
        }
        p
    }

    #[inline]
    fn front(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    #[inline]
    fn get_mut(&mut self, i: usize) -> Option<&mut RobEntry> {
        if i < self.len {
            let p = self.phys(i);
            Some(&mut self.buf[p])
        } else {
            None
        }
    }

    #[inline]
    fn push_back(&mut self, e: RobEntry) {
        debug_assert!(self.len < self.buf.len(), "ROB ring overflow");
        let p = self.phys(self.len);
        self.buf[p] = e;
        self.len += 1;
    }

    #[inline]
    fn pop_front(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.buf[self.head];
        self.head += 1;
        if self.head == self.buf.len() {
            self.head = 0;
        }
        self.len -= 1;
        Some(e)
    }

    /// Drops `n` entries from the front in O(1) (`n <= len`).
    #[inline]
    fn drop_front(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.head = self.phys(n);
        self.len -= n;
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        (0..self.len).map(|i| &self.buf[self.phys(i)])
    }
}

/// One MSHR: the miss bookkeeping for a single outstanding line.
#[derive(Debug, Clone, Default)]
struct MshrSlot {
    occupied: bool,
    line: u64,
    /// ROB indices (sequence numbers) waiting on this line.
    waiters: Vec<u64>,
    /// The fill installs the line dirty (store-allocate).
    dirty_on_fill: bool,
}

/// Open-addressed line→MSHR table with linear probing and backward-shift
/// deletion. Sized at twice the LSQ bound (load factor ≤ 0.5), so probes
/// stay short. Iteration order is an implementation detail; the snapshot
/// path sorts occupied slots by line so the byte stream stays identical to
/// the historical `BTreeMap` encoding.
#[derive(Debug, Clone)]
struct MshrTable {
    slots: Vec<MshrSlot>, // snap: derived(entries serialised line-sorted by Cpu::save_snap)
    mask: usize,          // snap: derived(table geometry)
    len: usize,           // snap: derived(count serialised by Cpu::save_snap)
    /// Retired waiter vector kept for reuse, so steady-state insert/remove
    /// churn does not allocate.
    spare_waiters: Vec<u64>, // snap: derived(allocation cache, always logically empty)
}

impl MshrTable {
    fn new(lsq_size: usize) -> Self {
        let cap = (2 * lsq_size).next_power_of_two().max(8);
        MshrTable {
            slots: vec![MshrSlot::default(); cap],
            mask: cap - 1,
            len: 0,
            spare_waiters: Vec::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn ideal(&self, line: u64) -> usize {
        // Fibonacci hashing: multiply-shift keeps sequential lines from
        // clustering in adjacent buckets.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - (self.mask + 1).trailing_zeros())) as usize & self.mask
    }

    /// Index of the slot holding `line`, if present.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        let mut i = self.ideal(line);
        loop {
            let s = &self.slots[i];
            if !s.occupied {
                return None;
            }
            if s.line == line {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn get_mut(&mut self, line: u64) -> Option<&mut MshrSlot> {
        self.find(line).map(|i| &mut self.slots[i])
    }

    /// Inserts a new entry for `line` (caller guarantees absence and spare
    /// capacity) and returns it for waiter setup.
    fn insert(&mut self, line: u64, dirty_on_fill: bool) -> &mut MshrSlot {
        debug_assert!(self.find(line).is_none());
        debug_assert!(self.len < self.slots.len());
        let mut i = self.ideal(line);
        while self.slots[i].occupied {
            i = (i + 1) & self.mask;
        }
        self.len += 1;
        let slot = &mut self.slots[i];
        slot.occupied = true;
        slot.line = line;
        slot.dirty_on_fill = dirty_on_fill;
        debug_assert!(slot.waiters.is_empty());
        if slot.waiters.capacity() == 0 {
            slot.waiters = std::mem::take(&mut self.spare_waiters);
        }
        slot
    }

    /// Removes `line`, returning its waiters (in a reusable vector that
    /// must be given back via [`MshrTable::recycle_waiters`]) and the
    /// dirty-on-fill flag.
    fn remove(&mut self, line: u64) -> Option<(Vec<u64>, bool)> {
        let idx = self.find(line)?;
        let slot = &mut self.slots[idx];
        slot.occupied = false;
        let waiters = std::mem::take(&mut slot.waiters);
        let dirty = slot.dirty_on_fill;
        self.len -= 1;
        // Backward-shift deletion keeps every remaining entry reachable
        // from its ideal bucket without tombstones.
        let mut hole = idx;
        let mut i = idx;
        loop {
            i = (i + 1) & self.mask;
            if !self.slots[i].occupied {
                break;
            }
            let home = self.ideal(self.slots[i].line);
            // Move `i` into the hole iff its home bucket does not lie in
            // the cyclic range (hole, i].
            let in_range = if hole <= i {
                home > hole && home <= i
            } else {
                home > hole || home <= i
            };
            if !in_range {
                self.slots.swap(hole, i);
                self.slots[i].occupied = false;
                hole = i;
            }
        }
        Some((waiters, dirty))
    }

    /// Returns a drained waiter vector to the allocation cache.
    fn recycle_waiters(&mut self, mut v: Vec<u64>) {
        v.clear();
        if v.capacity() > self.spare_waiters.capacity() {
            self.spare_waiters = v;
        }
    }

    /// Occupied slot indices sorted ascending by line — the snapshot
    /// iteration order (matches the historical `BTreeMap` byte stream).
    fn sorted_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].occupied)
            .collect();
        idx.sort_by_key(|&i| self.slots[i].line);
        idx
    }

    fn clear(&mut self) {
        for s in &mut self.slots {
            s.occupied = false;
            s.waiters.clear();
        }
        self.len = 0;
    }
}

/// The out-of-order core limit model.
///
/// Drive it with [`Cpu::cycle`] once per CPU cycle (or [`Cpu::run_until`]
/// to batch); pull main-memory requests with [`Cpu::pop_read_request`] /
/// [`Cpu::pop_writeback`] as the memory controller accepts them, and
/// report read data with [`Cpu::complete_read`].
///
/// # Examples
///
/// ```
/// use burst_cpu::{Cpu, CpuConfig};
/// use burst_workloads::{Op, ReplaySource};
///
/// let mut cpu = Cpu::new(CpuConfig::baseline());
/// let mut src = ReplaySource::new("tiny", vec![Op::Compute, Op::load(0x80)]);
/// for _ in 0..4 {
///     cpu.cycle(&mut src);
/// }
/// // The load missed both caches and asks main memory for its line.
/// assert_eq!(cpu.pop_read_request(), Some(0x80));
/// ```
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig, // snap: derived(construction input; restore re-supplies it)
    hierarchy: Hierarchy,
    rob: RobRing,
    /// Sequence number of the ROB front entry.
    head_seq: u64,
    now: u64,
    mshrs: MshrTable,
    read_requests: VecDeque<(u64, bool)>,
    stalled_op: Option<Op>,
    /// Memoized miss result of the stalled op. When a load/store misses
    /// both caches but finds no free MSHR, it retries every cycle; the
    /// hierarchy cannot turn that miss into a hit until a fill occurs, so
    /// the full L1+L2 lookup is skipped on retries. Invalidated by
    /// [`Cpu::complete_read`] (the only fill source while stalled).
    stalled_miss: Option<u64>,
    /// A dependent-load chain is blocked until this line returns.
    chase_block: Option<u64>,
    /// Exact count of `WaitMem` entries in the ROB. Maintained on push and
    /// on the `complete_read` flip; recomputed on restore. A compute
    /// streak requires zero (no entry can block retirement mid-streak).
    waitmem_entries: usize, // snap: derived(recomputed from ROB entries on restore)
    /// Conservative upper bound on every `Ready(at)` in the ROB. Only ever
    /// grows ahead of pushes/flips, so a stale (too large) value merely
    /// disqualifies a streak — it can never admit an ineligible one.
    max_entry_at: u64, // snap: derived(recomputed from ROB entries on restore)
    stats: CpuStats,
}

impl Cpu {
    /// Creates an idle core with cold caches.
    pub fn new(cfg: CpuConfig) -> Self {
        Cpu {
            hierarchy: Hierarchy::new(cfg.hierarchy),
            rob: RobRing::new(cfg.rob_size),
            head_seq: 0,
            now: 0,
            mshrs: MshrTable::new(cfg.lsq_size),
            read_requests: VecDeque::new(),
            stalled_op: None,
            stalled_miss: None,
            chase_block: None,
            waitmem_entries: 0,
            max_entry_at: 0,
            stats: CpuStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The cache hierarchy (for hit-rate statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.retired
    }

    /// Current CPU cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Outstanding main-memory misses (MSHR occupancy).
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    /// Main-memory read requests generated but not yet accepted by the
    /// controller.
    pub fn pending_read_requests(&self) -> usize {
        self.read_requests.len()
    }

    /// Dirty writebacks generated but not yet accepted by the controller.
    pub fn pending_writebacks(&self) -> usize {
        self.hierarchy.pending_writebacks()
    }

    /// Whether dispatch is deterministically blocked this cycle: the ROB
    /// or writeback pressure gates the pipeline, or the stalled op waits
    /// on a chase dependence / a free MSHR. While blocked the workload
    /// source is never consulted, so — absent read completions, writeback
    /// drains, or retirement — the block reproduces itself every cycle.
    fn dispatch_blocked(&self) -> bool {
        if self.rob.len() >= self.cfg.rob_size {
            return true;
        }
        if self.hierarchy.pending_writebacks() >= self.cfg.writeback_stall {
            return true;
        }
        match self.stalled_op {
            Some(Op::Load {
                dependent: true, ..
            }) if self.chase_block.is_some() => true,
            Some(_) => self.stalled_miss.is_some() && self.mshrs.len() >= self.cfg.lsq_size,
            None => false,
        }
    }

    /// The earliest CPU cycle at which a fully-stalled core could next
    /// dispatch or retire an instruction. `None`: the core can make
    /// progress right now — never skip. `Some(at)`: every cycle strictly
    /// before `at` is a guaranteed full stall, after which the ROB front
    /// becomes retirable. `Some(u64::MAX)`: only an external event (a
    /// read completion or a writeback drain) can wake the core.
    pub fn idle_until(&self) -> Option<u64> {
        if !self.dispatch_blocked() {
            return None;
        }
        match self.rob.front().map(|e| e.state) {
            Some(EntryState::Ready(at)) if at > self.now => Some(at),
            Some(EntryState::Ready(_)) => None,
            Some(EntryState::WaitMem(_)) | None => Some(u64::MAX),
        }
    }

    /// Batch-advances `cycles` fully-stalled CPU cycles at once,
    /// bit-identically to calling [`Cpu::cycle`] that many times while
    /// stalled: time moves, every cycle counts as a dispatch stall, and
    /// nothing else changes. Callers must keep the advance inside the
    /// window promised by [`Cpu::idle_until`].
    pub fn advance_stalled(&mut self, cycles: u64) {
        debug_assert!(
            self.idle_until().is_some_and(|at| self.now + cycles < at),
            "batch advance must stay within the stalled window"
        );
        self.now += cycles;
        self.stats.stall_cycles += cycles;
    }

    /// Deterministically inflates the stall-cycle statistic without moving
    /// time — a fault-injection hook for the simulator's lockstep oracle
    /// self-test, emulating the class of bookkeeping bug batch stall
    /// advancement could introduce.
    pub fn skew_stall_accounting(&mut self, cycles: u64) {
        self.stats.stall_cycles += cycles;
    }

    /// Takes the next main-memory read request (a line address), if any.
    pub fn pop_read_request(&mut self) -> Option<u64> {
        self.read_requests.pop_front().map(|(line, _)| line)
    }

    /// Takes the next main-memory read request with its criticality tag:
    /// `true` for demand loads (a ROB entry blocks on the line), `false`
    /// for store-allocate fills. Feed the tag to
    /// `burst_core::Access::with_critical` for critical-first scheduling.
    pub fn pop_read_request_tagged(&mut self) -> Option<(u64, bool)> {
        self.read_requests.pop_front()
    }

    /// Takes the next main-memory writeback (a line address), if any.
    pub fn pop_writeback(&mut self) -> Option<u64> {
        let w = self.hierarchy.pop_writeback();
        if w.is_some() {
            self.stats.mem_writes += 1;
        }
        w
    }

    /// Reports that main memory returned `line`; waiting loads become
    /// retirable at CPU cycle `ready_at`.
    pub fn complete_read(&mut self, line: u64, ready_at: u64) {
        // A fill changes cache contents: the stalled op must re-probe.
        self.stalled_miss = None;
        if let Some((waiters, dirty_on_fill)) = self.mshrs.remove(line) {
            self.hierarchy.fill(line, dirty_on_fill);
            let at = ready_at.max(self.now);
            for &seq in &waiters {
                if seq >= self.head_seq {
                    let idx = (seq - self.head_seq) as usize;
                    if let Some(e) = self.rob.get_mut(idx) {
                        if matches!(e.state, EntryState::WaitMem(l) if l == line) {
                            e.state = EntryState::Ready(at);
                            self.waitmem_entries -= 1;
                            if at > self.max_entry_at {
                                self.max_entry_at = at;
                            }
                        }
                    }
                }
            }
            self.mshrs.recycle_waiters(waiters);
        }
        if self.chase_block == Some(line) {
            self.chase_block = None;
        }
    }

    /// Functionally warms the cache hierarchy: consumes ops from `source`
    /// until `mem_ops` memory operations have been applied to the caches
    /// with instant fills and no timing. Writebacks generated during
    /// warming are discarded and cache counters reset, so the timed region
    /// starts from a realistic steady state (the paper's 2-billion-
    /// instruction runs are warm almost throughout).
    pub fn warm_caches(&mut self, source: &mut dyn OpSource, mem_ops: u64) {
        let mut done = 0u64;
        // A workload may be compute-only (no memory ops at all); bound the
        // total ops consumed so warming terminates on any source.
        let mut budget = mem_ops.saturating_mul(64).saturating_add(4096);
        while done < mem_ops && budget > 0 {
            budget -= 1;
            match source.next_op() {
                Op::Compute => {}
                Op::Load { addr, .. } => {
                    if let MemAccessResult::Miss { line } = self.hierarchy.access(addr, false) {
                        self.hierarchy.fill(line, false);
                    }
                    done += 1;
                }
                Op::Store { addr } => {
                    if let MemAccessResult::Miss { line } = self.hierarchy.access(addr, true) {
                        self.hierarchy.fill(line, true);
                    }
                    done += 1;
                }
            }
        }
        self.hierarchy.reset_stats();
    }

    /// Runs one CPU cycle: retire in order, then dispatch up to `width`
    /// instructions from `source`.
    pub fn cycle(&mut self, source: &mut dyn OpSource) {
        self.now += 1;
        self.retire();
        let dispatched = self.dispatch(source);
        if dispatched == 0 {
            self.stats.stall_cycles += 1;
        }
    }

    /// Advances the core to exactly CPU cycle `deadline`, bit-identically
    /// to calling [`Cpu::cycle`] `deadline - now` times. Fully-stalled
    /// spans and full-width compute streaks advance in closed form; every
    /// other cycle takes the exact per-cycle path. External interaction
    /// (request pop, read completion) must happen outside the call, as it
    /// would between plain `cycle` calls.
    pub fn run_until(&mut self, deadline: u64, source: &mut dyn OpSource) {
        while self.now < deadline {
            match self.idle_until() {
                Some(at) => {
                    // Batch the guaranteed-stall prefix; a wake-up on the
                    // very next cycle steps exactly.
                    let hi = if at == u64::MAX {
                        deadline
                    } else {
                        deadline.min(at - 1)
                    };
                    if hi > self.now {
                        self.advance_stalled(hi - self.now);
                    } else {
                        self.cycle(source);
                    }
                }
                None => {
                    if self.compute_streak_viable() {
                        self.compute_streak(deadline, source);
                    } else {
                        self.cycle(source);
                    }
                }
            }
        }
    }

    /// Whether the next cycles are provably a full-width compute streak
    /// *as long as the source keeps yielding `Op::Compute`*: no stalled
    /// op to replay, every ROB entry retirable by the next cycle (so
    /// retirement never blocks), and no writeback back-pressure (computes
    /// cannot create any). Under these conditions each cycle retires at
    /// full width (bounded by occupancy) and dispatches exactly `width`
    /// computes — see `apply_compute_streak` for the closed form.
    #[inline]
    fn compute_streak_viable(&self) -> bool {
        self.stalled_op.is_none()
            && self.waitmem_entries == 0
            && self.max_entry_at <= self.now + 1
            && self.hierarchy.pending_writebacks() < self.cfg.writeback_stall
            && self.cfg.width <= self.cfg.rob_size
            && self.cfg.width > 0
    }

    /// Fetches ops up to the deadline's dispatch capacity, applies the
    /// closed form over the all-compute prefix, and runs one exact partial
    /// cycle for the remainder (including the first non-compute op, which
    /// re-enters the normal dispatch path untouched).
    fn compute_streak(&mut self, deadline: u64, source: &mut dyn OpSource) {
        let w = self.cfg.width as u64;
        // Chunk very long deadlines so `avail * w` cannot overflow; the
        // outer `run_until` loop re-enters the streak seamlessly.
        let avail = (deadline - self.now).min(1 << 20);
        let max_ops = avail * w;
        let mut k = 0u64;
        let mut boundary: Option<Op> = None;
        while k < max_ops {
            match source.next_op() {
                Op::Compute => k += 1,
                op => {
                    boundary = Some(op);
                    break;
                }
            }
        }
        let full = k / w;
        if full > 0 {
            self.apply_compute_streak(full);
        }
        if boundary.is_some() || !k.is_multiple_of(w) {
            self.cycle_with_pending((k % w) as usize, boundary, source);
        }
    }

    /// Advances `full` cycles of pure full-width compute dispatch in
    /// closed form. With `W = width`, `n0 = rob.len()` and all entries
    /// `Ready(at <= now+1)`:
    ///
    /// * cycle 1 retires `min(W, n0)` and every later cycle retires `W`
    ///   (entries pushed in cycle `i` carry `at = now0 + i + 1`, eligible
    ///   from cycle `i+1` on), so `delta = full*W - max(0, W - n0)`;
    /// * each cycle dispatches exactly `W` computes (retirement frees the
    ///   space first; `W <= rob_size` guarantees the initial ramp fits);
    /// * the survivors are the last `full*W - (delta - min(delta, n0))`
    ///   pushed entries, with exact `at = now0 + j/W + 2` for push index
    ///   `j` — reconstructed verbatim so the ROB is indistinguishable
    ///   from per-cycle execution.
    ///
    /// Stall cycles, cache state, MSHRs and request queues are untouched
    /// (computes interact with none of them).
    fn apply_compute_streak(&mut self, full: u64) {
        let w = self.cfg.width as u64;
        let n0 = self.rob.len() as u64;
        let now0 = self.now;
        let delta = full * w - w.saturating_sub(n0);
        let popped_orig = delta.min(n0);
        let surv_new = full * w - (delta - popped_orig);
        self.rob.drop_front(popped_orig as usize);
        for j in (full * w - surv_new)..(full * w) {
            self.rob.push_back(RobEntry {
                state: EntryState::Ready(now0 + j / w + 2),
            });
        }
        self.now += full;
        self.head_seq += delta;
        self.stats.retired += delta;
        let top = now0 + full + 1;
        if top > self.max_entry_at {
            self.max_entry_at = top;
        }
    }

    /// One exact cycle whose dispatch stream is prefixed by `pending`
    /// already-fetched computes and then `boundary` (the op that ended a
    /// streak fetch), before falling back to the stalled-op/source path.
    /// The prefix is always consumed: computes cannot fail to dispatch
    /// while the streak preconditions hold, and `boundary` either
    /// dispatches or becomes the stalled op — so no transient buffer
    /// survives the call.
    fn cycle_with_pending(
        &mut self,
        mut pending: usize,
        mut boundary: Option<Op>,
        source: &mut dyn OpSource,
    ) {
        self.now += 1;
        self.retire();
        let mut dispatched = 0;
        while dispatched < self.cfg.width {
            if self.rob.len() >= self.cfg.rob_size {
                break; // ROB full
            }
            if self.hierarchy.pending_writebacks() >= self.cfg.writeback_stall {
                break; // memory back-pressure
            }
            let op = if pending > 0 {
                pending -= 1;
                Op::Compute
            } else if let Some(op) = boundary.take() {
                op
            } else {
                match self.stalled_op.take() {
                    Some(op) => op,
                    None => source.next_op(),
                }
            };
            if !self.try_dispatch(op) {
                self.stalled_op = Some(op);
                break;
            }
            dispatched += 1;
        }
        if dispatched == 0 {
            self.stats.stall_cycles += 1;
        }
        debug_assert!(
            pending == 0 && boundary.is_none(),
            "streak prefix fully consumed"
        );
    }

    fn retire(&mut self) {
        for _ in 0..self.cfg.width {
            match self.rob.front() {
                Some(RobEntry {
                    state: EntryState::Ready(at),
                }) if *at <= self.now => {
                    self.rob.pop_front();
                    self.head_seq += 1;
                    self.stats.retired += 1;
                }
                _ => break,
            }
        }
    }

    fn dispatch(&mut self, source: &mut dyn OpSource) -> usize {
        let mut dispatched = 0;
        while dispatched < self.cfg.width {
            if self.rob.len() >= self.cfg.rob_size {
                break; // ROB full
            }
            if self.hierarchy.pending_writebacks() >= self.cfg.writeback_stall {
                break; // memory back-pressure
            }
            let op = match self.stalled_op.take() {
                Some(op) => op,
                None => source.next_op(),
            };
            if !self.try_dispatch(op) {
                self.stalled_op = Some(op);
                break;
            }
            dispatched += 1;
        }
        dispatched
    }

    /// Attempts to dispatch one op; returns false if it must retry next
    /// cycle (dependence or MSHR/queue limits).
    fn try_dispatch(&mut self, op: Op) -> bool {
        match op {
            Op::Compute => {
                self.push_entry(EntryState::Ready(self.now + 1));
                true
            }
            Op::Load { addr, dependent } => {
                // A dependent load serialises behind the previous chase
                // miss: memory-level parallelism collapses to one, as in
                // pointer-chasing codes (mcf).
                if dependent && self.chase_block.is_some() {
                    return false;
                }
                // Retrying the stalled op against an unchanged hierarchy
                // repeats the same miss; skip the L1+L2 lookup.
                let result = match self.stalled_miss.take() {
                    Some(line) => MemAccessResult::Miss { line },
                    None => self.hierarchy.access(addr, false),
                };
                match result {
                    MemAccessResult::L1Hit => {
                        self.stats.loads += 1;
                        self.push_entry(EntryState::Ready(self.now + self.cfg.l1_latency));
                        true
                    }
                    MemAccessResult::L2Hit => {
                        self.stats.loads += 1;
                        self.push_entry(EntryState::Ready(self.now + self.cfg.l2_latency));
                        true
                    }
                    MemAccessResult::Miss { line } => {
                        let seq = self.head_seq + self.rob.len() as u64;
                        if let Some(mshr) = self.mshrs.get_mut(line) {
                            mshr.waiters.push(seq);
                        } else {
                            if self.mshrs.len() >= self.cfg.lsq_size {
                                self.stalled_miss = Some(line);
                                return false; // no MSHR free
                            }
                            self.mshrs.insert(line, false).waiters.push(seq);
                            self.read_requests.push_back((line, true));
                            self.stats.mem_reads += 1;
                        }
                        self.stats.loads += 1;
                        if dependent {
                            self.chase_block = Some(line);
                        }
                        self.push_entry(EntryState::WaitMem(line));
                        true
                    }
                }
            }
            Op::Store { addr } => {
                let result = match self.stalled_miss.take() {
                    Some(line) => MemAccessResult::Miss { line },
                    None => self.hierarchy.access(addr, true),
                };
                match result {
                    MemAccessResult::L1Hit | MemAccessResult::L2Hit => {
                        self.stats.stores += 1;
                        self.push_entry(EntryState::Ready(self.now + 1));
                        true
                    }
                    MemAccessResult::Miss { line } => {
                        // Write-allocate: fetch the line, but the store
                        // itself is posted and retires immediately.
                        if let Some(mshr) = self.mshrs.get_mut(line) {
                            mshr.dirty_on_fill = true;
                        } else {
                            if self.mshrs.len() >= self.cfg.lsq_size {
                                self.stalled_miss = Some(line);
                                return false;
                            }
                            self.mshrs.insert(line, true);
                            self.read_requests.push_back((line, false));
                            self.stats.mem_reads += 1;
                        }
                        self.stats.stores += 1;
                        self.push_entry(EntryState::Ready(self.now + 1));
                        true
                    }
                }
            }
        }
    }

    #[inline]
    fn push_entry(&mut self, state: EntryState) {
        match state {
            EntryState::Ready(at) => {
                if at > self.max_entry_at {
                    self.max_entry_at = at;
                }
            }
            EntryState::WaitMem(_) => self.waitmem_entries += 1,
        }
        self.rob.push_back(RobEntry { state });
    }

    /// Serialises the complete core state — ROB, MSHRs, pending requests,
    /// stall/chase bookkeeping, cache hierarchy and statistics — for a
    /// checkpoint. MSHRs are written in ascending line order so the byte
    /// stream is independent of the open-addressed table's probe layout
    /// (and identical to the historical `BTreeMap` encoding).
    pub fn save_snap(&self, w: &mut burst_snap::SnapWriter) {
        self.hierarchy.save_snap(w);
        w.usize(self.rob.len());
        for e in self.rob.iter() {
            match e.state {
                EntryState::Ready(at) => {
                    w.u8(0);
                    w.u64(at);
                }
                EntryState::WaitMem(line) => {
                    w.u8(1);
                    w.u64(line);
                }
            }
        }
        w.u64(self.head_seq);
        w.u64(self.now);
        w.usize(self.mshrs.len());
        for i in self.mshrs.sorted_indices() {
            let slot = &self.mshrs.slots[i];
            w.u64(slot.line);
            w.usize(slot.waiters.len());
            for &seq in &slot.waiters {
                w.u64(seq);
            }
            w.bool(slot.dirty_on_fill);
        }
        w.usize(self.read_requests.len());
        for &(line, critical) in &self.read_requests {
            w.u64(line);
            w.bool(critical);
        }
        save_opt_op(w, self.stalled_op);
        w.opt_u64(self.stalled_miss);
        w.opt_u64(self.chase_block);
        w.u64(self.stats.retired);
        w.u64(self.stats.loads);
        w.u64(self.stats.stores);
        w.u64(self.stats.mem_reads);
        w.u64(self.stats.mem_writes);
        w.u64(self.stats.stall_cycles);
    }

    /// Restores state written by [`Cpu::save_snap`] into a core built from
    /// the same configuration. The derived streak counters
    /// (`waitmem_entries`, `max_entry_at`) are recomputed from the
    /// restored ROB.
    pub fn load_snap(
        &mut self,
        r: &mut burst_snap::SnapReader,
    ) -> Result<(), burst_snap::SnapError> {
        use burst_snap::SnapError;
        self.hierarchy.load_snap(r)?;
        let rob_len = r.seq_len(9)?;
        if rob_len > self.cfg.rob_size {
            return Err(SnapError::Corrupt("ROB larger than configured"));
        }
        self.rob.clear();
        self.waitmem_entries = 0;
        self.max_entry_at = 0;
        for _ in 0..rob_len {
            let state = match r.u8()? {
                0 => EntryState::Ready(r.u64()?),
                1 => EntryState::WaitMem(r.u64()?),
                _ => return Err(SnapError::Corrupt("bad ROB entry tag")),
            };
            self.push_entry(state);
        }
        self.head_seq = r.u64()?;
        self.now = r.u64()?;
        let n_mshrs = r.seq_len(10)?;
        if n_mshrs > self.cfg.lsq_size {
            return Err(SnapError::Corrupt("more MSHRs than configured LSQ"));
        }
        self.mshrs.clear();
        for _ in 0..n_mshrs {
            let line = r.u64()?;
            let n_waiters = r.seq_len(8)?;
            let mut waiters = Vec::with_capacity(n_waiters);
            for _ in 0..n_waiters {
                waiters.push(r.u64()?);
            }
            let dirty_on_fill = r.bool()?;
            if self.mshrs.find(line).is_some() {
                return Err(SnapError::Corrupt("duplicate MSHR line"));
            }
            let slot = self.mshrs.insert(line, dirty_on_fill);
            slot.waiters = waiters;
        }
        let n_reqs = r.seq_len(9)?;
        self.read_requests.clear();
        for _ in 0..n_reqs {
            let line = r.u64()?;
            let critical = r.bool()?;
            self.read_requests.push_back((line, critical));
        }
        self.stalled_op = load_opt_op(r)?;
        self.stalled_miss = r.opt_u64()?;
        self.chase_block = r.opt_u64()?;
        self.stats.retired = r.u64()?;
        self.stats.loads = r.u64()?;
        self.stats.stores = r.u64()?;
        self.stats.mem_reads = r.u64()?;
        self.stats.mem_writes = r.u64()?;
        self.stats.stall_cycles = r.u64()?;
        Ok(())
    }
}

/// Writes an optional [`Op`] with a stable tag encoding.
fn save_opt_op(w: &mut burst_snap::SnapWriter, op: Option<Op>) {
    match op {
        None => w.u8(0),
        Some(Op::Compute) => w.u8(1),
        Some(Op::Load { addr, dependent }) => {
            w.u8(2);
            w.u64(addr);
            w.bool(dependent);
        }
        Some(Op::Store { addr }) => {
            w.u8(3);
            w.u64(addr);
        }
    }
}

/// Reads an optional [`Op`] written by [`save_opt_op`].
fn load_opt_op(r: &mut burst_snap::SnapReader) -> Result<Option<Op>, burst_snap::SnapError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(Op::Compute),
        2 => {
            let addr = r.u64()?;
            let dependent = r.bool()?;
            Some(Op::Load { addr, dependent })
        }
        3 => Some(Op::Store { addr: r.u64()? }),
        _ => return Err(burst_snap::SnapError::Corrupt("bad Op tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst_workloads::ReplaySource;

    fn compute_only() -> ReplaySource {
        ReplaySource::new("compute", vec![Op::Compute])
    }

    #[test]
    fn compute_stream_retires_at_full_width() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut src = compute_only();
        for _ in 0..100 {
            cpu.cycle(&mut src);
        }
        // Steady state: 8 instructions per cycle.
        assert!(cpu.retired() > 90 * 8 / 2, "retired {}", cpu.retired());
        assert_eq!(cpu.outstanding_misses(), 0);
    }

    #[test]
    fn load_miss_blocks_retirement_until_completion() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        // One load then endless compute.
        let mut ops = vec![Op::load(0x1000)];
        ops.extend(std::iter::repeat_n(Op::Compute, 9));
        let mut src = ReplaySource::new("l", ops);
        for _ in 0..50 {
            cpu.cycle(&mut src);
        }
        let line = cpu.pop_read_request().expect("load missed to memory");
        assert_eq!(line, 0x1000);
        // ROB fills behind the blocked load; retirement stops at it.
        let retired_before = cpu.retired();
        for _ in 0..50 {
            cpu.cycle(&mut src);
        }
        assert_eq!(
            cpu.retired(),
            retired_before,
            "nothing retires past a blocked load"
        );
        // Complete it: retirement resumes.
        cpu.complete_read(0x1000, cpu.now());
        for _ in 0..20 {
            cpu.cycle(&mut src);
        }
        assert!(cpu.retired() > retired_before);
    }

    #[test]
    fn rob_limits_in_flight_instructions() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut src = ReplaySource::new("l", vec![Op::load(0x40_0000)]);
        // Every op is a load to a distinct line? No: same line -> one MSHR,
        // all wait. ROB fills to capacity and dispatch stalls.
        for _ in 0..100 {
            cpu.cycle(&mut src);
        }
        assert!(cpu.rob.len() <= 196);
        assert!(cpu.stats().stall_cycles > 0);
    }

    #[test]
    fn lsq_bounds_outstanding_misses() {
        let cfg = CpuConfig::baseline();
        let mut cpu = Cpu::new(cfg);
        // Loads to many distinct lines (64 B apart spans sets; use big
        // stride to avoid cache hits).
        let ops: Vec<Op> = (0..256).map(|i| Op::load(i << 20)).collect();
        let mut src = ReplaySource::new("many", ops);
        for _ in 0..200 {
            cpu.cycle(&mut src);
        }
        assert!(
            cpu.outstanding_misses() <= cfg.lsq_size,
            "MSHRs {} exceed LSQ {}",
            cpu.outstanding_misses(),
            cfg.lsq_size
        );
        assert_eq!(cpu.outstanding_misses(), cfg.lsq_size, "should saturate");
    }

    #[test]
    fn dependent_loads_serialize() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let ops: Vec<Op> = (0..64).map(|i| Op::dependent_load(i << 20)).collect();
        let mut src = ReplaySource::new("chase", ops);
        for _ in 0..100 {
            cpu.cycle(&mut src);
        }
        assert_eq!(cpu.outstanding_misses(), 1, "pointer chase has MLP 1");
    }

    #[test]
    fn store_misses_fetch_line_but_do_not_block() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut ops = vec![Op::Store { addr: 0x8000 }];
        ops.extend(std::iter::repeat_n(Op::Compute, 15));
        let mut src = ReplaySource::new("s", ops);
        for _ in 0..30 {
            cpu.cycle(&mut src);
        }
        // Store generated a fill read...
        assert_eq!(cpu.pop_read_request(), Some(0x8000));
        // ...but retirement continued (stores are posted).
        assert!(cpu.retired() > 20, "retired {}", cpu.retired());
    }

    #[test]
    fn store_fill_installs_dirty_line() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut src = ReplaySource::new("s", vec![Op::Store { addr: 0 }, Op::Compute]);
        cpu.cycle(&mut src);
        assert_eq!(cpu.pop_read_request(), Some(0));
        cpu.complete_read(0, cpu.now());
        assert!(cpu.hierarchy().l1d().contains(0));
        // Dirty: evicting it must eventually produce a writeback. Touch
        // enough conflicting lines to push it through both levels.
        let sets_l1 = cpu.hierarchy().l1d().config().sets() as u64;
        let sets_l2 = cpu.hierarchy().l2().config().sets() as u64;
        let ops: Vec<Op> = (1..=40)
            .map(|i| Op::Store {
                addr: i * sets_l1.max(sets_l2) * 64,
            })
            .collect();
        let mut src2 = ReplaySource::new("evict", ops);
        for _ in 0..4000 {
            cpu.cycle(&mut src2);
            while let Some(line) = cpu.pop_read_request() {
                cpu.complete_read(line, cpu.now());
            }
            if cpu.pop_writeback().is_some() {
                return; // writeback observed
            }
        }
        panic!("dirty line never written back");
    }

    #[test]
    fn writeback_pressure_stalls_dispatch() {
        let mut cfg = CpuConfig::baseline();
        cfg.writeback_stall = 1;
        let mut cpu = Cpu::new(cfg);
        // Generate dirty evictions without draining writebacks.
        let sets = cpu.hierarchy().l2().config().sets() as u64;
        let ops: Vec<Op> = (0..600)
            .map(|i| Op::Store {
                addr: i * sets * 64,
            })
            .collect();
        let mut src = ReplaySource::new("wb", ops);
        for _ in 0..3000 {
            cpu.cycle(&mut src);
            while let Some(line) = cpu.pop_read_request() {
                cpu.complete_read(line, cpu.now());
            }
            if cpu.hierarchy().pending_writebacks() >= 1 {
                break;
            }
        }
        assert!(cpu.hierarchy().pending_writebacks() >= 1);
        let stalls_before = cpu.stats().stall_cycles;
        for _ in 0..10 {
            cpu.cycle(&mut src);
        }
        assert!(
            cpu.stats().stall_cycles > stalls_before,
            "dispatch must stall"
        );
    }

    #[test]
    fn l1_hit_is_faster_than_l2_hit() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut src = ReplaySource::new("one", vec![Op::load(0), Op::Compute]);
        // Warm the line via fill.
        cpu.cycle(&mut src);
        if let Some(l) = cpu.pop_read_request() {
            cpu.complete_read(l, cpu.now());
        }
        // Subsequent loads to the same line hit L1 and retire quickly.
        let retired_before = cpu.retired();
        for _ in 0..20 {
            cpu.cycle(&mut src);
        }
        assert!(cpu.retired() > retired_before + 10);
    }

    #[test]
    fn shared_mshr_wakes_all_waiting_loads() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        // Four loads to the same missing line.
        let ops = vec![Op::load(0x100000); 4];
        let mut src = ReplaySource::new("same", ops);
        cpu.cycle(&mut src);
        assert_eq!(cpu.outstanding_misses(), 1, "merged into one MSHR");
        cpu.complete_read(0x100000, cpu.now());
        for _ in 0..10 {
            cpu.cycle(&mut src);
        }
        assert!(cpu.retired() >= 4);
    }

    /// Drives a per-cycle and a batched core over the same source and
    /// external stimulus, asserting byte-identical snapshots at every
    /// epoch — the core bit-identity contract of the batch path.
    fn assert_batch_equivalent(ops: Vec<Op>, epochs: usize, stride: u64) {
        let mut reference = Cpu::new(CpuConfig::baseline());
        let mut batched = Cpu::new(CpuConfig::baseline());
        let mut src_a = ReplaySource::new("a", ops.clone());
        let mut src_b = ReplaySource::new("b", ops);
        for epoch in 0..epochs {
            let target = reference.now() + stride;
            while reference.now() < target {
                reference.cycle(&mut src_a);
            }
            batched.run_until(target, &mut src_b);
            // Matching external stimulus: drain requests, complete one.
            loop {
                let a = reference.pop_read_request_tagged();
                let b = batched.pop_read_request_tagged();
                assert_eq!(a, b, "epoch {epoch}: request streams diverge");
                let Some((line, _)) = a else { break };
                reference.complete_read(line, reference.now());
                batched.complete_read(line, batched.now());
            }
            while let Some(wa) = reference.pop_writeback() {
                assert_eq!(Some(wa), batched.pop_writeback());
            }
            assert_eq!(batched.pop_writeback(), None);
            let mut wa = burst_snap::SnapWriter::new();
            let mut wb = burst_snap::SnapWriter::new();
            reference.save_snap(&mut wa);
            batched.save_snap(&mut wb);
            assert_eq!(
                wa.into_bytes(),
                wb.into_bytes(),
                "epoch {epoch}: snapshots diverge"
            );
        }
    }

    #[test]
    fn batch_matches_per_cycle_on_pure_compute() {
        assert_batch_equivalent(vec![Op::Compute], 8, 100);
    }

    #[test]
    fn batch_matches_per_cycle_on_mixed_stream() {
        let ops: Vec<Op> = (0..200u64)
            .map(|i| match i % 7 {
                0 => Op::load(i << 14),
                3 => Op::Store { addr: i << 13 },
                5 => Op::dependent_load(i << 15),
                _ => Op::Compute,
            })
            .collect();
        assert_batch_equivalent(ops, 12, 37);
    }

    #[test]
    fn batch_matches_per_cycle_on_compute_bursts() {
        // Long compute runs separated by a single load: exercises the
        // closed form plus the partial-cycle boundary repeatedly.
        let mut ops = Vec::new();
        for i in 0..8u64 {
            ops.extend(std::iter::repeat_n(Op::Compute, 83));
            ops.push(Op::load(i << 16));
        }
        assert_batch_equivalent(ops, 10, 61);
    }

    #[test]
    fn run_until_lands_exactly_on_deadline() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut src = compute_only();
        cpu.run_until(1234, &mut src);
        assert_eq!(cpu.now(), 1234);
        // Steady-state full width: (1234 - ramp) * 8 retired.
        assert!(cpu.retired() > 1200 * 8, "retired {}", cpu.retired());
    }

    #[test]
    fn mshr_table_backward_shift_preserves_lookup() {
        let mut t = MshrTable::new(32);
        // Insert a cluster of lines that collide, then remove from the
        // middle and verify the rest stay findable.
        let lines: Vec<u64> = (0..24u64).map(|i| i * 64).collect();
        for &l in &lines {
            t.insert(l, false);
        }
        assert_eq!(t.len(), 24);
        for &l in lines.iter().step_by(3) {
            assert!(t.remove(l).is_some());
        }
        for (i, &l) in lines.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.find(l).is_none(), "removed line {l} still present");
            } else {
                assert!(t.find(l).is_some(), "line {l} lost by backward shift");
            }
        }
        // Sorted snapshot order is ascending by line.
        let sorted = t.sorted_indices();
        let mut prev = None;
        for i in sorted {
            let line = t.slots[i].line;
            assert!(prev.is_none_or(|p| p < line));
            prev = Some(line);
        }
    }
}

#[cfg(test)]
mod snap_tests {
    use super::*;
    use burst_workloads::ReplaySource;

    /// Drives a core through misses, merges, a completion and stalls so
    /// every snapshot field is populated, then asserts a byte-identical
    /// re-serialisation after restore and identical onward behaviour.
    #[test]
    fn snapshot_round_trips_mid_flight() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let ops: Vec<Op> = (0..80u64)
            .map(|i| match i % 4 {
                0 => Op::load(i << 20),
                1 => Op::Compute,
                2 => Op::Store {
                    addr: (i << 20) | 0x40,
                },
                _ => Op::dependent_load(i << 21),
            })
            .collect();
        let mut src = ReplaySource::new("mix", ops.clone());
        for _ in 0..60 {
            cpu.cycle(&mut src);
        }
        let first_miss = cpu.pop_read_request().expect("missed");
        cpu.complete_read(first_miss, cpu.now());
        for _ in 0..5 {
            cpu.cycle(&mut src);
        }
        let mut w = burst_snap::SnapWriter::new();
        cpu.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Cpu::new(CpuConfig::baseline());
        let mut r = burst_snap::SnapReader::new(&bytes);
        restored.load_snap(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = burst_snap::SnapWriter::new();
        restored.save_snap(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "restore must be lossless");
        // Both cores step identically afterwards (the replay source is
        // positional, so give each its own copy at the same offset).
        let mut src2 = src.clone();
        for _ in 0..40 {
            cpu.cycle(&mut src);
            restored.cycle(&mut src2);
        }
        assert_eq!(cpu.retired(), restored.retired());
        assert_eq!(cpu.stats(), restored.stats());
        assert_eq!(cpu.pop_read_request(), restored.pop_read_request());
    }

    #[test]
    fn snapshot_rejects_oversized_rob() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut src = ReplaySource::new("l", vec![Op::load(0x40_0000)]);
        for _ in 0..100 {
            cpu.cycle(&mut src);
        }
        let mut w = burst_snap::SnapWriter::new();
        cpu.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut tiny_cfg = CpuConfig::baseline();
        tiny_cfg.rob_size = 4;
        let mut tiny = Cpu::new(tiny_cfg);
        let mut r = burst_snap::SnapReader::new(&bytes);
        assert!(tiny.load_snap(&mut r).is_err());
    }

    /// The derived streak counters must be rebuilt on restore: a restored
    /// core and the original take identical batch paths afterwards.
    #[test]
    fn restored_core_batches_identically() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut ops: Vec<Op> = std::iter::repeat_n(Op::Compute, 50).collect();
        ops.push(Op::load(0x9000));
        ops.extend(std::iter::repeat_n(Op::Compute, 50));
        let mut src = ReplaySource::new("mix", ops);
        cpu.run_until(10, &mut src);
        let mut w = burst_snap::SnapWriter::new();
        cpu.save_snap(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Cpu::new(CpuConfig::baseline());
        restored
            .load_snap(&mut burst_snap::SnapReader::new(&bytes))
            .unwrap();
        let mut src2 = src.clone();
        cpu.run_until(40, &mut src);
        restored.run_until(40, &mut src2);
        let mut wa = burst_snap::SnapWriter::new();
        let mut wb = burst_snap::SnapWriter::new();
        cpu.save_snap(&mut wa);
        restored.save_snap(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }
}

#[cfg(test)]
mod warm_tests {
    use super::*;
    use burst_workloads::ReplaySource;

    #[test]
    fn warming_terminates_on_compute_only_workloads() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let mut src = ReplaySource::new("compute", vec![Op::Compute]);
        // Must return despite the source never emitting a memory op.
        cpu.warm_caches(&mut src, 10_000);
    }

    #[test]
    fn warming_fills_caches() {
        let mut cpu = Cpu::new(CpuConfig::baseline());
        let ops: Vec<Op> = (0..64u64).map(|i| Op::load(i * 64)).collect();
        let mut src = ReplaySource::new("lines", ops);
        cpu.warm_caches(&mut src, 256);
        assert!(
            cpu.hierarchy().l1d().contains(0),
            "warmed line must be resident"
        );
        assert_eq!(
            cpu.hierarchy().pending_writebacks(),
            0,
            "warming discards writebacks"
        );
    }
}
